#include "dataplane/ip_to_as.hpp"

namespace irp {

IpToAsMap IpToAsMap::from_topology(const Topology& topo) {
  IpToAsMap map;
  topo.for_each_as([&](const AsNode& node) {
    for (const auto& pop : node.pops) map.add(pop.router_prefix, node.asn);
    for (const auto& op : node.prefixes) map.add(op.prefix, node.asn);
  });
  return map;
}

void IpToAsMap::add(const Ipv4Prefix& prefix, Asn asn) {
  trie_.insert(prefix, asn);
}

std::optional<Asn> IpToAsMap::lookup(Ipv4Addr addr) const {
  return trie_.lookup(addr);
}

std::vector<Asn> IpToAsMap::as_path_of(
    const std::vector<Ipv4Addr>& hops) const {
  std::vector<Asn> path;
  for (Ipv4Addr hop : hops) {
    const auto asn = lookup(hop);
    if (!asn) continue;  // Unresponsive/unmapped hop.
    if (path.empty() || path.back() != *asn) path.push_back(*asn);
  }
  return path;
}

}  // namespace irp
