// Data-plane forwarding and traceroute emission.
//
// Forwarding is destination-based: each AS forwards toward the BGP next hop
// it selected for the destination's covering prefix. A traceroute records
// one router hop per AS boundary, using an address from the AS's point of
// presence nearest to the ingress link — so hop addresses geolocate and map
// back to ASes the way real traceroutes do.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bgp/engine.hpp"
#include "net/ipv4.hpp"
#include "topo/topology.hpp"

namespace irp {

/// One traceroute hop: the emitting address plus ground-truth annotations
/// (the analyses must not use the annotations; they exist for tests).
struct TracerouteHop {
  Ipv4Addr address;
  Asn truth_asn = 0;       ///< Ground truth: AS owning the address.
  CityId truth_city = 0;   ///< Ground truth: city of the router.
};

/// A completed traceroute measurement.
struct Traceroute {
  Asn src_asn = 0;             ///< Ground truth probe AS (tests only).
  Ipv4Addr src_address;
  Ipv4Addr dst_address;
  Ipv4Prefix dst_prefix;       ///< Covering announced prefix of the target.
  std::string hostname;        ///< Target DNS name (passive campaign).
  std::vector<TracerouteHop> hops;  ///< Excludes the source address.
  bool reached = false;        ///< True if the destination answered.
};

/// Simulates traceroutes over a converged BGP engine.
class TracerouteSim {
 public:
  TracerouteSim(const Topology* topo, const BgpEngine* engine);

  /// Runs a traceroute from `src_asn` toward `dst_address`, which must be
  /// covered by the announced `dst_prefix`. Returns nullopt when the source
  /// has no route at all.
  std::optional<Traceroute> run(Asn src_asn, Ipv4Addr src_address,
                                Ipv4Addr dst_address,
                                const Ipv4Prefix& dst_prefix) const;

  /// Ground-truth AS-level forwarding path from `src_asn` for `dst_prefix`
  /// (including the source, ending at the AS that originates the prefix).
  /// Empty when unrouted. Used by tests and the active experiments.
  std::vector<Asn> forwarding_path(Asn src_asn,
                                   const Ipv4Prefix& dst_prefix) const;

 private:
  /// Router address of `asn` for a packet arriving over `via_link`.
  TracerouteHop ingress_hop(Asn asn, const Link& via_link) const;

  const Topology* topo_;
  const BgpEngine* engine_;
};

}  // namespace irp
