// AS-type categorization following Oliveira et al. (used for Table 1).
//
// Classes are derived from the AS's position in the routing hierarchy:
// Tier-1 ASes have no providers; the remaining transit ASes are split into
// large and small ISPs by customer-cone size; ASes without customers are
// stubs. Content/cable/testbed ASes are mapped onto the same four buckets
// the paper's Table 1 uses.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace irp {

/// The four buckets of Table 1.
enum class AsCategory { kStub, kSmallIsp, kLargeIsp, kTier1 };

std::string_view as_category_name(AsCategory c);

/// Classifies ASes by provider/customer structure and customer-cone size.
class AsTypeClassifier {
 public:
  /// `epoch` selects which links are considered alive.
  /// `large_cone_threshold` is the minimum customer-cone size of a large ISP.
  AsTypeClassifier(const Topology* topo, int epoch,
                   std::size_t large_cone_threshold = 25);

  AsCategory classify(Asn asn) const;

 private:
  const Topology* topo_;
  int epoch_;
  std::size_t large_cone_threshold_;
};

}  // namespace irp
