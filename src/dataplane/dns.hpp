// Content DNS resolution with CDN-style mapping.
//
// §3.1: each probe resolves the 34 content hostnames and traceroutes to the
// resolved address. Large providers answer from off-net caches near the
// client when one exists — which is why the study's 34 hostnames land in 218
// distinct destination ASes. The resolver reproduces that mapping: prefer a
// cache in the client's country, then continent, then fall back to the
// origin prefix pinned to the hostname.
#pragma once

#include <optional>
#include <string>

#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "topo/registry.hpp"
#include "topo/topology.hpp"

namespace irp {

/// Result of resolving a hostname for a specific client.
struct DnsAnswer {
  Ipv4Addr address;        ///< Resolved service address.
  Ipv4Prefix prefix;       ///< Announced prefix covering the address.
  Asn serving_asn = 0;     ///< AS hosting the service (origin or cache host).
  bool from_cache = false; ///< True when served off-net.
};

/// CDN-aware resolver over the content catalog.
class ContentResolver {
 public:
  ContentResolver(const Topology* topo, const World* world,
                  const ContentCatalog* catalog);

  /// Resolves `hostname` as seen by a client inside `client_asn`;
  /// nullopt for unknown hostnames.
  std::optional<DnsAnswer> resolve(const std::string& hostname,
                                   Asn client_asn) const;

 private:
  const Topology* topo_;
  const World* world_;
  const ContentCatalog* catalog_;
};

}  // namespace irp
