#include "dataplane/as_type.hpp"

#include "util/check.hpp"

namespace irp {

std::string_view as_category_name(AsCategory c) {
  switch (c) {
    case AsCategory::kStub:     return "Stub-AS";
    case AsCategory::kSmallIsp: return "Small ISP";
    case AsCategory::kLargeIsp: return "Large ISP";
    case AsCategory::kTier1:    return "Tier-1";
  }
  IRP_UNREACHABLE("unknown category");
}

AsTypeClassifier::AsTypeClassifier(const Topology* topo, int epoch,
                                   std::size_t large_cone_threshold)
    : topo_(topo), epoch_(epoch), large_cone_threshold_(large_cone_threshold) {
  IRP_CHECK(topo_ != nullptr, "classifier requires a topology");
}

AsCategory AsTypeClassifier::classify(Asn asn) const {
  bool has_provider = false;
  bool has_customer = false;
  for (LinkId lid : topo_->links_of(asn)) {
    const Link& l = topo_->link(lid);
    if (!topo_->link_alive(l, epoch_)) continue;
    const Relationship rel = topo_->relationship_from(l, asn);
    if (rel == Relationship::kProvider) has_provider = true;
    if (rel == Relationship::kCustomer) has_customer = true;
  }
  if (!has_customer) return AsCategory::kStub;
  if (!has_provider) return AsCategory::kTier1;
  const std::size_t cone = topo_->customer_cone_size(asn, epoch_);
  return cone >= large_cone_threshold_ ? AsCategory::kLargeIsp
                                       : AsCategory::kSmallIsp;
}

}  // namespace irp
