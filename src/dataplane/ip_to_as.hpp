// IP-to-AS mapping and IP-path -> AS-path conversion.
//
// Reproduces the role of the Chen et al. [CoNEXT'09] conversion step the
// paper uses (§3.1): traceroute hop addresses are mapped to the AS that
// originates the covering prefix, consecutive duplicates are collapsed, and
// unresolvable hops are skipped.
#pragma once

#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "topo/topology.hpp"

namespace irp {

/// Longest-prefix-match database mapping addresses to origin ASes.
class IpToAsMap {
 public:
  /// Builds the map from every prefix registered in the topology: announced
  /// (customer/cache) prefixes and router infrastructure prefixes.
  static IpToAsMap from_topology(const Topology& topo);

  /// Adds one prefix -> AS mapping.
  void add(const Ipv4Prefix& prefix, Asn asn);

  /// Origin AS of the covering prefix, if any.
  std::optional<Asn> lookup(Ipv4Addr addr) const;

  /// Converts an IP-level path to an AS-level path: maps every hop,
  /// collapses consecutive duplicates, drops unmapped hops.
  std::vector<Asn> as_path_of(const std::vector<Ipv4Addr>& hops) const;

  std::size_t size() const { return trie_.size(); }

 private:
  PrefixTrie<Asn> trie_;
};

}  // namespace irp
