#include "dataplane/dns.hpp"

#include "util/check.hpp"

namespace irp {

ContentResolver::ContentResolver(const Topology* topo, const World* world,
                                 const ContentCatalog* catalog)
    : topo_(topo), world_(world), catalog_(catalog) {
  IRP_CHECK(topo_ && world_ && catalog_, "resolver requires all inputs");
}

std::optional<DnsAnswer> ContentResolver::resolve(const std::string& hostname,
                                                  Asn client_asn) const {
  const ContentService* service = catalog_->service_for(hostname);
  if (service == nullptr) return std::nullopt;

  const ContentHostname* entry = nullptr;
  for (const auto& h : service->hostnames)
    if (h.name == hostname) entry = &h;
  IRP_CHECK(entry != nullptr, "catalog returned service without hostname");

  const AsNode& client = topo_->as_node(client_asn);
  const CountryId client_country = client.home_country;
  const Continent client_continent =
      world_->continent_of_country(client_country);

  // Premium (enterprise) services are origin-served only.
  if (entry->premium) {
    DnsAnswer answer;
    answer.prefix = entry->origin_prefix;
    answer.serving_asn = service->origin_asn;
    answer.from_cache = false;
    answer.address = answer.prefix.address_at(answer.prefix.size() - 2);
    return answer;
  }

  // Mapping policy: same-country cache > same-continent cache > origin.
  const ContentCache* best = nullptr;
  int best_score = 0;
  for (const auto& cache : service->caches) {
    const AsNode& host = topo_->as_node(cache.host_asn);
    int score = 1;
    if (world_->continent_of_country(host.home_country) == client_continent)
      score = 2;
    if (host.home_country == client_country) score = 3;
    // Serving the client from its own AS is the best possible mapping.
    if (cache.host_asn == client_asn) score = 4;
    if (score > best_score && score >= 2) {
      best_score = score;
      best = &cache;
    }
  }

  DnsAnswer answer;
  if (best != nullptr) {
    answer.prefix = best->prefix;
    answer.serving_asn = best->host_asn;
    answer.from_cache = true;
  } else {
    answer.prefix = entry->origin_prefix;
    answer.serving_asn = service->origin_asn;
    answer.from_cache = false;
  }
  // A stable host address inside the serving prefix.
  answer.address = answer.prefix.address_at(answer.prefix.size() - 2);
  return answer;
}

}  // namespace irp
