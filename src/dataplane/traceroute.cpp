#include "dataplane/traceroute.hpp"

#include <limits>

#include "geo/world.hpp"
#include "util/check.hpp"

namespace irp {

TracerouteSim::TracerouteSim(const Topology* topo, const BgpEngine* engine)
    : topo_(topo), engine_(engine) {
  IRP_CHECK(topo_ != nullptr && engine_ != nullptr,
            "traceroute sim requires topology and engine");
}

TracerouteHop TracerouteSim::ingress_hop(Asn asn, const Link& via_link) const {
  const AsNode& node = topo_->as_node(asn);
  // The border router answering the probe sits at the PoP closest to the
  // interconnection city (hot-potato ingress).
  const PointOfPresence* best = &node.pops.front();
  // Note: distances need the world; approximate with city equality first.
  for (const auto& pop : node.pops) {
    if (pop.city == via_link.city) {
      best = &pop;
      break;
    }
  }
  TracerouteHop hop;
  // Interface index derived from the link id keeps addresses distinct and
  // deterministic per adjacency.
  hop.address = best->router_prefix.address_at(1 + via_link.id % 250);
  hop.truth_asn = asn;
  hop.truth_city = best->city;
  return hop;
}

std::optional<Traceroute> TracerouteSim::run(
    Asn src_asn, Ipv4Addr src_address, Ipv4Addr dst_address,
    const Ipv4Prefix& dst_prefix) const {
  IRP_CHECK(dst_prefix.contains(dst_address),
            "destination address not in destination prefix");

  Traceroute tr;
  tr.src_asn = src_asn;
  tr.src_address = src_address;
  tr.dst_address = dst_address;
  tr.dst_prefix = dst_prefix;

  Asn current = src_asn;
  std::vector<bool> visited(topo_->num_ases() + 1, false);
  visited[current] = true;
  // Destination-based forwarding cannot loop in a converged BGP state, but
  // path-dependent policies (e.g. domestic preference) can oscillate and
  // leave transiently inconsistent state — real traceroutes observe such
  // loops too. The traceroute simply fails to reach the destination.
  for (int ttl = 0; ttl < 64; ++ttl) {
    const BgpEngine::Selected* sel = engine_->best(current, dst_prefix);
    if (sel == nullptr) {
      if (current == src_asn) return std::nullopt;  // No route at the probe.
      return tr;  // Path died mid-way: unreached traceroute.
    }
    if (sel->self_originated) {
      // Arrived at the origin AS: the destination host answers.
      tr.hops.push_back(TracerouteHop{dst_address, current, 0});
      tr.reached = true;
      return tr;
    }
    const Link& link = topo_->link(sel->via_link);
    const Asn next = sel->next_hop;
    if (visited[next]) return tr;  // Forwarding loop: probe expires.
    visited[next] = true;
    tr.hops.push_back(ingress_hop(next, link));
    current = next;
  }
  return tr;  // TTL exhausted.
}

std::vector<Asn> TracerouteSim::forwarding_path(
    Asn src_asn, const Ipv4Prefix& dst_prefix) const {
  std::vector<Asn> path;
  std::vector<bool> visited(topo_->num_ases() + 1, false);
  Asn current = src_asn;
  for (int ttl = 0; ttl < 64; ++ttl) {
    const BgpEngine::Selected* sel = engine_->best(current, dst_prefix);
    if (sel == nullptr) return {};
    if (visited[current]) return {};  // Forwarding loop: unusable path.
    visited[current] = true;
    path.push_back(current);
    if (sel->self_originated) return path;
    current = sel->next_hop;
  }
  return {};
}

}  // namespace irp
