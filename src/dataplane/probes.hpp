// RIPE-Atlas-style probe model and the paper's probe sampling strategy.
//
// §3.1: "RIPE Atlas ... is known to have a disproportionate fraction of
// probes skewed towards Europe. To avoid a bias towards European ASes, we
// picked equal number of probes from each continent. For every continent,
// we picked probes in a round robin fashion from different countries and
// ASes so that selected probes cover a wide range of ASes."
#pragma once

#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace irp {

/// A measurement probe hosted inside an AS.
struct Probe {
  int id = 0;
  Asn asn = 0;
  Ipv4Addr address;
  CountryId country = 0;
  Continent continent = Continent::kEurope;
};

/// Configuration of the probe population and of the sample drawn from it.
struct ProbeSamplerConfig {
  /// Probes available per continent before sampling; the platform's raw
  /// population is much larger than the selected set.
  int platform_probes_per_continent = 600;
  /// Probes per continent in the selected sample (equal across continents).
  int sample_per_continent = 333;
};

/// Builds a platform probe population and draws the paper's sample.
class ProbeSampler {
 public:
  ProbeSampler(const Topology* topo, const World* world,
               ProbeSamplerConfig config, Rng rng);

  /// Generates the platform population: probes concentrated in eyeball
  /// networks (stubs and small ISPs), a few in large ISPs; biased toward
  /// Europe like the real platform.
  std::vector<Probe> platform_population();

  /// Draws the study sample: equal per continent, round-robin over
  /// countries and ASes within the continent.
  std::vector<Probe> sample(const std::vector<Probe>& population) const;

 private:
  const Topology* topo_;
  const World* world_;
  ProbeSamplerConfig config_;
  mutable Rng rng_;
};

}  // namespace irp
