#include "dataplane/probes.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace irp {

ProbeSampler::ProbeSampler(const Topology* topo, const World* world,
                           ProbeSamplerConfig config, Rng rng)
    : topo_(topo), world_(world), config_(config), rng_(rng) {
  IRP_CHECK(topo_ != nullptr && world_ != nullptr,
            "sampler requires topology and world");
  IRP_CHECK(config_.sample_per_continent <= config_.platform_probes_per_continent,
            "cannot sample more probes than the platform hosts");
}

std::vector<Probe> ProbeSampler::platform_population() {
  // Collect candidate host ASes per continent, heavily weighted toward the
  // network edge (the real platform's hosts are volunteers in eyeball nets).
  std::vector<std::vector<Asn>> hosts(kNumContinents);
  topo_->for_each_as([&](const AsNode& node) {
    int weight = 0;
    switch (node.type) {
      case AsType::kStub:     weight = 5; break;
      case AsType::kSmallIsp: weight = 4; break;
      case AsType::kLargeIsp: weight = 2; break;
      case AsType::kEducation: weight = 1; break;
      default: return;
    }
    if (node.prefixes.empty()) return;
    const Continent c = world_->continent_of_country(node.home_country);
    for (int w = 0; w < weight; ++w) hosts[int(c)].push_back(node.asn);
  });

  std::vector<Probe> population;
  int id = 0;
  for (Continent c : all_continents()) {
    if (hosts[int(c)].empty()) continue;
    // Europe over-representation, as on the real platform.
    const double skew = c == Continent::kEurope ? 2.0 : 1.0;
    const int count =
        static_cast<int>(config_.platform_probes_per_continent * skew);
    for (int i = 0; i < count; ++i) {
      const Asn asn = rng_.pick(hosts[int(c)]);
      const AsNode& node = topo_->as_node(asn);
      Probe probe;
      probe.id = id++;
      probe.asn = asn;
      // Each probe gets a distinct host address inside the AS's first
      // announced prefix.
      const Ipv4Prefix& prefix = node.prefixes.front().prefix;
      probe.address = prefix.address_at(
          16 + static_cast<std::uint64_t>(i) % (prefix.size() - 32));
      probe.country = node.home_country;
      probe.continent = c;
      population.push_back(probe);
    }
  }
  return population;
}

std::vector<Probe> ProbeSampler::sample(
    const std::vector<Probe>& population) const {
  std::vector<Probe> selected;
  for (Continent c : all_continents()) {
    // Bucket this continent's probes by (country, AS) so round-robin can
    // rotate across countries first and ASes second.
    std::map<CountryId, std::map<Asn, std::vector<const Probe*>>> buckets;
    for (const Probe& p : population)
      if (p.continent == c) buckets[p.country][p.asn].push_back(&p);
    if (buckets.empty()) continue;

    int taken = 0;
    // Round-robin: one pass picks at most one probe per country, rotating
    // the AS within each country between passes.
    while (taken < config_.sample_per_continent) {
      bool any = false;
      for (auto& [country, by_as] : buckets) {
        if (taken >= config_.sample_per_continent) break;
        // Find the AS with the most remaining probes not yet drained, to
        // spread coverage across ASes.
        auto best = by_as.end();
        for (auto it = by_as.begin(); it != by_as.end(); ++it)
          if (!it->second.empty() &&
              (best == by_as.end() ||
               it->second.size() > best->second.size()))
            best = it;
        if (best == by_as.end()) continue;
        selected.push_back(*best->second.back());
        best->second.pop_back();
        // Rotate: an AS just used goes to the back of consideration by
        // shrinking; the size-based pick above handles rotation naturally.
        ++taken;
        any = true;
      }
      if (!any) break;  // Continent exhausted.
    }
  }
  return selected;
}

}  // namespace irp
