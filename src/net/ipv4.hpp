// IPv4 addresses and prefixes.
//
// The data-plane simulator emits real IPv4 hop addresses (from per-AS address
// plans) so that IP-to-AS conversion, geolocation lookup, and prefix-specific
// policies work over the same artifacts the paper's pipeline consumed.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace irp {

/// An IPv4 address as a host-order 32-bit integer.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  /// Dotted-quad rendering, e.g. "192.0.2.1".
  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (network address + length). The network address is always
/// stored canonically, i.e. with host bits zeroed.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Builds a prefix; host bits of `network` are masked off.
  Ipv4Prefix(Ipv4Addr network, int length);

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  Ipv4Addr network() const { return network_; }
  int length() const { return length_; }

  /// Netmask as an address, e.g. /24 -> 255.255.255.0.
  Ipv4Addr netmask() const;

  /// Number of addresses covered (2^(32-length)).
  std::uint64_t size() const { return std::uint64_t{1} << (32 - length_); }

  /// True if `addr` falls inside this prefix.
  bool contains(Ipv4Addr addr) const;

  /// True if `other` is fully covered by this prefix.
  bool contains(const Ipv4Prefix& other) const;

  /// The i-th address inside the prefix (i < size()).
  Ipv4Addr address_at(std::uint64_t i) const;

  /// The two halves of this prefix; requires length() < 32.
  std::pair<Ipv4Prefix, Ipv4Prefix> split() const;

  /// "a.b.c.d/len".
  std::string to_string() const;

  friend auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  Ipv4Addr network_{};
  int length_ = 0;
};

/// Hash functor for prefix-keyed unordered containers. Mixes the network
/// address and length through a 64-bit finalizer so dense address plans
/// (consecutive /24s differ only in a few middle bits) still spread evenly.
struct Ipv4PrefixHash {
  std::size_t operator()(const Ipv4Prefix& p) const {
    std::uint64_t x =
        (std::uint64_t{p.network().value()} << 8) | std::uint64_t(p.length());
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace irp
