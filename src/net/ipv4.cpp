#include "net/ipv4.hpp"

#include <charconv>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

std::optional<std::uint32_t> parse_octet(std::string_view s) {
  if (s.empty() || s.size() > 3) return std::nullopt;
  std::uint32_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v > 255)
    return std::nullopt;
  return v;
}

constexpr std::uint32_t mask_for(int length) {
  return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& p : parts) {
    const auto octet = parse_octet(p);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
  return std::to_string((value_ >> 24) & 0xff) + "." +
         std::to_string((value_ >> 16) & 0xff) + "." +
         std::to_string((value_ >> 8) & 0xff) + "." +
         std::to_string(value_ & 0xff);
}

Ipv4Prefix::Ipv4Prefix(Ipv4Addr network, int length)
    : network_(network.value() & mask_for(length)), length_(length) {
  IRP_CHECK(length >= 0 && length <= 32, "prefix length must be in [0,32]");
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  int len = -1;
  auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      len < 0 || len > 32)
    return std::nullopt;
  return Ipv4Prefix{*addr, len};
}

Ipv4Addr Ipv4Prefix::netmask() const { return Ipv4Addr{mask_for(length_)}; }

bool Ipv4Prefix::contains(Ipv4Addr addr) const {
  return (addr.value() & mask_for(length_)) == network_.value();
}

bool Ipv4Prefix::contains(const Ipv4Prefix& other) const {
  return other.length_ >= length_ && contains(other.network_);
}

Ipv4Addr Ipv4Prefix::address_at(std::uint64_t i) const {
  IRP_CHECK(i < size(), "address index out of prefix range");
  return Ipv4Addr{network_.value() + static_cast<std::uint32_t>(i)};
}

std::pair<Ipv4Prefix, Ipv4Prefix> Ipv4Prefix::split() const {
  IRP_CHECK(length_ < 32, "cannot split a /32");
  const Ipv4Prefix lo{network_, length_ + 1};
  const Ipv4Prefix hi{
      Ipv4Addr{network_.value() | (std::uint32_t{1} << (31 - length_))},
      length_ + 1};
  return {lo, hi};
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

}  // namespace irp
