#include "net/address_plan.hpp"

namespace irp {

AddressPlan::AddressPlan(Ipv4Prefix pool) : pool_(pool) {
  IRP_CHECK(pool.length() <= 30, "pool too small to subdivide");
}

Ipv4Prefix AddressPlan::allocate(int length) {
  IRP_CHECK(length >= pool_.length() && length <= 32,
            "requested length outside pool range");
  const std::uint64_t block = std::uint64_t{1} << (32 - length);
  // Align the cursor up to the block size so the prefix is canonical.
  const std::uint64_t aligned = (cursor_ + block - 1) / block * block;
  IRP_CHECK(aligned + block <= pool_.size(), "address pool exhausted");
  cursor_ = aligned + block;
  return Ipv4Prefix{pool_.address_at(aligned), length};
}

}  // namespace irp
