// Address-space allocation for the synthetic Internet.
//
// Each AS receives one or more disjoint prefixes out of a global pool;
// router interface addresses and end-host addresses are carved from them.
// Keeping allocation centralized guarantees global disjointness, which the
// IP-to-AS conversion step relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "util/check.hpp"

namespace irp {

/// Hands out disjoint IPv4 prefixes of requested lengths from a base pool.
class AddressPlan {
 public:
  /// Allocates from `pool` (e.g. 10.0.0.0/8 for a simulated Internet).
  explicit AddressPlan(Ipv4Prefix pool);

  /// Allocates the next free prefix of exactly `length` bits.
  /// Throws CheckError when the pool is exhausted.
  Ipv4Prefix allocate(int length);

  /// Total addresses handed out so far.
  std::uint64_t allocated_addresses() const { return cursor_; }

  /// Addresses still available.
  std::uint64_t remaining_addresses() const {
    return pool_.size() - cursor_;
  }

  const Ipv4Prefix& pool() const { return pool_; }

 private:
  Ipv4Prefix pool_;
  std::uint64_t cursor_ = 0;  ///< Offset of the next unallocated address.
};

}  // namespace irp
