// Longest-prefix-match trie mapping IPv4 prefixes to values.
//
// Used for IP-to-AS conversion (mapping traceroute hop addresses to the AS
// originating the covering prefix) and for forwarding-table lookups.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace irp {

/// Binary trie keyed by IPv4 prefixes supporting exact insert and
/// longest-prefix-match lookup.
template <typename Value>
class PrefixTrie {
 public:
  /// Inserts or replaces the value at `prefix`.
  void insert(const Ipv4Prefix& prefix, Value value) {
    Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      auto& child = node->child[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    node->value = std::move(value);
    ++size_;
  }

  /// Longest-prefix match; nullopt when no covering prefix exists.
  std::optional<Value> lookup(Ipv4Addr addr) const {
    std::optional<Value> best;
    const Node* node = &root_;
    if (node->value) best = node->value;
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (!node) break;
      if (node->value) best = node->value;
    }
    return best;
  }

  /// Value stored exactly at `prefix`, if any.
  std::optional<Value> exact(const Ipv4Prefix& prefix) const {
    const Node* node = &root_;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (prefix.network().value() >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (!node) return std::nullopt;
    }
    return node->value;
  }

  /// Number of inserted prefixes (inserts replacing a value still count once
  /// per insert call; intended for sanity checks, not set semantics).
  std::size_t size() const { return size_; }

  /// Visits every (prefix, value) pair in lexicographic order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(&root_, 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> child[2];
  };

  template <typename Fn>
  static void walk(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (node->value)
      fn(Ipv4Prefix{Ipv4Addr{bits}, depth}, *node->value);
    for (int b = 0; b < 2; ++b) {
      if (node->child[b]) {
        const std::uint32_t next =
            b ? bits | (std::uint32_t{1} << (31 - depth)) : bits;
        walk(node->child[b].get(), next, depth + 1, fn);
      }
    }
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace irp
