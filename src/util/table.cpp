#include "util/table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  IRP_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  IRP_CHECK(cells.size() == headers_.size(),
            "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c > 0 ? 2 : 0);
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace irp
