// Statistics helpers: counters, fractions, and empirical CDFs.
//
// These back the paper's summary tables (shares of decision categories) and
// the skew CDFs of Figure 2.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>
#include <string>
#include <vector>

namespace irp {

/// Counts occurrences of keys and reports shares of the total.
template <typename Key>
class Counter {
 public:
  void add(const Key& k, std::size_t n = 1) {
    counts_[k] += n;
    total_ += n;
  }

  std::size_t count(const Key& k) const {
    auto it = counts_.find(k);
    return it == counts_.end() ? 0 : it->second;
  }

  std::size_t total() const { return total_; }

  /// Share of `k` among all additions; 0 if nothing was counted.
  double share(const Key& k) const {
    return total_ == 0 ? 0.0 : double(count(k)) / double(total_);
  }

  /// (key, count) pairs sorted by decreasing count (ties: key order).
  std::vector<std::pair<Key, std::size_t>> sorted_desc() const {
    std::vector<std::pair<Key, std::size_t>> v(counts_.begin(), counts_.end());
    std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    return v;
  }

  const std::map<Key, std::size_t>& raw() const { return counts_; }

 private:
  std::map<Key, std::size_t> counts_;
  std::size_t total_ = 0;
};

/// One point of an empirical CDF over ranked entities.
struct CdfPoint {
  std::size_t rank = 0;       ///< 1-based rank of the entity.
  double cumulative = 0.0;    ///< Cumulative fraction of the mass at this rank.
};

/// Builds the "ranked contribution" CDF used by Figure 2: entities sorted by
/// decreasing contribution, y = cumulative fraction of all contributions.
std::vector<CdfPoint> ranked_cdf(const std::vector<std::size_t>& counts);

/// Mean of a vector (0 for empty input).
double mean(const std::vector<double>& v);

/// p-th percentile (0..100) by nearest-rank; requires non-empty input.
double percentile(std::vector<double> v, double p);

/// Gini coefficient of a non-negative vector, a scalar skewness summary used
/// in tests for Figure 2 (0 = perfectly even, ->1 = fully concentrated).
double gini(std::vector<double> v);

}  // namespace irp
