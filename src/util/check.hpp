// Lightweight invariant-checking utilities.
//
// IRP_CHECK(cond, msg)    -- throws irp::CheckError if cond is false, always on.
// IRP_UNREACHABLE(msg)    -- throws irp::CheckError, marks impossible branches.
//
// These guard *logic* errors (broken invariants, bad configuration). They are
// deliberately exceptions rather than asserts so that tests can exercise the
// failure paths and so that misuse of the public API fails loudly in release
// builds too.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace irp {

/// Error thrown when an internal invariant or API precondition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError{os.str()};
}

}  // namespace detail
}  // namespace irp

#define IRP_CHECK(cond, msg)                                       \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::irp::detail::check_failed(#cond, __FILE__, __LINE__, msg); \
    }                                                              \
  } while (false)

#define IRP_UNREACHABLE(msg) \
  ::irp::detail::check_failed("unreachable", __FILE__, __LINE__, msg)
