#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace irp {

std::vector<CdfPoint> ranked_cdf(const std::vector<std::size_t>& counts) {
  std::vector<std::size_t> sorted = counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double total = double(
      std::accumulate(sorted.begin(), sorted.end(), std::size_t{0}));
  std::vector<CdfPoint> out;
  out.reserve(sorted.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    acc += double(sorted[i]);
    out.push_back({i + 1, total == 0.0 ? 0.0 : acc / total});
  }
  return out;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / double(v.size());
}

double percentile(std::vector<double> v, double p) {
  IRP_CHECK(!v.empty(), "percentile of empty vector");
  IRP_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * double(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

double gini(std::vector<double> v) {
  if (v.size() < 2) return 0.0;
  std::sort(v.begin(), v.end());
  double cum = 0.0, weighted = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    IRP_CHECK(v[i] >= 0.0, "gini requires non-negative values");
    cum += v[i];
    weighted += double(i + 1) * v[i];
  }
  if (cum == 0.0) return 0.0;
  const double n = double(v.size());
  return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
}

}  // namespace irp
