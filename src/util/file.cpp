#include "util/file.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace irp {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  IRP_CHECK(in.good(), "cannot open file for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  IRP_CHECK(out.good(), "cannot open file for writing: " + path);
  out.write(contents.data(), std::streamsize(contents.size()));
  IRP_CHECK(out.good(), "write failed: " + path);
}

}  // namespace irp
