// Plain-text table rendering for benchmark and example output.
//
// The benchmark harnesses print the same rows the paper's tables report;
// TextTable produces aligned, monospace-friendly output for that purpose.
#pragma once

#include <string>
#include <vector>

namespace irp {

/// A simple left/right aligned text table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a header separator line.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace irp
