// Minimal whole-file I/O helpers.
#pragma once

#include <string>
#include <string_view>

namespace irp {

/// Reads a whole file; throws CheckError when the file cannot be opened.
std::string read_file(const std::string& path);

/// Writes (truncates) a whole file; throws CheckError on failure.
void write_file(const std::string& path, std::string_view contents);

}  // namespace irp
