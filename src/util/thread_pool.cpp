#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace irp {
namespace {

/// Shared state of one parallel loop. Participants (workers that dequeued a
/// drain job, plus the calling thread) claim indices from `next` until the
/// range is exhausted or a participant failed. Completion is defined over
/// *started* participants only: a drain job still sitting in the queue when
/// the range runs dry simply exits on arrival, so nested loops finish even
/// when no worker ever picks their jobs up.
struct LoopState {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // First failure; guarded by mu.
  int in_flight = 0;         // Participants mid-drain; guarded by mu.

  void drain() {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++in_flight;
    }
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        failed.store(true);
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    if (--in_flight == 0) done_cv.notify_all();
  }
};

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve_threads(threads);
  workers_.reserve(static_cast<std::size_t>(count - 1));
  for (int i = 0; i + 1 < count; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void ThreadPool::worker_main() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::run_loop(std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    // Serial pool (threads == 1) or a trivial range: inline execution, no
    // queueing, no synchronization — the classic serial path.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;

  // One drain job per worker that could usefully help (never more jobs
  // than remaining indices). The caller drains too, so the loop completes
  // even if none of these jobs ever run.
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  for (std::size_t i = 0; i < helpers; ++i)
    enqueue([state] { state->drain(); });

  state->drain();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->in_flight == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace irp
