#include "util/rng.hpp"

#include <cmath>

namespace irp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) {
  IRP_CHECK(lo <= hi, "uniform_u64 requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == max()) return next();
  // Debiased modulo (rejection sampling on the tail).
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + v % bound;
}

int Rng::uniform_int(int lo, int hi) {
  IRP_CHECK(lo <= hi, "uniform_int requires lo <= hi");
  return lo + static_cast<int>(uniform_u64(0, static_cast<std::uint64_t>(
                                                  hi - lo)));
}

std::size_t Rng::index(std::size_t n) {
  IRP_CHECK(n > 0, "index requires n > 0");
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

double Rng::uniform() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  IRP_CHECK(mean > 0.0, "exponential mean must be positive");
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Irwin–Hall approximation: sum of 12 uniforms has mean 6, variance 1.
  double s = 0.0;
  for (int i = 0; i < 12; ++i) s += uniform();
  return mean + stddev * (s - 6.0);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  IRP_CHECK(n > 0, "zipf requires n > 0");
  if (n == 1) return 0;
  // Inverse-CDF over the (truncated) harmonic weights. For the sizes used in
  // this library (n up to a few thousand) a linear scan is fine and exact.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double target = uniform() * norm;
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (acc >= target) return k - 1;
  }
  return n - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  IRP_CHECK(k <= n, "cannot sample more indices than available");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: first k entries become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

Rng Rng::fork() { return Rng{next()}; }

}  // namespace irp
