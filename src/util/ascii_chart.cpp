#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {

std::string render_stacked_bars(const std::vector<StackedBar>& bars,
                                const std::vector<char>& glyphs, int width) {
  IRP_CHECK(width > 0, "bar width must be positive");
  IRP_CHECK(!glyphs.empty(), "need at least one glyph");
  std::size_t label_width = 0;
  for (const auto& bar : bars)
    label_width = std::max(label_width, bar.label.size());

  std::string out;
  for (const auto& bar : bars) {
    out += bar.label;
    out.append(label_width - bar.label.size() + 2, ' ');
    out += '|';
    int used = 0;
    for (std::size_t s = 0; s < bar.segments.size(); ++s) {
      const double share = std::clamp(bar.segments[s], 0.0, 1.0);
      int cells = int(std::lround(share * width));
      cells = std::min(cells, width - used);
      out.append(std::size_t(cells), glyphs[s % glyphs.size()]);
      used += cells;
    }
    out.append(std::size_t(width - used), ' ');
    out += "|\n";
  }
  return out;
}

std::string render_curves(const std::vector<CurveSeries>& series,
                          const std::vector<char>& glyphs, int width,
                          int height) {
  IRP_CHECK(width > 2 && height > 2, "grid too small");
  IRP_CHECK(!glyphs.empty(), "need at least one glyph");
  double max_x = 1.0;
  for (const auto& s : series)
    for (const auto& [x, y] : s.points) max_x = std::max(max_x, x);

  std::vector<std::string> grid(std::size_t(height),
                                std::string(std::size_t(width), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = glyphs[si % glyphs.size()];
    for (const auto& [x, y] : series[si].points) {
      const int col = std::clamp(int(std::lround(x / max_x * (width - 1))), 0,
                                 width - 1);
      const double yc = std::clamp(y, 0.0, 1.0);
      const int row = std::clamp(
          height - 1 - int(std::lround(yc * (height - 1))), 0, height - 1);
      grid[std::size_t(row)][std::size_t(col)] = glyph;
    }
  }

  std::string out;
  out += "1.0 +" + std::string(std::size_t(width), '-') + "+\n";
  for (const auto& row : grid) out += "    |" + row + "|\n";
  out += "0.0 +" + std::string(std::size_t(width), '-') + "+  x: 0.." +
         fixed(max_x, 0) + "\n";
  for (std::size_t si = 0; si < series.size(); ++si)
    out += "    " + std::string(1, glyphs[si % glyphs.size()]) + " = " +
           series[si].label + "\n";
  return out;
}

}  // namespace irp
