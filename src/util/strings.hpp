// Small string utilities shared across the library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace irp {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-casing.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Formats a fraction as a percentage with one decimal, e.g. "34.3%".
std::string percent(double fraction, int decimals = 1);

/// Formats a double with fixed decimals.
std::string fixed(double value, int decimals);

/// Strict decimal parse of the whole string: no sign, no whitespace, no
/// trailing characters, no overflow. nullopt on any violation — unlike
/// atoi/strtoull, "abc", "12abc", "" and "-1" all fail instead of becoming
/// 0 or wrapping. The CLI's checked flag parsing is built on this.
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// parse_u64 plus an inclusive range check.
std::optional<std::uint64_t> parse_u64_in(std::string_view s,
                                          std::uint64_t min,
                                          std::uint64_t max);

}  // namespace irp
