// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component of the library takes an irp::Rng (or a seed) so a
// whole study — topology generation, measurement campaigns, inference noise —
// is a pure function of its StudyConfig. The generator is xoshiro256**
// seeded via SplitMix64, which is fast, has a 256-bit state and passes BigCrush.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace irp {

/// Deterministic pseudo-random generator (xoshiro256** seeded by SplitMix64).
///
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions, but the member helpers below are preferred: they
/// are stable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Uniform size_t in [0, n-1]. Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Approximately normal value (sum of uniforms), mean/stddev as given.
  double normal(double mean, double stddev);

  /// Zipf-like rank sample in [0, n-1] with exponent s (s >= 0).
  /// Rank 0 is the most popular element.
  std::size_t zipf(std::size_t n, double s);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    IRP_CHECK(!v.empty(), "pick from empty vector");
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle, stable across platforms.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; changing the amount of
  /// randomness consumed by one component does not perturb the others.
  Rng fork();

 private:
  std::uint64_t state_[4]{};
};

}  // namespace irp
