// A fixed-size worker pool and deterministic parallel loops.
//
// This is the parallelism layer behind the passive study's hot paths
// (per-batch BGP convergence, per-snapshot relationship inference, GR
// path-set precomputation). Three rules keep parallel runs byte-identical
// to serial runs:
//   * Work is *claimed* dynamically (atomic index counter) but results are
//     always *consumed* in input order — parallel_map returns outputs at
//     their input index, and callers merge in that order.
//   * Workers never touch an Rng; all randomness stays in the serial
//     orchestration that surrounds a loop.
//   * threads == 1 builds no workers at all and every loop degenerates to
//     plain inline execution on the calling thread, so the default path is
//     exactly the pre-parallel code.
//
// The calling thread always participates in its own loop. Even when every
// worker is busy (or when parallel_for is invoked from *inside* a worker —
// nested loops), the caller drains the remaining indices itself, so a loop
// can never deadlock waiting for pool capacity.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include <condition_variable>

namespace irp {

/// Thread-count knob shared by every parallel phase of a study.
struct ParallelConfig {
  /// Number of threads for the parallel phases: 1 (default) runs the
  /// classic serial path, 0 uses one thread per hardware core, any other
  /// value is taken literally.
  int threads = 1;
};

/// Resolves a ParallelConfig::threads request to a concrete count (>= 1);
/// `requested <= 0` maps to std::thread::hardware_concurrency().
int resolve_threads(int requested);

/// Fixed-size worker pool; see the file comment for the execution model.
class ThreadPool {
 public:
  /// Spawns `resolve_threads(threads) - 1` workers; the calling thread is
  /// the remaining loop participant.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Loop participants: workers plus the calling thread.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Calls `fn(i)` exactly once for every i in [first, last), distributed
  /// over the pool, and blocks until every call returned. The first
  /// exception thrown by any invocation is rethrown here (indices not yet
  /// claimed when it fires are skipped). Safe to call from inside a worker.
  template <typename Fn>
  void parallel_for(std::size_t first, std::size_t last, Fn&& fn) {
    if (first >= last) return;
    run_loop(last - first,
             [&fn, first](std::size_t i) { fn(first + i); });
  }

  /// Maps `fn` over [0, n) and returns the results *in index order* — the
  /// output is independent of execution interleaving.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<std::optional<R>> slots(n);
    run_loop(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Convenience overload mapping over a vector's elements.
  template <typename T, typename Fn>
  auto parallel_map(const std::vector<T>& items, Fn&& fn)
      -> std::vector<decltype(fn(items[0]))> {
    return parallel_map(items.size(),
                        [&](std::size_t i) { return fn(items[i]); });
  }

 private:
  /// Type-erased core of the loop primitives: runs fn(0..n-1) on the pool
  /// with the caller participating; inline when the pool has no workers.
  void run_loop(std::size_t n, const std::function<void(std::size_t)>& fn);

  void enqueue(std::function<void()> job);
  void worker_main();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool stop_ = false;
};

}  // namespace irp
