// Text-mode charts for the figure harnesses: stacked horizontal bars
// (Figure 1/3) and step plots of cumulative curves (Figure 2).
#pragma once

#include <string>
#include <vector>

namespace irp {

/// One bar of a stacked horizontal bar chart.
struct StackedBar {
  std::string label;
  /// Segment shares in [0,1]; rendered left to right with the glyphs given
  /// to render_stacked_bars (cycled if needed).
  std::vector<double> segments;
};

/// Renders stacked horizontal bars, `width` characters per full bar.
/// Each segment uses the corresponding glyph from `glyphs`.
std::string render_stacked_bars(const std::vector<StackedBar>& bars,
                                const std::vector<char>& glyphs,
                                int width = 60);

/// A monotone curve given as (x, y) points with y in [0,1].
struct CurveSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

/// Renders one or more cumulative curves into a height x width character
/// grid; the x-axis spans [0, max x across series]. Each series is drawn
/// with its own glyph ('a' + index by default via `glyphs`).
std::string render_curves(const std::vector<CurveSeries>& series,
                          const std::vector<char>& glyphs, int width = 64,
                          int height = 16);

}  // namespace irp
