#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace irp {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // Overflow.
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::uint64_t> parse_u64_in(std::string_view s,
                                          std::uint64_t min,
                                          std::uint64_t max) {
  const std::optional<std::uint64_t> value = parse_u64(s);
  if (!value || *value < min || *value > max) return std::nullopt;
  return value;
}

}  // namespace irp
