// The ground-truth AS-level topology container.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "topo/types.hpp"
#include "util/check.hpp"

namespace irp {

/// Ground-truth Internet topology: ASes, links, and organizations.
///
/// ASNs are dense, starting at 1; this keeps per-AS state in flat vectors
/// throughout the simulator. The topology is append-only during generation
/// and immutable afterwards.
class Topology {
 public:
  /// Adds an AS and returns its ASN (assigned densely from 1).
  Asn add_as(AsNode node);

  /// Adds a link between two existing ASes and returns its id. The link is
  /// registered in both endpoints' adjacency lists.
  LinkId add_link(Link link);

  std::size_t num_ases() const { return nodes_.size(); }
  std::size_t num_links() const { return links_.size(); }

  const AsNode& as_node(Asn asn) const {
    IRP_CHECK(asn >= 1 && asn <= nodes_.size(), "ASN out of range");
    return nodes_[asn - 1];
  }
  AsNode& as_node_mutable(Asn asn) {
    IRP_CHECK(asn >= 1 && asn <= nodes_.size(), "ASN out of range");
    return nodes_[asn - 1];
  }

  const Link& link(LinkId id) const {
    IRP_CHECK(id < links_.size(), "link id out of range");
    return links_[id];
  }
  Link& link_mutable(LinkId id) {
    IRP_CHECK(id < links_.size(), "link id out of range");
    return links_[id];
  }

  /// The endpoint of `link` that is not `self`.
  Asn other_end(const Link& link, Asn self) const;

  /// Role of the *other* endpoint from `self`'s point of view.
  Relationship relationship_from(const Link& link, Asn self) const;

  /// IGP cost from `self`'s backbone to this link.
  int igp_cost_from(const Link& link, Asn self) const;

  /// Local-pref delta `self` applies to routes learned over this link.
  int lp_delta_from(const Link& link, Asn self) const;

  /// True if the link exists at `epoch`.
  bool link_alive(const Link& link, int epoch) const {
    return link.born_epoch <= epoch && epoch < link.died_epoch;
  }

  /// All link ids adjacent to `asn`.
  std::span<const LinkId> links_of(Asn asn) const {
    return as_node(asn).links;
  }

  /// All links between a pair of ASes (hybrid pairs have more than one).
  std::vector<LinkId> links_between(Asn a, Asn b) const;

  /// ASNs belonging to an organization.
  const std::vector<Asn>& ases_of_org(OrgId org) const;

  /// True if the two ASes belong to the same organization.
  bool same_org(Asn a, Asn b) const {
    return as_node(a).org == as_node(b).org;
  }

  /// Iterates over every AS (by ASN).
  template <typename Fn>
  void for_each_as(Fn&& fn) const {
    for (const auto& node : nodes_) fn(node);
  }

  /// Iterates over every link.
  template <typename Fn>
  void for_each_link(Fn&& fn) const {
    for (const auto& l : links_) fn(l);
  }

  /// Size of the customer cone of `asn` (itself + all transitively reachable
  /// customers over alive links at `epoch`). Used for AS-type checks.
  std::size_t customer_cone_size(Asn asn, int epoch) const;

 private:
  std::vector<AsNode> nodes_;
  std::vector<Link> links_;
  std::map<OrgId, std::vector<Asn>> orgs_;
};

}  // namespace irp
