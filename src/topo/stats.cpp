#include "topo/stats.hpp"

#include <algorithm>
#include <deque>

namespace irp {

TopologyStats compute_topology_stats(const Topology& topo, int epoch,
                                     std::size_t top_cone_count) {
  TopologyStats stats;
  stats.ases = topo.num_ases();

  std::vector<std::size_t> degree(topo.num_ases() + 1, 0);
  topo.for_each_link([&](const Link& l) {
    if (!topo.link_alive(l, epoch)) return;
    ++stats.links;
    switch (l.rel_of_b_from_a) {
      case Relationship::kPeer:     ++stats.p2p_links; break;
      case Relationship::kSibling:  ++stats.sibling_links; break;
      case Relationship::kCustomer:
      case Relationship::kProvider: ++stats.c2p_links; break;
    }
    ++degree[l.a];
    ++degree[l.b];
  });

  std::size_t degree_sum = 0;
  std::size_t stubs = 0;
  std::vector<std::size_t> cones;
  topo.for_each_as([&](const AsNode& node) {
    const std::size_t d = degree[node.asn];
    degree_sum += d;
    stats.max_degree = std::max(stats.max_degree, d);
    ++stats.degree_histogram[d];
    bool has_customer = false;
    for (LinkId lid : node.links) {
      const Link& l = topo.link(lid);
      if (!topo.link_alive(l, epoch)) continue;
      if (topo.relationship_from(l, node.asn) == Relationship::kCustomer)
        has_customer = true;
    }
    if (!has_customer) ++stubs;
    cones.push_back(topo.customer_cone_size(node.asn, epoch));
  });
  stats.avg_degree =
      stats.ases == 0 ? 0.0 : double(degree_sum) / double(stats.ases);
  stats.stub_share = stats.ases == 0 ? 0.0 : double(stubs) / double(stats.ases);
  std::sort(cones.rbegin(), cones.rend());
  cones.resize(std::min(cones.size(), top_cone_count));
  stats.top_cones = std::move(cones);

  // Hierarchy depth: BFS upward (to providers) from every stub until an AS
  // without providers is reached.
  std::size_t depth_sum = 0;
  std::size_t depth_count = 0;
  topo.for_each_as([&](const AsNode& node) {
    bool is_stub = true;
    for (LinkId lid : node.links) {
      const Link& l = topo.link(lid);
      if (topo.link_alive(l, epoch) &&
          topo.relationship_from(l, node.asn) == Relationship::kCustomer)
        is_stub = false;
    }
    if (!is_stub) return;
    // BFS to the first provider-free ancestor.
    std::deque<std::pair<Asn, std::size_t>> queue{{node.asn, 0}};
    std::vector<bool> seen(topo.num_ases() + 1, false);
    seen[node.asn] = true;
    while (!queue.empty()) {
      const auto [cur, depth] = queue.front();
      queue.pop_front();
      bool has_provider = false;
      for (LinkId lid : topo.links_of(cur)) {
        const Link& l = topo.link(lid);
        if (!topo.link_alive(l, epoch)) continue;
        if (topo.relationship_from(l, cur) != Relationship::kProvider)
          continue;
        has_provider = true;
        const Asn up = topo.other_end(l, cur);
        if (!seen[up]) {
          seen[up] = true;
          queue.push_back({up, depth + 1});
        }
      }
      if (!has_provider) {
        depth_sum += depth;
        ++depth_count;
        break;
      }
    }
  });
  stats.avg_hierarchy_depth =
      depth_count == 0 ? 0.0 : double(depth_sum) / double(depth_count);
  return stats;
}

}  // namespace irp
