#include "topo/types.hpp"

#include "util/check.hpp"

namespace irp {

Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer:     return Relationship::kPeer;
    case Relationship::kSibling:  return Relationship::kSibling;
  }
  IRP_UNREACHABLE("unknown relationship");
}

std::string_view relationship_name(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return "customer";
    case Relationship::kProvider: return "provider";
    case Relationship::kPeer:     return "peer";
    case Relationship::kSibling:  return "sibling";
  }
  IRP_UNREACHABLE("unknown relationship");
}

int preference_class(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return 0;
    case Relationship::kSibling:  return 0;
    case Relationship::kPeer:     return 1;
    case Relationship::kProvider: return 2;
  }
  IRP_UNREACHABLE("unknown relationship");
}

std::string_view as_type_name(AsType t) {
  switch (t) {
    case AsType::kStub:      return "Stub-AS";
    case AsType::kSmallIsp:  return "Small ISP";
    case AsType::kLargeIsp:  return "Large ISP";
    case AsType::kTier1:     return "Tier-1";
    case AsType::kContent:   return "Content";
    case AsType::kCable:     return "Cable";
    case AsType::kEducation: return "Education";
    case AsType::kTestbed:   return "Testbed";
  }
  IRP_UNREACHABLE("unknown AS type");
}

}  // namespace irp
