#include "topo/generator.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <string>

#include "util/check.hpp"

namespace irp {
namespace {

/// Continent-specific multiplier for the domestic-preference probability.
/// Table 3 of the paper shows domestic-path preference explains far fewer
/// violations in North America (1.9%) than elsewhere (~40-66%): US networks
/// rarely need to *avoid* international routes because the domestic mesh is
/// dense. The generator reproduces that asymmetry at the policy level.
double domestic_factor(Continent c) {
  switch (c) {
    case Continent::kAfrica:       return 1.3;
    case Continent::kAsia:         return 0.9;
    case Continent::kEurope:       return 1.3;
    case Continent::kNorthAmerica: return 0.08;
    case Continent::kOceania:      return 1.3;
    case Continent::kSouthAmerica: return 1.3;
  }
  IRP_UNREACHABLE("unknown continent");
}

/// Builds one GeneratedInternet; all state lives here during generation.
class Builder {
 public:
  explicit Builder(const GeneratorConfig& config)
      : cfg_(config),
        rng_(config.seed),
        out_(std::make_unique<GeneratedInternet>()),
        plan_(Ipv4Prefix{Ipv4Addr{10, 0, 0, 0}, 8}) {
    IRP_CHECK(cfg_.num_snapshots >= 1, "need at least one snapshot");
    out_->config = cfg_;
    out_->measurement_epoch = cfg_.num_snapshots - 1;
  }

  std::unique_ptr<GeneratedInternet> build() {
    Rng world_rng = rng_.fork();
    out_->world = World::generate(cfg_.world, world_rng);
    out_->geo = std::make_unique<GeoDatabase>(&out_->world,
                                              cfg_.geoloc_error_rate,
                                              rng_.fork());
    make_tier1s();
    make_large_isps();
    make_education();
    make_content_ases();
    make_cables();
    make_small_isps();
    make_stubs();
    make_testbed();
    make_links();
    make_hybrid_pairs();
    make_prefixes();
    make_caches_and_catalog();
    make_registries();
    pick_collectors();
    return std::move(out_);
  }

 private:
  using CityList = std::vector<CityId>;

  const World& world() const { return out_->world; }
  Topology& topo() { return out_->topology; }

  // ---------------------------------------------------------------- helpers

  CountryId random_country(Continent c) {
    return rng_.pick(world().countries_in(c));
  }

  CityId random_city_in(CountryId country) {
    return rng_.pick(world().cities_in(country));
  }

  /// Creates an AS with points of presence at the given cities. Infra
  /// prefixes (router addresses) are allocated and geolocated per PoP.
  Asn make_as(AsType type, OrgId org, CountryId home, const CityList& cities) {
    AsNode node;
    node.type = type;
    node.org = org;
    node.home_country = home;
    for (CityId city : cities) {
      PointOfPresence pop;
      pop.city = city;
      pop.router_prefix = plan_.allocate(24);
      out_->geo->register_prefix(pop.router_prefix, city);
      node.pops.push_back(pop);
    }
    IRP_CHECK(!node.pops.empty(), "an AS needs at least one PoP");
    return topo().add_as(std::move(node));
  }

  OrgId next_org() { return org_counter_++; }

  bool has_pop_on_continent(Asn asn, Continent c) const {
    for (const auto& pop : out_->topology.as_node(asn).pops)
      if (out_->world.continent_of_city(pop.city) == c) return true;
    return false;
  }

  /// A plausible interconnection city for a link between `a` and `b`:
  /// a shared city if one exists, otherwise a random PoP city of either end.
  CityId interconnect_city(Asn a, Asn b) {
    const auto& pa = topo().as_node(a).pops;
    const auto& pb = topo().as_node(b).pops;
    std::vector<CityId> common;
    for (const auto& x : pa)
      for (const auto& y : pb)
        if (x.city == y.city) common.push_back(x.city);
    if (!common.empty()) return rng_.pick(common);
    return rng_.chance(0.5) ? rng_.pick(pa).city : rng_.pick(pb).city;
  }

  int igp_cost(Asn asn, CityId link_city) const {
    const auto& pops = out_->topology.as_node(asn).pops;
    double best = 1e18;
    for (const auto& pop : pops)
      best = std::min(best, out_->world.distance_km(pop.city, link_city));
    return 1 + static_cast<int>(best / 50.0);
  }

  struct ConnectOpts {
    bool stable = false;        ///< Exempt from birth/death churn.
    bool allow_te = true;       ///< Eligible for local-pref TE overrides.
    int lp_delta_a = 0;         ///< Explicit deltas (applied on top of TE).
    int lp_delta_b = 0;
    bool partial_allowed = true;
    int forced_died_epoch = -1; ///< >=0 forces the link to die then.
  };

  LinkId connect(Asn a, Asn b, Relationship rel_of_b_from_a) {
    return connect(a, b, rel_of_b_from_a, ConnectOpts{});
  }

  LinkId connect(Asn a, Asn b, Relationship rel_of_b_from_a,
                 ConnectOpts opts) {
    if (a == b) return kInvalidLink;
    // Avoid duplicate plain links between a pair (hybrid pairs are created
    // explicitly elsewhere).
    if (!topo().links_between(a, b).empty()) return kInvalidLink;

    Link link;
    link.a = a;
    link.b = b;
    link.rel_of_b_from_a = rel_of_b_from_a;
    link.city = interconnect_city(a, b);
    // Small deterministic jitter keeps IGP costs from tying everywhere —
    // real intradomain metrics almost never tie across distinct exits.
    link.igp_cost_a = igp_cost(a, link.city) + rng_.uniform_int(0, 3);
    link.igp_cost_b = igp_cost(b, link.city) + rng_.uniform_int(0, 3);
    link.lp_delta_a = opts.lp_delta_a;
    link.lp_delta_b = opts.lp_delta_b;

    if (opts.allow_te) {
      // Traffic engineering that crosses Gao-Rexford class boundaries, e.g.
      // preferring a peer over a customer (the paper's Cogent/Akamai case).
      if (rng_.chance(cfg_.te_override_prob))
        link.lp_delta_a += rng_.chance(0.5) ? 150 : -150;
      if (rng_.chance(cfg_.te_override_prob))
        link.lp_delta_b += rng_.chance(0.5) ? 150 : -150;
    }

    const bool is_transit = rel_of_b_from_a == Relationship::kCustomer ||
                            rel_of_b_from_a == Relationship::kProvider;
    if (opts.partial_allowed && is_transit &&
        rng_.chance(cfg_.partial_transit_prob))
      link.partial_transit = true;

    const int last = out_->measurement_epoch;
    if (opts.forced_died_epoch >= 0) {
      link.died_epoch = opts.forced_died_epoch;
    } else if (!opts.stable && last >= 1) {
      if (rng_.chance(cfg_.link_birth_prob))
        link.born_epoch = rng_.uniform_int(1, last);
      else if (rng_.chance(cfg_.link_death_prob))
        link.died_epoch = rng_.uniform_int(
            std::max(1, link.born_epoch + 1), last);
    }
    return topo().add_link(link);
  }

  // ------------------------------------------------------------ populations

  void make_tier1s() {
    for (int i = 0; i < cfg_.tier1_count; ++i) {
      const OrgId org = next_org();
      CityList cities;
      auto continents = all_continents();
      rng_.shuffle(continents);
      const int presence = rng_.uniform_int(4, kNumContinents);
      CountryId home = 0;
      for (int c = 0; c < presence; ++c) {
        const CountryId country = random_country(continents[c]);
        if (c == 0) home = country;
        cities.push_back(random_city_in(country));
        if (rng_.chance(0.4)) cities.push_back(random_city_in(country));
      }
      const Asn asn = make_as(AsType::kTier1, org, home, cities);
      out_->tier1s.push_back(asn);
    }
  }

  void make_large_isps() {
    large_by_continent_.resize(kNumContinents);
    for (Continent continent : all_continents()) {
      for (int i = 0; i < cfg_.large_isps_per_continent; ++i) {
        const OrgId org = next_org();
        const Asn asn = make_regional_isp(org, continent);
        large_by_continent_[int(continent)].push_back(asn);
        out_->large_isps.push_back(asn);

        if (rng_.chance(cfg_.sibling_org_prob)) {
          // Two patterns of multi-ASN organizations (§4.2): regional splits
          // (Verizon AS701/702/703, one ASN per region) and same-region
          // mergers (Level 3 + Global Crossing) whose customer cones
          // overlap — the overlap produces sibling-flavored deviations
          // from the GR model.
          const bool merger = rng_.chance(0.5);
          const int extra = merger ? 1 : rng_.uniform_int(1, 2);
          std::vector<Asn> members{asn};
          auto continents = all_continents();
          rng_.shuffle(continents);
          for (int s = 0, made = 0; s < kNumContinents && made < extra; ++s) {
            const Continent where = merger ? continent : continents[s];
            if (!merger && continents[s] == continent) continue;
            const Asn sib = make_regional_isp(org, where);
            large_by_continent_[int(where)].push_back(sib);
            out_->large_isps.push_back(sib);
            members.push_back(sib);
            if (merger) merger_pairs_.emplace_back(asn, sib);
            ++made;
          }
          // Sibling links: mutual transit inside the organization.
          for (std::size_t m = 1; m < members.size(); ++m)
            connect(members[0], members[m], Relationship::kSibling,
                    {.stable = true, .allow_te = false});
        }
      }
    }
  }

  bool is_na_primary(const Country& country) const {
    return country.continent == Continent::kNorthAmerica &&
           country.id == out_->world.countries_in(
                             Continent::kNorthAmerica).front();
  }

  Asn make_regional_isp(OrgId org, Continent continent) {
    CityList cities;
    const int countries = rng_.uniform_int(2, 4);
    CountryId home = 0;
    std::vector<CountryId> pool = world().countries_in(continent);
    rng_.shuffle(pool);
    // North-American ISPs are usually headquartered in the primary country.
    if (continent == Continent::kNorthAmerica && rng_.chance(0.7)) {
      const CountryId primary = world().countries_in(continent).front();
      auto it = std::find(pool.begin(), pool.end(), primary);
      if (it != pool.end()) std::iter_swap(pool.begin(), it);
    }
    for (int c = 0; c < countries && c < int(pool.size()); ++c) {
      if (c == 0) home = pool[c];
      cities.push_back(random_city_in(pool[c]));
    }
    return make_as(AsType::kLargeIsp, org, home, cities);
  }

  void make_education() {
    edu_by_continent_.resize(kNumContinents);
    for (Continent continent : all_continents()) {
      for (int i = 0; i < cfg_.education_per_continent; ++i) {
        CityList cities;
        std::vector<CountryId> pool = world().countries_in(continent);
        rng_.shuffle(pool);
        CountryId home = pool[0];
        for (int c = 0; c < 3 && c < int(pool.size()); ++c)
          cities.push_back(random_city_in(pool[c]));
        const Asn asn =
            make_as(AsType::kEducation, next_org(), home, cities);
        edu_by_continent_[int(continent)].push_back(asn);
        out_->education.push_back(asn);
      }
    }
  }

  void make_content_ases() {
    for (int i = 0; i < cfg_.content_orgs; ++i) {
      const OrgId org = next_org();
      CityList cities;
      auto continents = all_continents();
      rng_.shuffle(continents);
      const int presence = rng_.uniform_int(3, 5);
      CountryId home = 0;
      for (int c = 0; c < presence; ++c) {
        const CountryId country = random_country(continents[c]);
        if (c == 0) home = country;
        cities.push_back(random_city_in(country));
      }
      const Asn asn = make_as(AsType::kContent, org, home, cities);
      out_->content_asns.push_back(asn);
      content_primary_.push_back(asn);

      if (rng_.chance(cfg_.content_sibling_prob)) {
        // A second ASN from a merger/acquisition, same organization.
        const CountryId home2 = random_country(continents[presence % 6]);
        const Asn sib = make_as(AsType::kContent, org, home2,
                                {random_city_in(home2)});
        out_->content_asns.push_back(sib);
        connect(asn, sib, Relationship::kSibling,
                {.stable = true, .allow_te = false});
      }
    }
  }

  void make_cables() {
    for (int i = 0; i < cfg_.cable_count; ++i) {
      auto continents = all_continents();
      rng_.shuffle(continents);
      const Continent side_a = continents[0];
      const Continent side_b = continents[1];
      const CountryId ca = random_country(side_a);
      const CountryId cb = random_country(side_b);
      const CityId landing_a = random_city_in(ca);
      const CityId landing_b = random_city_in(cb);
      const Asn asn = make_as(AsType::kCable, next_org(), ca,
                              {landing_a, landing_b});
      out_->cable_asns.push_back(asn);
      cable_sides_.push_back({asn, side_a, side_b});
    }
  }

  void make_small_isps() {
    small_by_country_.resize(world().countries().size());
    for (const Country& country : world().countries()) {
      int count = cfg_.small_isps_per_country;
      if (is_na_primary(country)) count *= cfg_.na_primary_country_factor;
      for (int i = 0; i < count; ++i) {
        CityList cities{random_city_in(country.id)};
        if (rng_.chance(0.5)) cities.push_back(random_city_in(country.id));
        const Asn asn =
            make_as(AsType::kSmallIsp, next_org(), country.id, cities);
        small_by_country_[country.id].push_back(asn);
        out_->small_isps.push_back(asn);
      }
    }
  }

  void make_stubs() {
    stubs_by_country_.resize(world().countries().size());
    for (const Country& country : world().countries()) {
      int count = cfg_.stubs_per_country;
      if (is_na_primary(country)) count *= cfg_.na_primary_country_factor;
      for (int i = 0; i < count; ++i) {
        const Asn asn = make_as(AsType::kStub, next_org(), country.id,
                                {random_city_in(country.id)});
        stubs_by_country_[country.id].push_back(asn);
        out_->stubs.push_back(asn);
      }
    }
  }

  void make_testbed() {
    // University muxes: six on one continent, the rest on another, echoing
    // the paper's six US universities plus one Brazilian provider.
    const Continent primary = Continent::kNorthAmerica;
    const Continent secondary = Continent::kSouthAmerica;
    for (int i = 0; i < cfg_.testbed_mux_count; ++i) {
      const Continent continent = i < 6 ? primary : secondary;
      const CountryId country = random_country(continent);
      const Asn mux = make_as(AsType::kEducation, next_org(), country,
                              {random_city_in(country)});
      out_->testbed_muxes.push_back(mux);
    }
    const CountryId tb_home =
        out_->topology.as_node(out_->testbed_muxes[0]).home_country;
    out_->testbed_asn =
        make_as(AsType::kTestbed, next_org(), tb_home,
                {out_->topology.as_node(out_->testbed_muxes[0]).pops[0].city});
  }

  // ----------------------------------------------------------------- links

  void make_links() {
    // Tier-1 clique: full settlement-free mesh.
    for (std::size_t i = 0; i < out_->tier1s.size(); ++i)
      for (std::size_t j = i + 1; j < out_->tier1s.size(); ++j)
        connect(out_->tier1s[i], out_->tier1s[j], Relationship::kPeer,
                {.stable = true});

    // Large ISPs: transit from Tier-1s, peering within (and occasionally
    // across) continents.
    for (Continent continent : all_continents()) {
      const auto& larges = large_by_continent_[int(continent)];
      for (Asn isp : larges) {
        const int providers = rng_.uniform_int(1, 2);
        auto t1 = pick_tier1s(continent, providers);
        for (std::size_t p = 0; p < t1.size(); ++p)
          connect(isp, t1[p], Relationship::kProvider,
                  {.stable = p == 0});  // Primary transit never churns.
        for (Asn other : larges)
          if (other < isp &&
              rng_.chance(cfg_.large_isp_same_continent_peer_prob))
            connect(isp, other, Relationship::kPeer);
      }
    }
    for (Asn a : out_->large_isps)
      for (Asn b : out_->large_isps)
        if (b < a && rng_.chance(cfg_.large_isp_cross_continent_peer_prob))
          connect(a, b, Relationship::kPeer);

    // Education backbones: one Tier-1 (or large ISP) provider, dense GREN
    // mesh across continents.
    for (Asn edu : out_->education) {
      connect(edu, rng_.pick(out_->tier1s), Relationship::kProvider,
              {.stable = true});
      if (rng_.chance(0.5))
        connect(edu, rng_.pick(out_->large_isps), Relationship::kProvider);
    }
    for (Asn a : out_->education)
      for (Asn b : out_->education)
        if (b < a && rng_.chance(cfg_.education_mesh_prob))
          connect(a, b, Relationship::kPeer, {.allow_te = false});

    // Content providers: transit from Tier-1s/large ISPs plus wide peering.
    // The second wide-deployment org (the "Netflix-like" one) serves almost
    // everything from off-net caches and keeps only thin origin peering —
    // which is exactly why the stale direct link created below dominates
    // the model's paths toward its origin network.
    const Asn thin_peering_org =
        content_primary_.size() > 1 ? content_primary_[1] : 0;
    for (Asn cp : out_->content_asns) {
      connect(cp, rng_.pick(out_->tier1s), Relationship::kProvider,
              {.stable = true});
      if (rng_.chance(0.7))
        connect(cp, rng_.pick(out_->large_isps), Relationship::kProvider);
      const double peer_scale = cp == thin_peering_org ? 0.15 : 1.0;
      for (Continent continent : all_continents()) {
        if (!has_pop_on_continent(cp, continent)) continue;
        for (Asn isp : large_by_continent_[int(continent)])
          if (rng_.chance(cfg_.content_large_peer_prob * peer_scale))
            connect(cp, isp, Relationship::kPeer);
        for (CountryId country : world().countries_in(continent))
          for (Asn isp : small_by_country_[country])
            if (rng_.chance(cfg_.content_small_peer_prob * peer_scale))
              connect(cp, isp, Relationship::kPeer);
      }
    }
    // The "Cogent/Akamai" pattern (§5): some providers of the big content
    // networks de-preference their direct customer route below peer routes,
    // concentrating NonBest violations on those destinations.
    for (int i = 0; i < cfg_.wide_deployment_orgs &&
                    i < int(content_primary_.size()); ++i) {
      const Asn cp = content_primary_[i];
      for (LinkId lid : topo().as_node(cp).links) {
        Link& l = topo().link_mutable(lid);
        if (topo().relationship_from(l, cp) != Relationship::kProvider)
          continue;
        if (!rng_.chance(0.7)) continue;
        if (l.a == cp)
          l.lp_delta_b -= 150;  // The provider side de-prefs the route.
        else
          l.lp_delta_a -= 150;
      }
    }

    // A guaranteed stale link, echoing the paper's Netflix/AS3549 finding: a
    // direct peering that existed in earlier snapshots but is gone at
    // measurement time (it survives in the aggregated inferred topology).
    // With the thin origin peering above, this dead shortcut dominates the
    // model's view of paths toward the org's own network.
    if (!content_primary_.empty() && out_->measurement_epoch >= 1) {
      const Asn victim = content_primary_[1 % content_primary_.size()];
      for (int i = 0; i < 3 && i < int(out_->tier1s.size()); ++i)
        stale_content_link_ = connect(
            victim, out_->tier1s[i], Relationship::kPeer,
            {.allow_te = false,
             .forced_died_epoch = out_->measurement_epoch});
    }

    // Undersea cables: the attached ISPs buy point-to-point transit from the
    // cable operator. The operator has no providers or peers, so it can only
    // carry traffic between its landing sides — which is exactly the
    // behaviour that confuses relationship inference (§6).
    for (const auto& cable : cable_sides_) {
      for (Continent side : {cable.side_a, cable.side_b}) {
        const auto& pool = large_by_continent_[int(side)];
        if (pool.empty()) continue;
        const int attach = rng_.uniform_int(cfg_.cable_attach_per_side_min,
                                            cfg_.cable_attach_per_side_max);
        auto chosen = rng_.sample_indices(
            pool.size(), std::min<std::size_t>(attach, pool.size()));
        for (std::size_t idx : chosen)
          connect(cable.asn, pool[idx], Relationship::kCustomer,
                  {.stable = true,
                   .allow_te = false,
                   // The ISP side up-prefs the cable shortcut above regular
                   // providers but below peers.
                   .lp_delta_b = cfg_.cable_lp_delta,
                   .partial_allowed = false});
      }
    }

    // Small ISPs: transit from large ISPs of their continent (sometimes
    // directly from a Tier-1), national peering meshes (IXP-style edge
    // richness).
    for (const Country& country : world().countries()) {
      const auto& larges = large_by_continent_[int(country.continent)];
      // Weighted provider pool: large ISPs dominate, Tier-1s sell direct
      // transit to regional ISPs too (this is what gives real Tier-1s their
      // towering transit degrees).
      std::vector<Asn> pool;
      for (Asn l : larges) for (int w = 0; w < 3; ++w) pool.push_back(l);
      for (Asn t : out_->tier1s)
        if (has_pop_on_continent(t, country.continent)) pool.push_back(t);
      for (Asn isp : small_by_country_[country.id]) {
        const int providers = rng_.uniform_int(1, 3);
        for (int p = 0; p < providers && !pool.empty(); ++p)
          connect(isp, rng_.pick(pool), Relationship::kProvider,
                  {.stable = p == 0});
        for (Asn other : small_by_country_[country.id])
          if (other < isp && rng_.chance(cfg_.small_isp_same_country_peer_prob))
            connect(isp, other, Relationship::kPeer);
      }
    }

    // Stubs: one or two providers, mostly national access ISPs with the
    // occasional direct large-ISP uplink; occasional IXP peering with other
    // local stubs.
    for (const Country& country : world().countries()) {
      std::vector<Asn> upstreams;
      for (Asn s : small_by_country_[country.id])
        for (int w = 0; w < 8; ++w) upstreams.push_back(s);
      for (Asn isp : large_by_continent_[int(country.continent)])
        upstreams.push_back(isp);
      IRP_CHECK(!upstreams.empty(), "country without any ISP");
      for (Asn stub : stubs_by_country_[country.id]) {
        connect(stub, rng_.pick(upstreams), Relationship::kProvider,
                {.stable = true});
        if (rng_.chance(cfg_.stub_multihome_prob))
          connect(stub, rng_.pick(upstreams), Relationship::kProvider);
        if (rng_.chance(cfg_.stub_ixp_peer_prob))
          connect(stub, rng_.pick(stubs_by_country_[country.id]),
                  Relationship::kPeer, {.allow_te = false});
      }
    }

    // Testbed muxes: customers of an education backbone (plus sometimes a
    // commercial ISP); the testbed AS is a customer of every mux.
    for (std::size_t i = 0; i < out_->testbed_muxes.size(); ++i) {
      const Asn mux = out_->testbed_muxes[i];
      const Continent continent = world().continent_of_country(
          topo().as_node(mux).home_country);
      const auto& edus = edu_by_continent_[int(continent)];
      if (!edus.empty())
        connect(mux, rng_.pick(edus), Relationship::kProvider,
                {.stable = true, .allow_te = false});
      else
        connect(mux, rng_.pick(out_->large_isps), Relationship::kProvider,
                {.stable = true, .allow_te = false});
      if (rng_.chance(0.5))
        connect(mux, rng_.pick(large_by_continent_[int(continent)]),
                Relationship::kProvider, {.allow_te = false});
      const LinkId l =
          connect(out_->testbed_asn, mux, Relationship::kProvider,
                  {.stable = true, .allow_te = false, .partial_allowed = false});
      IRP_CHECK(l != kInvalidLink, "testbed mux link creation failed");
      out_->testbed_mux_links.push_back(l);
    }

    reinforce_merger_overlap();
    assign_policy_flags();
  }

  /// Post-merger integration: customers of one merged ASN often buy a
  /// second uplink from the other (one sales organization, two networks).
  /// The resulting cone overlap is what makes per-ASN GR models misjudge
  /// sibling routing (§4.2): the organization hands traffic across the
  /// sibling link even when each ASN individually has a "better" route.
  void reinforce_merger_overlap() {
    for (const auto& [a, b] : merger_pairs_) {
      const auto cone_a = customer_cone_members(a);
      const auto cone_b = customer_cone_members(b);
      std::vector<Asn> candidates;
      for (Asn member : cone_a) {
        if (cone_b.count(member)) continue;
        if (topo().as_node(member).type != AsType::kStub) continue;
        candidates.push_back(member);
      }
      rng_.shuffle(candidates);
      const std::size_t adds = std::min<std::size_t>(20, candidates.size());
      for (std::size_t i = 0; i < adds; ++i) {
        connect(candidates[i], b, Relationship::kProvider,
                {.stable = true, .allow_te = false, .partial_allowed = false});
        overlap_stubs_.insert(candidates[i]);
      }
    }
  }

  std::set<Asn> customer_cone_members(Asn root) const {
    std::set<Asn> cone{root};
    std::vector<Asn> queue{root};
    while (!queue.empty()) {
      const Asn cur = queue.back();
      queue.pop_back();
      for (LinkId lid : out_->topology.as_node(cur).links) {
        const Link& l = out_->topology.link(lid);
        if (out_->topology.relationship_from(l, cur) !=
            Relationship::kCustomer)
          continue;
        const Asn next = out_->topology.other_end(l, cur);
        if (cone.insert(next).second) queue.push_back(next);
      }
    }
    return cone;
  }

  void assign_policy_flags() {
    topo().for_each_as([&](const AsNode& node) {
      AsNode& mut = topo().as_node_mutable(node.asn);
      const Continent continent =
          world().continent_of_country(node.home_country);
      if (rng_.chance(cfg_.domestic_pref_prob * domestic_factor(continent)))
        mut.prefers_domestic = true;
      const bool is_transit = node.type == AsType::kSmallIsp ||
                              node.type == AsType::kLargeIsp ||
                              node.type == AsType::kTier1;
      if (is_transit && rng_.chance(cfg_.flat_local_pref_prob))
        mut.flat_local_pref = true;
      const bool is_isp = is_transit || node.type == AsType::kEducation;
      if (is_isp && rng_.chance(cfg_.looking_glass_prob))
        mut.has_looking_glass = true;
    });
    // The testbed never deviates: it is our vantage, not a subject.
    topo().as_node_mutable(out_->testbed_asn).prefers_domestic = false;
    topo().as_node_mutable(out_->testbed_asn).flat_local_pref = false;
  }

  std::vector<Asn> pick_tier1s(Continent continent, int n) {
    std::vector<Asn> present;
    for (Asn t : out_->tier1s)
      if (has_pop_on_continent(t, continent)) present.push_back(t);
    if (present.empty()) present = out_->tier1s;
    std::vector<Asn> out;
    auto idx = rng_.sample_indices(present.size(),
                                   std::min<std::size_t>(n, present.size()));
    for (auto i : idx) out.push_back(present[i]);
    return out;
  }

  void make_hybrid_pairs() {
    // Hybrid relationships (§4.1): a pair of ASes whose relationship differs
    // by interconnection city — peer at one IXP, customer/provider elsewhere.
    int made = 0;
    int attempts = 0;
    while (made < cfg_.hybrid_pair_count && ++attempts < 1000) {
      const Asn a = rng_.pick(out_->large_isps);
      const Asn b = rng_.pick(out_->large_isps);
      if (a == b || !topo().links_between(a, b).empty()) continue;
      const auto& pa = topo().as_node(a).pops;
      const auto& pb = topo().as_node(b).pops;
      if (pa.size() < 2 || pb.empty()) continue;

      Link peer_link;
      peer_link.a = a;
      peer_link.b = b;
      peer_link.rel_of_b_from_a = Relationship::kPeer;
      peer_link.city = pa[0].city;
      peer_link.igp_cost_a = igp_cost(a, peer_link.city);
      peer_link.igp_cost_b = igp_cost(b, peer_link.city);
      topo().add_link(peer_link);

      Link transit_link;
      transit_link.a = a;
      transit_link.b = b;
      transit_link.rel_of_b_from_a = Relationship::kCustomer;  // b buys from a.
      // Hybrid transit between comparable ISPs is regional by nature — the
      // provider serves only part of the table (Giotsas et al. lump hybrid
      // and partial-transit relationships for the same reason).
      transit_link.partial_transit = true;
      transit_link.city = pa[1].city;
      transit_link.igp_cost_a = igp_cost(a, transit_link.city);
      transit_link.igp_cost_b = igp_cost(b, transit_link.city);
      topo().add_link(transit_link);

      out_->hybrid_pairs.emplace_back(a, b);
      ++made;
    }
  }

  // -------------------------------------------------------------- prefixes

  void make_prefixes() {
    topo().for_each_as([&](const AsNode& node) {
      AsNode& mut = topo().as_node_mutable(node.asn);
      switch (node.type) {
        case AsType::kStub:
          add_prefix(mut, 22);
          break;
        case AsType::kSmallIsp:
        case AsType::kEducation:
          add_prefix(mut, 21);
          break;
        case AsType::kLargeIsp:
        case AsType::kTier1:
          add_prefix(mut, 20);
          if (rng_.chance(0.4)) add_prefix(mut, 21);
          break;
        case AsType::kCable:
          add_prefix(mut, 24);
          break;
        case AsType::kContent: {
          const int n = rng_.uniform_int(cfg_.min_prefixes_per_content,
                                         cfg_.max_prefixes_per_content);
          for (int i = 0; i < n; ++i) add_prefix(mut, 22);
          break;
        }
        case AsType::kTestbed:
          break;  // Experiment prefixes are allocated separately.
      }
    });

    // Selective (prefix-specific) announcement at content origins: the
    // premium prefix is announced only over one transit link (§4.3's
    // "forwarding prefixes hosting enterprise-class services to a more
    // expensive provider").
    for (Asn cp : content_primary_) {
      if (!rng_.chance(cfg_.content_selective_prob)) continue;
      AsNode& node = topo().as_node_mutable(cp);
      std::vector<LinkId> transit_links;
      for (LinkId lid : node.links)
        if (topo().relationship_from(topo().link(lid), cp) ==
            Relationship::kProvider)
          transit_links.push_back(lid);
      if (transit_links.empty() || node.prefixes.empty()) continue;
      OriginatedPrefix& premium = node.prefixes.back();
      premium.announce_only_on = {rng_.pick(transit_links)};
      premium.selective = true;
    }

    // Inbound traffic engineering: some multi-homed origins prepend their
    // ASN on one transit link to steer traffic toward the other. This is
    // invisible to the GR model and also perturbs which origin edges the
    // route collectors observe per prefix (the PSP criteria's blind spot).
    topo().for_each_as([&](const AsNode& node) {
      AsNode& mut = topo().as_node_mutable(node.asn);
      std::vector<LinkId> transit;
      for (LinkId lid : node.links)
        if (topo().relationship_from(topo().link(lid), node.asn) ==
            Relationship::kProvider)
          transit.push_back(lid);
      if (transit.size() < 2) return;
      for (auto& op : mut.prefixes) {
        if (!op.announce_only_on.empty()) continue;
        if (!rng_.chance(cfg_.prepend_prob)) continue;
        op.prepend_on = {{rng_.pick(transit), rng_.uniform_int(1, 3)}};
      }
    });

    // Testbed experiment prefixes (not announced by default).
    out_->testbed_prefixes.push_back(plan_.allocate(24));
    out_->testbed_prefixes.push_back(plan_.allocate(24));
    for (const auto& p : out_->testbed_prefixes)
      out_->geo->register_prefix(
          p, topo().as_node(out_->testbed_asn).pops[0].city);
  }

  void add_prefix(AsNode& node, int length) {
    OriginatedPrefix op;
    op.prefix = plan_.allocate(length);
    out_->geo->register_prefix(op.prefix, node.pops[0].city);
    node.prefixes.push_back(op);
  }

  // ------------------------------------------------- content catalog/caches

  void make_caches_and_catalog() {
    int hostname_counter = 0;
    for (std::size_t i = 0; i < content_primary_.size(); ++i) {
      const Asn origin = content_primary_[i];
      AsNode& node = topo().as_node_mutable(origin);
      ContentService service;
      service.org_name = "content-org" + std::to_string(node.org);
      service.origin_asn = origin;
      service.wide_deployment = int(i) < cfg_.wide_deployment_orgs;

      const int hostnames = rng_.uniform_int(2, 3);
      for (int h = 0; h < hostnames; ++h) {
        ContentHostname ch;
        ch.name = "svc" + std::to_string(hostname_counter++) + ".org" +
                  std::to_string(node.org) + ".example";
        // Premium hostnames resolve into the selective prefix when present
        // and are served from the origin network only.
        const auto& prefixes = node.prefixes;
        IRP_CHECK(!prefixes.empty(), "content AS without prefixes");
        if (h == 0 && prefixes.back().selective) {
          ch.origin_prefix = prefixes.back().prefix;
          ch.premium = true;
        } else if (h == 0 && service.wide_deployment) {
          // Wide deployers also run origin-only enterprise services.
          ch.origin_prefix = prefixes.front().prefix;
          ch.premium = true;
        } else {
          ch.origin_prefix = prefixes[rng_.index(prefixes.size())].prefix;
        }
        service.hostnames.push_back(std::move(ch));
      }

      // Off-net caches inside eyeball networks.
      const double host_prob = service.wide_deployment
                                   ? cfg_.wide_cache_host_prob
                                   : cfg_.light_cache_host_prob;
      auto consider_host = [&](Asn host) {
        // Well-connected multihomed eyeballs attract cache deployments.
        const double p =
            overlap_stubs_.count(host) ? std::min(1.0, host_prob * 5) : host_prob;
        if (!rng_.chance(p)) return;
        ContentCache cache;
        cache.host_asn = host;
        cache.prefix = plan_.allocate(24);
        AsNode& host_node = topo().as_node_mutable(host);
        OriginatedPrefix op;
        op.prefix = cache.prefix;
        host_node.prefixes.push_back(op);
        out_->geo->register_prefix(cache.prefix, host_node.pops[0].city);
        service.caches.push_back(cache);
      };
      for (Asn host : out_->small_isps) consider_host(host);
      for (Asn host : out_->stubs) consider_host(host);

      out_->content.add(std::move(service));
    }
  }

  // -------------------------------------------------------------- registries

  void make_registries() {
    // whois + DNS SOA. Sibling organizations usually share an e-mail domain;
    // some use distinct vanity domains glued together by a shared SOA (the
    // dish.com/dishaccess.tv pattern); some hide behind webmail providers.
    std::map<OrgId, std::vector<Asn>> orgs;
    topo().for_each_as([&](const AsNode& node) {
      orgs[node.org].push_back(node.asn);
    });

    for (const auto& [org, members] : orgs) {
      const std::string base = "org" + std::to_string(org);
      std::string primary_domain = base + ".net";
      bool vanity_split = false;
      if (members.size() > 1 && rng_.chance(0.4)) vanity_split = true;
      const bool popular = rng_.chance(cfg_.popular_email_prob);
      const bool rir_hosted = !popular && rng_.chance(cfg_.rir_email_prob);

      out_->soa.add(primary_domain, base + "-dns.net");
      const std::string vanity_domain = base + "-tv.example";
      if (vanity_split) out_->soa.add(vanity_domain, base + "-dns.net");

      for (std::size_t m = 0; m < members.size(); ++m) {
        const AsNode& node = topo().as_node(members[m]);
        WhoisRecord rec;
        rec.asn = node.asn;
        rec.org_name = base + " Networks";
        const Continent continent =
            world().continent_of_country(node.home_country);
        if (popular)
          rec.email_domain = rng_.chance(0.5) ? "mail-a.example"
                                              : "mail-b.example";
        else if (rir_hosted)
          rec.email_domain =
              "rir-" + to_lower(continent_code(continent)) + ".example";
        else if (vanity_split && m % 2 == 1)
          rec.email_domain = vanity_domain;
        else
          rec.email_domain = primary_domain;
        rec.country_code = world().country(node.home_country).code;
        rec.rir = "RIR-" + std::string(continent_code(continent));
        out_->whois.add(std::move(rec));
      }
    }

    // TeleGeography-style cable registry (incomplete on purpose), plus a
    // couple of consortium cables without a dedicated ASN.
    for (std::size_t i = 0; i < out_->cable_asns.size(); ++i) {
      CableEntry entry;
      const auto& cable = cable_sides_[i];
      entry.cable_name = "cable-" + std::to_string(i) + " (" +
                         std::string(continent_code(cable.side_a)) + "<->" +
                         std::string(continent_code(cable.side_b)) + ")";
      entry.operator_asn =
          rng_.chance(cfg_.cable_registry_coverage) ? cable.asn : 0;
      out_->cable_registry.add(std::move(entry));
    }
    out_->cable_registry.add({"consortium-cable-a (jointly owned)", 0});
    out_->cable_registry.add({"consortium-cable-b (jointly owned)", 0});

    // Neighbor-history: last epoch each adjacency was publicly visible.
    topo().for_each_link([&](const Link& l) {
      const int last_alive =
          std::min(l.died_epoch - 1, out_->measurement_epoch);
      if (last_alive >= l.born_epoch)
        out_->neighbor_history.record(l.a, l.b, last_alive);
    });
  }

  void pick_collectors() {
    std::set<Asn> peers;
    for (Asn t : out_->tier1s) peers.insert(t);
    for (Asn a : out_->large_isps)
      if (rng_.chance(cfg_.collector_large_prob)) peers.insert(a);
    for (Asn a : out_->education)
      if (rng_.chance(cfg_.collector_education_prob)) peers.insert(a);
    for (Asn a : out_->small_isps)
      if (rng_.chance(cfg_.collector_small_prob)) peers.insert(a);
    // The testbed muxes see the testbed's announcements; at least one
    // should feed the collectors so active experiments are observable.
    peers.insert(out_->testbed_muxes[0]);
    out_->collector_peers.assign(peers.begin(), peers.end());
  }

  std::string to_lower(std::string_view s) {
    std::string out{s};
    for (auto& c : out)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
  }

  struct CableSides {
    Asn asn;
    Continent side_a;
    Continent side_b;
  };

  const GeneratorConfig& cfg_;
  Rng rng_;
  std::unique_ptr<GeneratedInternet> out_;
  AddressPlan plan_;

  OrgId org_counter_ = 1;
  std::vector<std::vector<Asn>> large_by_continent_;
  std::vector<std::vector<Asn>> edu_by_continent_;
  std::vector<std::vector<Asn>> small_by_country_;
  std::vector<std::vector<Asn>> stubs_by_country_;
  std::vector<Asn> content_primary_;
  std::vector<std::pair<Asn, Asn>> merger_pairs_;
  std::set<Asn> overlap_stubs_;
  std::vector<CableSides> cable_sides_;
  LinkId stale_content_link_ = kInvalidLink;
};

}  // namespace

std::unique_ptr<GeneratedInternet> generate_internet(
    const GeneratorConfig& config) {
  return Builder{config}.build();
}

}  // namespace irp
