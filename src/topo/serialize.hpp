// Ground-truth topology serialization.
//
// A line-oriented text format that round-trips the complete routing-relevant
// state of a Topology: ASes (type, organization, country, policy flags,
// PoPs, originated prefixes with export policies) and links (relationship,
// city, IGP costs, local-pref deltas, partial transit, epoch bounds).
//
// Use cases: checkpointing generated Internets, hand-authoring small
// scenarios, and diffing two topologies. The format is versioned and parsing
// is strict (CheckError on malformed input).
#pragma once

#include <string>
#include <string_view>

#include "topo/topology.hpp"

namespace irp {

/// Serializes the topology (stable, diff-friendly ordering).
std::string serialize_topology(const Topology& topo);

/// Parses a topology produced by serialize_topology.
/// Throws CheckError on malformed input.
Topology deserialize_topology(std::string_view text);

}  // namespace irp
