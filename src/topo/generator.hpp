// Synthetic Internet generator.
//
// Produces a hierarchical, geographically embedded AS topology together with
// every registry the study pipeline consumes. The structure mirrors the real
// Internet's shape at small scale: a Tier-1 clique, continental transit ISPs,
// national access ISPs, a large stub edge with rich regional peering,
// multinational content providers with off-net caches, research & education
// backbones, undersea-cable operator ASes, and a PEERING-style testbed AS.
//
// The generator also injects — with tunable probabilities — every policy
// phenomenon the paper investigates: sibling organizations, hybrid per-city
// relationships, partial transit, selective prefix announcement, per-link
// local-pref traffic engineering, flat-preference (shortest-path) ASes,
// domestic-path preference, and link birth/death across snapshots (stale
// links).
#pragma once

#include <memory>
#include <vector>

#include "geo/geolocation.hpp"
#include "geo/world.hpp"
#include "net/address_plan.hpp"
#include "topo/registry.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace irp {

/// All dials of the synthetic Internet. Defaults produce ~800 ASes and are
/// tuned so the study pipeline reproduces the paper's qualitative shape.
struct GeneratorConfig {
  std::uint64_t seed = 42;
  WorldConfig world;

  /// Number of monthly topology snapshots (epochs 0..n-1); measurements run
  /// at the last epoch, matching the paper's five aggregated CAIDA months.
  int num_snapshots = 5;

  // -- population ----------------------------------------------------------
  int tier1_count = 12;
  int large_isps_per_continent = 8;
  int education_per_continent = 2;
  int small_isps_per_country = 2;
  int stubs_per_country = 12;
  /// Edge-population multiplier for the first North-American country (a
  /// US-like giant): most NA eyeballs, ISPs, and hence model paths stay
  /// inside one country, reproducing Table 3's low NA row.
  int na_primary_country_factor = 3;
  int content_orgs = 14;
  int cable_count = 8;
  int testbed_mux_count = 7;

  // -- connectivity --------------------------------------------------------
  double large_isp_same_continent_peer_prob = 0.25;
  double large_isp_cross_continent_peer_prob = 0.03;
  double small_isp_same_country_peer_prob = 0.40;
  double stub_multihome_prob = 0.35;
  double stub_ixp_peer_prob = 0.05;
  double content_large_peer_prob = 0.45;
  double content_small_peer_prob = 0.05;
  double education_mesh_prob = 0.55;
  int cable_attach_per_side_min = 2;
  int cable_attach_per_side_max = 3;

  // -- policy deviations (what the paper hunts for) -------------------------
  double sibling_org_prob = 0.35;        ///< Large-ISP org owns 2-3 ASNs.
  double content_sibling_prob = 0.35;    ///< Content org owns 2 ASNs.
  int hybrid_pair_count = 14;            ///< Pairs with per-city relationships.
  double partial_transit_prob = 0.06;    ///< Per c2p link.
  double te_override_prob = 0.075;       ///< Per link side: lp delta.
  double flat_local_pref_prob = 0.08;    ///< Per transit AS.
  double domestic_pref_prob = 0.5;       ///< Per AS.
  double content_selective_prob = 0.5;   ///< Content origin has premium prefix.
  double prepend_prob = 0.15;            ///< Per prefix: per-link prepending.
  int cable_lp_delta = 75;               ///< Customers up-pref cable transit.

  // -- evolution (stale links) ----------------------------------------------
  double link_death_prob = 0.07;         ///< Redundant link dies mid-study.
  double link_birth_prob = 0.05;         ///< Redundant link born mid-study.

  // -- content deployment ----------------------------------------------------
  int min_prefixes_per_content = 3;
  int max_prefixes_per_content = 6;
  int wide_deployment_orgs = 2;          ///< Akamai/Netflix-like org count.
  double wide_cache_host_prob = 0.16;    ///< Per eyeball AS.
  double light_cache_host_prob = 0.02;

  // -- registries ------------------------------------------------------------
  double geoloc_error_rate = 0.03;
  double popular_email_prob = 0.06;      ///< whois e-mail at a mail provider.
  double rir_email_prob = 0.02;          ///< whois e-mail at the RIR.
  double looking_glass_prob = 0.35;      ///< ISP hosts a looking glass.
  double cable_registry_coverage = 0.9;  ///< Cable list completeness.

  // -- collectors --------------------------------------------------------------
  double collector_large_prob = 0.5;
  double collector_education_prob = 0.7;
  double collector_small_prob = 0.05;
};

/// Everything the generator produces. Heap-allocated and pinned: internal
/// components hold pointers to each other (e.g. the geolocation database
/// points at the world).
struct GeneratedInternet {
  GeneratorConfig config;
  World world;
  Topology topology;
  WhoisDb whois;
  DnsSoaDb soa;
  CableRegistry cable_registry;
  ContentCatalog content;
  NeighborHistoryDb neighbor_history;
  std::unique_ptr<GeoDatabase> geo;

  // Ground-truth rosters (used by generation-time consumers and tests; the
  // analysis pipeline itself only sees registries, feeds and traceroutes).
  std::vector<Asn> tier1s;
  std::vector<Asn> large_isps;
  std::vector<Asn> small_isps;
  std::vector<Asn> stubs;
  std::vector<Asn> education;
  std::vector<Asn> content_asns;
  std::vector<Asn> cable_asns;
  std::vector<std::pair<Asn, Asn>> hybrid_pairs;

  // PEERING-style testbed.
  Asn testbed_asn = 0;
  std::vector<Asn> testbed_muxes;        ///< University provider ASes.
  std::vector<LinkId> testbed_mux_links; ///< Testbed-to-mux links, per site.
  std::vector<Ipv4Prefix> testbed_prefixes;

  /// ASes that export their tables to route collectors (RouteViews/RIS).
  std::vector<Asn> collector_peers;

  /// The epoch at which measurements run (= num_snapshots - 1).
  int measurement_epoch = 0;

  GeneratedInternet() = default;
  GeneratedInternet(const GeneratedInternet&) = delete;
  GeneratedInternet& operator=(const GeneratedInternet&) = delete;
};

/// Generates a synthetic Internet; deterministic in `config.seed`.
std::unique_ptr<GeneratedInternet> generate_internet(
    const GeneratorConfig& config);

}  // namespace irp
