// Core types of the AS-level topology: ASes, business relationships, links.
//
// The ground-truth topology is what the BGP simulator routes over. It is
// deliberately richer than the Gao-Rexford abstraction: per-link
// relationships (hybrid pairs differ by city), partial transit, sibling
// organizations, per-prefix export filters, per-link local-pref overrides,
// and domestic-path preference — exactly the phenomena the paper finds
// unmodeled in the wild.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"

namespace irp {

using Asn = std::uint32_t;
using LinkId = std::uint32_t;
using OrgId = std::uint32_t;

/// Sentinel for "no link".
inline constexpr LinkId kInvalidLink = ~LinkId{0};

/// Business role of a neighbor from the local AS's point of view.
enum class Relationship : std::uint8_t {
  kCustomer,  ///< The neighbor is my customer (I am its provider).
  kPeer,      ///< Settlement-free peering.
  kProvider,  ///< The neighbor is my provider (I am its customer).
  kSibling,   ///< Same organization; mutual transit.
};

/// The opposite perspective of a relationship (customer <-> provider).
Relationship reverse(Relationship r);

/// Short label, e.g. "c2p" rendered per side: "customer", "peer", ...
std::string_view relationship_name(Relationship r);

/// Gao-Rexford preference class of a relationship: lower is more preferred
/// (customer=0, peer=1, provider=2). Siblings rank with customers.
int preference_class(Relationship r);

/// AS category, following the Oliveira et al. scheme used for Table 1.
enum class AsType : std::uint8_t {
  kStub,      ///< Edge network, no customers.
  kSmallIsp,  ///< Regional ISP with a small customer cone.
  kLargeIsp,  ///< National/continental transit provider.
  kTier1,     ///< Clique member, no providers.
  kContent,   ///< Content provider network (CDN, video, web).
  kCable,     ///< Undersea-cable operator AS (point-to-point transit).
  kEducation, ///< Research & education network (GREN).
  kTestbed,   ///< The PEERING-style experiment AS.
};

std::string_view as_type_name(AsType t);

/// A point of presence: a city where the AS has routers, plus the
/// infrastructure prefix its router interfaces come from.
struct PointOfPresence {
  CityId city = 0;
  Ipv4Prefix router_prefix;  ///< Hop addresses emitted by traceroute.
};

/// A prefix originated by an AS, with its ground-truth export policy.
struct OriginatedPrefix {
  Ipv4Prefix prefix;
  /// Links over which the origin announces this prefix. Empty means "all
  /// links" (the common case); non-empty models selective prefix
  /// announcement — the paper's §4.3 prefix-specific policies.
  std::vector<LinkId> announce_only_on;
  /// Marks prefixes hosting premium services, routed via specific
  /// (typically more expensive) providers; used only for reporting.
  bool selective = false;
  /// Per-link AS-path prepending (inbound traffic engineering): the origin
  /// announces this prefix with its ASN repeated `count` extra times over
  /// the given links.
  std::vector<std::pair<LinkId, int>> prepend_on;
};

/// An autonomous system in the ground-truth topology.
struct AsNode {
  Asn asn = 0;
  AsType type = AsType::kStub;
  OrgId org = 0;                 ///< Owning organization (siblings share it).
  CountryId home_country = 0;    ///< whois registration country.
  std::vector<PointOfPresence> pops;
  std::vector<OriginatedPrefix> prefixes;
  std::vector<LinkId> links;     ///< All adjacent links.
  /// True if this AS up-prefs routes whose entire AS path stays inside its
  /// home country (the §6 "domestic paths" behaviour).
  bool prefers_domestic = false;
  /// True if this AS ranks all neighbors equally and effectively picks the
  /// shortest AS path regardless of relationship class (a common real-world
  /// deviation that produces NonBest/Short decisions).
  bool flat_local_pref = false;
  /// Logical epoch at which the AS's links became active; used by the
  /// snapshot evolution model.
  int born_epoch = 0;
  /// True if the AS operates a public looking-glass server (used by the
  /// §4.3 validation of prefix-specific policies).
  bool has_looking_glass = false;
};

/// An interconnection between two ASes at one city.
///
/// A pair of ASes may share several links (multiple interconnection cities);
/// hybrid relationships (§4.1) are pairs whose links carry *different*
/// relationships in different cities.
struct Link {
  LinkId id = 0;
  Asn a = 0;
  Asn b = 0;
  /// Role of `b` from `a`'s perspective; the reverse holds for `a` from `b`.
  Relationship rel_of_b_from_a = Relationship::kPeer;
  CityId city = 0;
  /// Intradomain (IGP) cost from each endpoint's backbone to this link;
  /// drives hot-potato tie-breaking in the BGP decision process.
  int igp_cost_a = 0;
  int igp_cost_b = 0;
  /// Local-pref adjustment each side applies to routes learned over this
  /// link, on top of the relationship-class base. Non-zero values model
  /// traffic engineering that deviates from Gao-Rexford.
  int lp_delta_a = 0;
  int lp_delta_b = 0;
  /// Partial transit (§4.1): when true and the relationship is transit,
  /// the provider serves only a hash-selected subset of prefixes.
  bool partial_transit = false;
  /// Epoch bounds for topology evolution: the link exists in snapshots
  /// [born_epoch, died_epoch). A link dead at the measurement epoch but
  /// alive in earlier snapshots becomes a *stale* link in the aggregated
  /// inferred topology (the paper's Netflix/AS3549 case).
  int born_epoch = 0;
  int died_epoch = 1 << 30;
};

}  // namespace irp
