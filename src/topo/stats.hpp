// Topology statistics: structural summaries of a ground-truth topology.
//
// Used to sanity-check that generated Internets have Internet-like shape
// (heavy-tailed degrees, a dominant Tier-1 core, a thin transit hierarchy)
// and by the diagnostics benches.
#pragma once

#include <map>
#include <vector>

#include "topo/topology.hpp"

namespace irp {

/// Aggregate structural statistics at one epoch.
struct TopologyStats {
  std::size_t ases = 0;
  std::size_t links = 0;          ///< Alive at the epoch.
  std::size_t c2p_links = 0;
  std::size_t p2p_links = 0;
  std::size_t sibling_links = 0;
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
  /// Degree distribution: degree -> number of ASes.
  std::map<std::size_t, std::size_t> degree_histogram;
  /// Customer-cone sizes of the ASes with the largest cones (descending).
  std::vector<std::size_t> top_cones;
  /// Share of ASes with no customers (the stub edge).
  double stub_share = 0.0;
  /// Average AS-path-relevant depth: hops from each stub to the nearest
  /// provider-free AS following provider links (transit hierarchy depth).
  double avg_hierarchy_depth = 0.0;
};

/// Computes statistics over links alive at `epoch`.
TopologyStats compute_topology_stats(const Topology& topo, int epoch,
                                     std::size_t top_cone_count = 10);

}  // namespace irp
