#include "topo/registry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {

void WhoisDb::add(WhoisRecord record) {
  IRP_CHECK(record.asn != 0, "whois record needs an ASN");
  records_[record.asn] = std::move(record);
}

const WhoisRecord& WhoisDb::record(Asn asn) const {
  auto it = records_.find(asn);
  IRP_CHECK(it != records_.end(), "no whois record for ASN");
  return it->second;
}

void DnsSoaDb::add(const std::string& domain, const std::string& soa_domain) {
  soa_[domain] = soa_domain;
}

std::string DnsSoaDb::soa_of(const std::string& domain) const {
  auto it = soa_.find(domain);
  return it == soa_.end() ? domain : it->second;
}

std::vector<Asn> CableRegistry::operator_asns() const {
  std::vector<Asn> out;
  for (const auto& e : entries_)
    if (e.operator_asn != 0) out.push_back(e.operator_asn);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool CableRegistry::is_cable_operator(Asn asn) const {
  if (asn == 0) return false;
  return std::any_of(entries_.begin(), entries_.end(),
                     [asn](const CableEntry& e) { return e.operator_asn == asn; });
}

void NeighborHistoryDb::record(Asn a, Asn b, int epoch) {
  auto& slot = last_seen_[key(a, b)];
  slot = std::max(slot, epoch);
}

std::optional<int> NeighborHistoryDb::last_seen(Asn a, Asn b) const {
  auto it = last_seen_.find(key(a, b));
  if (it == last_seen_.end()) return std::nullopt;
  return it->second;
}

bool NeighborHistoryDb::is_stale(Asn a, Asn b, int current_epoch) const {
  const auto seen = last_seen(a, b);
  return seen.has_value() && *seen < current_epoch;
}

std::size_t ContentCatalog::num_hostnames() const {
  std::size_t n = 0;
  for (const auto& s : services_) n += s.hostnames.size();
  return n;
}

const ContentService* ContentCatalog::service_for(
    const std::string& hostname) const {
  for (const auto& s : services_) {
    const bool found = std::any_of(
        s.hostnames.begin(), s.hostnames.end(),
        [&](const ContentHostname& h) { return h.name == hostname; });
    if (found) return &s;
  }
  return nullptr;
}

}  // namespace irp
