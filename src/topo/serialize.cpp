#include "topo/serialize.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

constexpr std::string_view kHeader = "irp-topology v1";

template <typename T>
T parse_number(std::string_view field, std::string_view line) {
  T value{};
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  IRP_CHECK(ec == std::errc{} && ptr == field.data() + field.size(),
            "bad number '" + std::string(field) + "' in: " + std::string(line));
  return value;
}

std::string_view type_code(AsType t) {
  switch (t) {
    case AsType::kStub:      return "stub";
    case AsType::kSmallIsp:  return "small";
    case AsType::kLargeIsp:  return "large";
    case AsType::kTier1:     return "tier1";
    case AsType::kContent:   return "content";
    case AsType::kCable:     return "cable";
    case AsType::kEducation: return "edu";
    case AsType::kTestbed:   return "testbed";
  }
  IRP_UNREACHABLE("unknown AS type");
}

AsType parse_type(std::string_view code, std::string_view line) {
  if (code == "stub") return AsType::kStub;
  if (code == "small") return AsType::kSmallIsp;
  if (code == "large") return AsType::kLargeIsp;
  if (code == "tier1") return AsType::kTier1;
  if (code == "content") return AsType::kContent;
  if (code == "cable") return AsType::kCable;
  if (code == "edu") return AsType::kEducation;
  if (code == "testbed") return AsType::kTestbed;
  IRP_UNREACHABLE("unknown AS type in: " + std::string(line));
}

std::string_view rel_code(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return "c";
    case Relationship::kPeer:     return "p";
    case Relationship::kProvider: return "v";
    case Relationship::kSibling:  return "s";
  }
  IRP_UNREACHABLE("unknown relationship");
}

Relationship parse_rel(std::string_view code, std::string_view line) {
  if (code == "c") return Relationship::kCustomer;
  if (code == "p") return Relationship::kPeer;
  if (code == "v") return Relationship::kProvider;
  if (code == "s") return Relationship::kSibling;
  IRP_UNREACHABLE("unknown relationship in: " + std::string(line));
}

}  // namespace

std::string serialize_topology(const Topology& topo) {
  std::ostringstream out;
  out << kHeader << "\n";
  topo.for_each_as([&](const AsNode& node) {
    out << "as " << node.asn << ' ' << type_code(node.type) << ' ' << node.org
        << ' ' << node.home_country << ' ' << (node.prefers_domestic ? 1 : 0)
        << ' ' << (node.flat_local_pref ? 1 : 0) << ' '
        << (node.has_looking_glass ? 1 : 0) << ' ' << node.born_epoch << "\n";
    for (const auto& pop : node.pops)
      out << "pop " << node.asn << ' ' << pop.city << ' '
          << pop.router_prefix.to_string() << "\n";
    for (const auto& op : node.prefixes) {
      out << "pfx " << node.asn << ' ' << op.prefix.to_string() << ' '
          << (op.selective ? 1 : 0) << " only=";
      for (std::size_t i = 0; i < op.announce_only_on.size(); ++i)
        out << (i ? "," : "") << op.announce_only_on[i];
      out << " prepend=";
      for (std::size_t i = 0; i < op.prepend_on.size(); ++i)
        out << (i ? "," : "") << op.prepend_on[i].first << ':'
            << op.prepend_on[i].second;
      out << "\n";
    }
  });
  topo.for_each_link([&](const Link& l) {
    out << "link " << l.a << ' ' << l.b << ' ' << rel_code(l.rel_of_b_from_a)
        << ' ' << l.city << ' ' << l.igp_cost_a << ' ' << l.igp_cost_b << ' '
        << l.lp_delta_a << ' ' << l.lp_delta_b << ' '
        << (l.partial_transit ? 1 : 0) << ' ' << l.born_epoch << ' '
        << l.died_epoch << "\n";
  });
  return out.str();
}

Topology deserialize_topology(std::string_view text) {
  Topology topo;
  const auto lines = split(text, '\n');
  IRP_CHECK(!lines.empty() && trim(lines[0]) == kHeader,
            "missing or wrong topology header");

  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string_view line = trim(lines[li]);
    if (line.empty() || line.front() == '#') continue;
    const auto f = split(line, ' ');
    IRP_CHECK(!f.empty(), "empty record");

    if (f[0] == "as") {
      IRP_CHECK(f.size() == 9, "bad 'as' record: " + std::string(line));
      AsNode node;
      const Asn asn = parse_number<Asn>(f[1], line);
      node.type = parse_type(f[2], line);
      node.org = parse_number<OrgId>(f[3], line);
      node.home_country = parse_number<CountryId>(f[4], line);
      node.prefers_domestic = parse_number<int>(f[5], line) != 0;
      node.flat_local_pref = parse_number<int>(f[6], line) != 0;
      node.has_looking_glass = parse_number<int>(f[7], line) != 0;
      node.born_epoch = parse_number<int>(f[8], line);
      const Asn assigned = topo.add_as(std::move(node));
      IRP_CHECK(assigned == asn,
                "AS records must appear in dense ASN order: " +
                    std::string(line));
    } else if (f[0] == "pop") {
      IRP_CHECK(f.size() == 4, "bad 'pop' record: " + std::string(line));
      const Asn asn = parse_number<Asn>(f[1], line);
      PointOfPresence pop;
      pop.city = parse_number<CityId>(f[2], line);
      const auto prefix = Ipv4Prefix::parse(f[3]);
      IRP_CHECK(prefix.has_value(), "bad prefix in: " + std::string(line));
      pop.router_prefix = *prefix;
      topo.as_node_mutable(asn).pops.push_back(pop);
    } else if (f[0] == "pfx") {
      IRP_CHECK(f.size() == 6, "bad 'pfx' record: " + std::string(line));
      const Asn asn = parse_number<Asn>(f[1], line);
      OriginatedPrefix op;
      const auto prefix = Ipv4Prefix::parse(f[2]);
      IRP_CHECK(prefix.has_value(), "bad prefix in: " + std::string(line));
      op.prefix = *prefix;
      op.selective = parse_number<int>(f[3], line) != 0;
      IRP_CHECK(starts_with(f[4], "only="), "bad only= in: " + std::string(line));
      const std::string_view only = std::string_view(f[4]).substr(5);
      if (!only.empty())
        for (const auto& item : split(only, ','))
          op.announce_only_on.push_back(parse_number<LinkId>(item, line));
      IRP_CHECK(starts_with(f[5], "prepend="),
                "bad prepend= in: " + std::string(line));
      const std::string_view pre = std::string_view(f[5]).substr(8);
      if (!pre.empty())
        for (const auto& item : split(pre, ',')) {
          const auto kv = split(item, ':');
          IRP_CHECK(kv.size() == 2, "bad prepend entry: " + std::string(line));
          op.prepend_on.emplace_back(parse_number<LinkId>(kv[0], line),
                                     parse_number<int>(kv[1], line));
        }
      topo.as_node_mutable(asn).prefixes.push_back(std::move(op));
    } else if (f[0] == "link") {
      IRP_CHECK(f.size() == 12, "bad 'link' record: " + std::string(line));
      Link l;
      l.a = parse_number<Asn>(f[1], line);
      l.b = parse_number<Asn>(f[2], line);
      l.rel_of_b_from_a = parse_rel(f[3], line);
      l.city = parse_number<CityId>(f[4], line);
      l.igp_cost_a = parse_number<int>(f[5], line);
      l.igp_cost_b = parse_number<int>(f[6], line);
      l.lp_delta_a = parse_number<int>(f[7], line);
      l.lp_delta_b = parse_number<int>(f[8], line);
      l.partial_transit = parse_number<int>(f[9], line) != 0;
      l.born_epoch = parse_number<int>(f[10], line);
      l.died_epoch = parse_number<int>(f[11], line);
      topo.add_link(l);
    } else {
      IRP_UNREACHABLE("unknown record type: " + std::string(line));
    }
  }
  return topo;
}

}  // namespace irp
