#include "topo/topology.hpp"

#include <deque>

namespace irp {

Asn Topology::add_as(AsNode node) {
  const Asn asn = static_cast<Asn>(nodes_.size() + 1);
  node.asn = asn;
  IRP_CHECK(node.links.empty(), "links are added via add_link");
  orgs_[node.org].push_back(asn);
  nodes_.push_back(std::move(node));
  return asn;
}

LinkId Topology::add_link(Link link) {
  IRP_CHECK(link.a >= 1 && link.a <= nodes_.size(), "link endpoint a invalid");
  IRP_CHECK(link.b >= 1 && link.b <= nodes_.size(), "link endpoint b invalid");
  IRP_CHECK(link.a != link.b, "self-links are not allowed");
  const LinkId id = static_cast<LinkId>(links_.size());
  link.id = id;
  nodes_[link.a - 1].links.push_back(id);
  nodes_[link.b - 1].links.push_back(id);
  links_.push_back(link);
  return id;
}

Asn Topology::other_end(const Link& link, Asn self) const {
  IRP_CHECK(link.a == self || link.b == self, "AS not on this link");
  return link.a == self ? link.b : link.a;
}

Relationship Topology::relationship_from(const Link& link, Asn self) const {
  IRP_CHECK(link.a == self || link.b == self, "AS not on this link");
  return link.a == self ? link.rel_of_b_from_a : reverse(link.rel_of_b_from_a);
}

int Topology::igp_cost_from(const Link& link, Asn self) const {
  IRP_CHECK(link.a == self || link.b == self, "AS not on this link");
  return link.a == self ? link.igp_cost_a : link.igp_cost_b;
}

int Topology::lp_delta_from(const Link& link, Asn self) const {
  IRP_CHECK(link.a == self || link.b == self, "AS not on this link");
  return link.a == self ? link.lp_delta_a : link.lp_delta_b;
}

std::vector<LinkId> Topology::links_between(Asn a, Asn b) const {
  std::vector<LinkId> out;
  for (LinkId id : as_node(a).links) {
    const Link& l = link(id);
    if (other_end(l, a) == b) out.push_back(id);
  }
  return out;
}

const std::vector<Asn>& Topology::ases_of_org(OrgId org) const {
  static const std::vector<Asn> kEmpty;
  auto it = orgs_.find(org);
  return it == orgs_.end() ? kEmpty : it->second;
}

std::size_t Topology::customer_cone_size(Asn asn, int epoch) const {
  std::vector<bool> seen(nodes_.size() + 1, false);
  std::deque<Asn> queue{asn};
  seen[asn] = true;
  std::size_t count = 0;
  while (!queue.empty()) {
    const Asn cur = queue.front();
    queue.pop_front();
    ++count;
    for (LinkId id : as_node(cur).links) {
      const Link& l = link(id);
      if (!link_alive(l, epoch)) continue;
      if (relationship_from(l, cur) != Relationship::kCustomer) continue;
      const Asn next = other_end(l, cur);
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  return count;
}

}  // namespace irp
