// Public registries observable by the analyst: whois, DNS SOA, cable list,
// and a neighbor-history service.
//
// The analyses never read the ground-truth topology directly — they consume
// these registries (plus BGP feeds and traceroutes), exactly like the paper:
//   * whois e-mail domains + DNS SOA records drive sibling inference (§4.2);
//   * whois registration countries drive the domestic-path analysis (§6),
//     with the paper's stated limitation that a multinational AS still shows
//     a single registration country;
//   * the TeleGeography-style cable list identifies undersea-cable ASes (§6);
//   * the RIPE-stat-style neighbor history exposes when a link was last seen
//     (used to identify stale links, §5).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "topo/types.hpp"

namespace irp {

/// One whois record per AS.
struct WhoisRecord {
  Asn asn = 0;
  std::string org_name;       ///< e.g. "org42 Networks".
  std::string email_domain;   ///< e.g. "org42.net" or "hotmail.example".
  std::string country_code;   ///< Single registration country code.
  std::string rir;            ///< Registry, e.g. "RIR-EU".
};

/// whois database keyed by ASN.
class WhoisDb {
 public:
  void add(WhoisRecord record);
  const WhoisRecord& record(Asn asn) const;
  bool has(Asn asn) const { return records_.count(asn) > 0; }
  std::size_t size() const { return records_.size(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [asn, rec] : records_) fn(rec);
  }

 private:
  std::map<Asn, WhoisRecord> records_;
};

/// DNS SOA database: maps a domain to its authoritative (SOA) domain, so
/// that different vanity domains of one organization can be grouped
/// (the paper's dish.com / dishaccess.tv example).
class DnsSoaDb {
 public:
  void add(const std::string& domain, const std::string& soa_domain);

  /// SOA domain for `domain`; identity if unknown.
  std::string soa_of(const std::string& domain) const;

 private:
  std::map<std::string, std::string> soa_;
};

/// TeleGeography-style list of undersea cables and their operator ASNs.
struct CableEntry {
  std::string cable_name;   ///< e.g. "cable-3 (EU<->NA)".
  Asn operator_asn = 0;     ///< 0 when the cable is consortium-owned and has
                            ///< no dedicated ASN (not detectable; §6 notes
                            ///< some cables are jointly owned by large ISPs).
};

/// Cable registry; `operator_asns()` is what the analysis can identify.
class CableRegistry {
 public:
  void add(CableEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<CableEntry>& entries() const { return entries_; }

  /// All dedicated cable-operator ASNs listed in the registry.
  std::vector<Asn> operator_asns() const;

  bool is_cable_operator(Asn asn) const;

 private:
  std::vector<CableEntry> entries_;
};

/// RIPE-stat-style neighbor history: for each unordered AS pair, the last
/// epoch at which the adjacency was observed in public BGP data.
class NeighborHistoryDb {
 public:
  void record(Asn a, Asn b, int epoch);

  /// Last epoch the pair was adjacent; nullopt if never seen.
  std::optional<int> last_seen(Asn a, Asn b) const;

  /// True if the pair was once adjacent but not seen at `current_epoch`.
  bool is_stale(Asn a, Asn b, int current_epoch) const;

 private:
  static std::pair<Asn, Asn> key(Asn a, Asn b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }
  std::map<std::pair<Asn, Asn>, int> last_seen_;
};

/// A hostname of a content service, pinned to one of the origin's prefixes.
struct ContentHostname {
  std::string name;           ///< e.g. "video1.org7.example".
  Ipv4Prefix origin_prefix;   ///< Prefix answering when no cache is closer.
  /// Premium/enterprise services are served from the origin network only,
  /// never from off-net caches (these are the prefixes subject to
  /// selective announcement, §4.3).
  bool premium = false;
};

/// An off-net cache: content served from inside another (eyeball) AS.
struct ContentCache {
  Asn host_asn = 0;
  Ipv4Prefix prefix;
};

/// A content service: one organization, its origin AS, and its hostnames
/// (the study's "34 DNS names representing 14 large content providers").
struct ContentService {
  std::string org_name;             ///< e.g. "cdn-akamai-like".
  Asn origin_asn = 0;               ///< The provider's own network.
  std::vector<ContentHostname> hostnames;
  /// Off-net caches. Content served from inside eyeball ISPs makes the set
  /// of destination ASes much larger than the set of providers (§3.1).
  std::vector<ContentCache> caches;
  /// True for CDN-style services with wide off-net deployment.
  bool wide_deployment = false;
};

/// Catalog of the content providers targeted by the passive campaign.
class ContentCatalog {
 public:
  void add(ContentService service) { services_.push_back(std::move(service)); }
  const std::vector<ContentService>& services() const { return services_; }

  /// Total hostname count across services.
  std::size_t num_hostnames() const;

  /// The service owning `hostname`; nullptr if unknown.
  const ContentService* service_for(const std::string& hostname) const;

 private:
  std::vector<ContentService> services_;
};

}  // namespace irp
