// CAIDA AS-relationship file format (serial-1) I/O.
//
// Lines of the form
//   <provider-as>|<customer-as>|-1     (provider-to-customer)
//   <peer-as>|<peer-as>|0              (peer-to-peer)
// with '#' comments, as published by CAIDA's AS-Rank project. This lets the
// analysis side of the library run against *real* relationship dumps
// instead of the synthetic inference, and lets our inferred topologies be
// exported for external tools.
#pragma once

#include <string>
#include <string_view>

#include "inference/relationships.hpp"

namespace irp {

/// Serializes an inferred topology as CAIDA serial-1 text.
std::string to_caida_format(const InferredTopology& topo);

/// Parses CAIDA serial-1 text. Throws CheckError on malformed lines.
InferredTopology from_caida_format(std::string_view text);

}  // namespace irp
