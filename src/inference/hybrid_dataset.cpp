#include "inference/hybrid_dataset.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace irp {

std::optional<Relationship> HybridDataset::relationship_at(
    Asn a, Asn b, CityId city) const {
  for (const auto& e : entries_) {
    if (e.city != city) continue;
    if (e.a == a && e.b == b) return e.rel_of_b_from_a;
    if (e.a == b && e.b == a) return reverse(e.rel_of_b_from_a);
  }
  return std::nullopt;
}

bool HybridDataset::covers_pair(Asn a, Asn b) const {
  return std::any_of(entries_.begin(), entries_.end(), [&](const auto& e) {
    return (e.a == a && e.b == b) || (e.a == b && e.b == a);
  });
}

bool HybridDataset::is_partial_transit(Asn provider, Asn customer) const {
  return std::find(partial_transit_.begin(), partial_transit_.end(),
                   std::pair{provider, customer}) != partial_transit_.end();
}

HybridDataset build_hybrid_dataset(const Topology& topo, double coverage,
                                   Rng& rng) {
  HybridDataset out;

  // Hybrid pairs: AS pairs connected by links with differing relationships.
  std::map<std::pair<Asn, Asn>, std::vector<const Link*>> pairs;
  topo.for_each_link([&](const Link& l) {
    const auto key = l.a < l.b ? std::pair{l.a, l.b} : std::pair{l.b, l.a};
    pairs[key].push_back(&l);
  });
  for (const auto& [pair, links] : pairs) {
    if (links.size() < 2) continue;
    std::set<Relationship> rels;
    for (const Link* l : links)
      rels.insert(topo.relationship_from(*l, pair.first));
    if (rels.size() < 2) continue;  // Parallel links, same relationship.
    if (!rng.chance(coverage)) continue;
    for (const Link* l : links) {
      HybridEntry e;
      e.a = pair.first;
      e.b = pair.second;
      e.city = l->city;
      e.rel_of_b_from_a = l->a == pair.first ? l->rel_of_b_from_a
                                             : reverse(l->rel_of_b_from_a);
      out.add(e);
    }
  }

  // Partial-transit links.
  topo.for_each_link([&](const Link& l) {
    if (!l.partial_transit) return;
    if (!rng.chance(coverage)) return;
    const Relationship rel_b = l.rel_of_b_from_a;
    if (rel_b == Relationship::kCustomer)
      out.add_partial_transit(l.a, l.b);
    else if (rel_b == Relationship::kProvider)
      out.add_partial_transit(l.b, l.a);
  });

  return out;
}

}  // namespace irp
