#include "inference/renumber.hpp"

#include "util/check.hpp"

namespace irp {

AsnRenumberer AsnRenumberer::from(const InferredTopology& topo) {
  AsnRenumberer out;
  // std::map iteration gives ascending original ASNs, so dense ids are
  // stable and order-preserving.
  std::map<Asn, bool> seen;
  for (const auto& [pair, _] : topo.links()) {
    seen[pair.first] = true;
    seen[pair.second] = true;
  }
  for (const auto& [asn, _] : seen) {
    out.to_original_.push_back(asn);
    out.to_dense_[asn] = static_cast<Asn>(out.to_original_.size());
  }
  return out;
}

Asn AsnRenumberer::to_dense(Asn original) const {
  auto it = to_dense_.find(original);
  IRP_CHECK(it != to_dense_.end(),
            "ASN " + std::to_string(original) + " not in the renumbering");
  return it->second;
}

Asn AsnRenumberer::to_original(Asn dense) const {
  IRP_CHECK(dense >= 1 && dense <= to_original_.size(),
            "dense id out of range");
  return to_original_[dense - 1];
}

InferredTopology AsnRenumberer::renumber(const InferredTopology& topo) const {
  InferredTopology out;
  for (const auto& [pair, rel] : topo.links()) {
    const Asn a = to_dense(pair.first);
    const Asn b = to_dense(pair.second);
    // Orientation is tied to the (min, max) key; re-express it explicitly.
    const auto rel_from_a = topo.relationship(pair.first, pair.second);
    if (*rel_from_a == Relationship::kPeer) {
      out.set(a, b, InferredRel::kPeer);
    } else if (*rel_from_a == Relationship::kCustomer) {
      out.set(a, b, InferredRel::kAProviderOfB);  // a provides b.
    } else {
      out.set(b, a, InferredRel::kAProviderOfB);  // b provides a.
    }
  }
  return out;
}

}  // namespace irp
