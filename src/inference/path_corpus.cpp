#include "inference/path_corpus.hpp"

namespace irp {
namespace {

std::pair<Asn, Asn> unordered(Asn a, Asn b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

void PathCorpus::add(int epoch, const std::vector<Asn>& path) {
  if (path.size() < 2) return;
  // Collapse prepending (consecutive duplicates) so adjacency extraction is
  // clean.
  std::vector<Asn> clean;
  for (Asn asn : path)
    if (clean.empty() || clean.back() != asn) clean.push_back(asn);
  if (clean.size() < 2) return;
  by_epoch_[epoch].insert(std::move(clean));
}

void PathCorpus::add_feed(int epoch, const FeedEntry& entry) {
  if (!entry.path.poison_set.empty()) return;
  add(epoch, entry.path.hops);
}

const std::set<std::vector<Asn>>& PathCorpus::paths(int epoch) const {
  static const std::set<std::vector<Asn>> kEmpty;
  auto it = by_epoch_.find(epoch);
  return it == by_epoch_.end() ? kEmpty : it->second;
}

std::vector<int> PathCorpus::epochs() const {
  std::vector<int> out;
  for (const auto& [e, _] : by_epoch_) out.push_back(e);
  return out;
}

std::set<std::pair<Asn, Asn>> PathCorpus::adjacencies(int epoch) const {
  std::set<std::pair<Asn, Asn>> out;
  for (const auto& path : paths(epoch))
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      out.insert(unordered(path[i], path[i + 1]));
  return out;
}

std::set<std::pair<Asn, Asn>> PathCorpus::all_adjacencies() const {
  std::set<std::pair<Asn, Asn>> out;
  for (const auto& [epoch, _] : by_epoch_) {
    auto adj = adjacencies(epoch);
    out.insert(adj.begin(), adj.end());
  }
  return out;
}

std::size_t PathCorpus::total_paths() const {
  std::size_t n = 0;
  for (const auto& [_, paths] : by_epoch_) n += paths.size();
  return n;
}

}  // namespace irp
