#include "inference/serialize.hpp"

#include <charconv>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

Asn parse_asn(std::string_view field, std::string_view line) {
  Asn value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  IRP_CHECK(ec == std::errc{} && ptr == field.data() + field.size() &&
                value != 0,
            "bad ASN in relationship line: " + std::string(line));
  return value;
}

}  // namespace

std::string to_caida_format(const InferredTopology& topo) {
  std::string out =
      "# AS relationships (CAIDA serial-1 format)\n"
      "# <provider-as>|<customer-as>|-1\n"
      "# <peer-as>|<peer-as>|0\n";
  for (const auto& [pair, rel] : topo.links()) {
    const auto [a, b] = pair;
    switch (rel) {
      case InferredRel::kPeer:
        out += std::to_string(a) + "|" + std::to_string(b) + "|0\n";
        break;
      case InferredRel::kAProviderOfB:
        out += std::to_string(a) + "|" + std::to_string(b) + "|-1\n";
        break;
      case InferredRel::kBProviderOfA:
        out += std::to_string(b) + "|" + std::to_string(a) + "|-1\n";
        break;
    }
  }
  return out;
}

InferredTopology from_caida_format(std::string_view text) {
  InferredTopology topo;
  for (std::string_view raw : split(text, '\n')) {
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split(line, '|');
    IRP_CHECK(fields.size() >= 3,
              "expected provider|customer|rel, got: " + std::string(line));
    const Asn first = parse_asn(fields[0], line);
    const Asn second = parse_asn(fields[1], line);
    IRP_CHECK(first != second, "self relationship: " + std::string(line));
    const std::string_view rel = trim(fields[2]);
    if (rel == "0") {
      topo.set(first, second, InferredRel::kPeer);
    } else if (rel == "-1") {
      // First field is the provider; set() normalizes the orientation.
      topo.set(first, second, InferredRel::kAProviderOfB);
    } else {
      IRP_UNREACHABLE("unknown relationship code in: " + std::string(line));
    }
  }
  return topo;
}

}  // namespace irp
