#include "inference/bgp_observations.hpp"

#include <algorithm>

namespace irp {

void BgpObservations::ingest(std::span<const FeedEntry> feed) {
  for (const FeedEntry& e : feed) {
    if (!e.path.poison_set.empty()) continue;
    const auto& hops = e.path.hops;
    if (hops.size() < 2) continue;
    add(hops.back(), hops[hops.size() - 2], e.prefix);
  }
}

void BgpObservations::add(Asn origin, Asn neighbor, const Ipv4Prefix& prefix) {
  const std::uint64_t key = pack(origin, neighbor);
  per_prefix_[prefix].insert(key);
  any_prefix_.insert(key);
}

bool BgpObservations::announced(Asn origin, Asn neighbor,
                                const Ipv4Prefix& prefix) const {
  auto it = per_prefix_.find(prefix);
  return it != per_prefix_.end() && it->second.count(pack(origin, neighbor)) > 0;
}

bool BgpObservations::announced_any(Asn origin, Asn neighbor) const {
  return any_prefix_.count(pack(origin, neighbor)) > 0;
}

std::set<Asn> BgpObservations::neighbors_for(Asn origin,
                                             const Ipv4Prefix& prefix) const {
  std::set<Asn> out;
  auto it = per_prefix_.find(prefix);
  if (it == per_prefix_.end()) return out;
  for (std::uint64_t key : it->second)
    if (static_cast<Asn>(key >> 32) == origin)
      out.insert(static_cast<Asn>(key & 0xFFFFFFFFu));
  return out;
}

std::vector<std::pair<Ipv4Prefix, std::vector<std::pair<Asn, Asn>>>>
BgpObservations::export_sorted() const {
  std::vector<std::pair<Ipv4Prefix, std::vector<std::pair<Asn, Asn>>>> out;
  out.reserve(per_prefix_.size());
  for (const auto& [prefix, keys] : per_prefix_) {
    std::vector<std::pair<Asn, Asn>> pairs;
    pairs.reserve(keys.size());
    for (std::uint64_t key : keys)
      pairs.emplace_back(static_cast<Asn>(key >> 32),
                         static_cast<Asn>(key & 0xFFFFFFFFu));
    std::sort(pairs.begin(), pairs.end());
    out.emplace_back(prefix, std::move(pairs));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace irp
