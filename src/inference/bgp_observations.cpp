#include "inference/bgp_observations.hpp"

namespace irp {

void BgpObservations::ingest(std::span<const FeedEntry> feed) {
  for (const FeedEntry& e : feed) {
    if (!e.path.poison_set.empty()) continue;
    const auto& hops = e.path.hops;
    if (hops.size() < 2) continue;
    const Asn origin = hops.back();
    const Asn neighbor = hops[hops.size() - 2];
    per_prefix_[e.prefix].insert({origin, neighbor});
    any_prefix_.insert({origin, neighbor});
  }
}

bool BgpObservations::announced(Asn origin, Asn neighbor,
                                const Ipv4Prefix& prefix) const {
  auto it = per_prefix_.find(prefix);
  return it != per_prefix_.end() && it->second.count({origin, neighbor}) > 0;
}

bool BgpObservations::announced_any(Asn origin, Asn neighbor) const {
  return any_prefix_.count({origin, neighbor}) > 0;
}

std::set<Asn> BgpObservations::neighbors_for(Asn origin,
                                             const Ipv4Prefix& prefix) const {
  std::set<Asn> out;
  auto it = per_prefix_.find(prefix);
  if (it == per_prefix_.end()) return out;
  for (const auto& [o, n] : it->second)
    if (o == origin) out.insert(n);
  return out;
}

}  // namespace irp
