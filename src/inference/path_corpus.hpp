// A corpus of AS paths observed in public BGP data, per snapshot epoch.
//
// This is the raw material of relationship inference: whatever the route
// collectors saw. Coverage is partial by construction — collectors peer
// mostly with core networks, so edge links (and links only used by
// less-preferred routes) are invisible, one of the central limitations the
// paper investigates.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bgp/route.hpp"
#include "topo/types.hpp"

namespace irp {

/// AS paths per epoch, deduplicated.
class PathCorpus {
 public:
  /// Adds one observed AS path (front = collector peer, back = origin).
  /// Paths with fewer than two hops carry no adjacency and are dropped.
  void add(int epoch, const std::vector<Asn>& path);

  /// Convenience: adds the AS path of a feed entry (poisoned paths are
  /// skipped — inference must not learn adjacencies from AS-sets).
  void add_feed(int epoch, const FeedEntry& entry);

  /// All distinct paths recorded for an epoch.
  const std::set<std::vector<Asn>>& paths(int epoch) const;

  /// All epochs with data, ascending.
  std::vector<int> epochs() const;

  /// Distinct adjacencies (unordered pairs) seen at an epoch.
  std::set<std::pair<Asn, Asn>> adjacencies(int epoch) const;

  /// Distinct adjacencies across all epochs.
  std::set<std::pair<Asn, Asn>> all_adjacencies() const;

  std::size_t total_paths() const;

 private:
  std::map<int, std::set<std::vector<Asn>>> by_epoch_;
};

}  // namespace irp
