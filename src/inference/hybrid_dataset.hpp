// Giotsas-style complex-relationship dataset (§4.1).
//
// In the paper this is an external input: pairs of ASes whose relationship
// is hybrid (differs by city) or partial transit, published by Giotsas et
// al. [IMC'14]. We synthesize that dataset from ground truth with partial
// coverage, because no inference pipeline for it is part of the paper —
// what matters is how *using* the dataset changes decision classification.
#pragma once

#include <optional>
#include <vector>

#include "geo/world.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace irp {

/// One city-scoped relationship entry of a hybrid pair.
struct HybridEntry {
  Asn a = 0;
  Asn b = 0;
  CityId city = 0;
  Relationship rel_of_b_from_a = Relationship::kPeer;
};

/// The complex-relationships dataset: hybrid entries + partial-transit pairs.
class HybridDataset {
 public:
  void add(HybridEntry entry) { entries_.push_back(entry); }
  void add_partial_transit(Asn provider, Asn customer) {
    partial_transit_.emplace_back(provider, customer);
  }

  /// City-specific relationship of `b` from `a`'s perspective, if the
  /// dataset has an entry for this pair at this city.
  std::optional<Relationship> relationship_at(Asn a, Asn b, CityId city) const;

  /// True if the dataset knows any entry for the pair.
  bool covers_pair(Asn a, Asn b) const;

  /// True if the dataset records `provider` as a partial-transit provider
  /// of `customer`.
  bool is_partial_transit(Asn provider, Asn customer) const;

  const std::vector<HybridEntry>& entries() const { return entries_; }
  const std::vector<std::pair<Asn, Asn>>& partial_transit() const {
    return partial_transit_;
  }
  std::size_t num_partial_transit() const { return partial_transit_.size(); }

 private:
  std::vector<HybridEntry> entries_;
  std::vector<std::pair<Asn, Asn>> partial_transit_;
};

/// Builds the dataset from ground truth with the given coverage probability
/// per hybrid pair / partial-transit link.
HybridDataset build_hybrid_dataset(const Topology& topo, double coverage,
                                   Rng& rng);

}  // namespace irp
