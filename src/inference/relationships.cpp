#include "inference/relationships.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {
namespace {

std::pair<Asn, Asn> unordered(Asn a, Asn b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

void InferredTopology::set(Asn a, Asn b, InferredRel rel) {
  IRP_CHECK(a != b, "self link");
  // Normalize the orientation to the (min, max) key.
  if (a > b) {
    if (rel == InferredRel::kAProviderOfB)
      rel = InferredRel::kBProviderOfA;
    else if (rel == InferredRel::kBProviderOfA)
      rel = InferredRel::kAProviderOfB;
  }
  rel_[key(a, b)] = rel;
  adj_dirty_ = true;
}

bool InferredTopology::has_link(Asn a, Asn b) const {
  return rel_.count(key(a, b)) > 0;
}

std::optional<Relationship> InferredTopology::relationship(Asn a,
                                                           Asn b) const {
  auto it = rel_.find(key(a, b));
  if (it == rel_.end()) return std::nullopt;
  switch (it->second) {
    case InferredRel::kPeer:
      return Relationship::kPeer;
    case InferredRel::kAProviderOfB:
      // The smaller ASN is the provider.
      return a < b ? Relationship::kCustomer : Relationship::kProvider;
    case InferredRel::kBProviderOfA:
      return a < b ? Relationship::kProvider : Relationship::kCustomer;
  }
  IRP_UNREACHABLE("unknown inferred relationship");
}

void InferredTopology::rebuild_adj() const {
  adj_.clear();
  for (const auto& [pair, _] : rel_) {
    adj_[pair.first].push_back(pair.second);
    adj_[pair.second].push_back(pair.first);
  }
  adj_dirty_ = false;
}

const std::vector<Asn>& InferredTopology::neighbors(Asn asn) const {
  if (adj_dirty_) rebuild_adj();
  static const std::vector<Asn> kEmpty;
  auto it = adj_.find(asn);
  return it == adj_.end() ? kEmpty : it->second;
}

std::map<Asn, std::size_t> transit_degrees(
    const std::set<std::vector<Asn>>& paths) {
  std::map<Asn, std::set<Asn>> transit_neighbors;
  for (const auto& path : paths) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      transit_neighbors[path[i]].insert(path[i - 1]);
      transit_neighbors[path[i]].insert(path[i + 1]);
    }
  }
  std::map<Asn, std::size_t> out;
  for (const auto& [asn, nbrs] : transit_neighbors) out[asn] = nbrs.size();
  return out;
}

InferredTopology infer_snapshot(const std::set<std::vector<Asn>>& paths,
                                const InferenceConfig& config,
                                std::set<Asn>* clique_out) {
  const auto degrees = transit_degrees(paths);
  auto degree_of = [&](Asn asn) -> std::size_t {
    auto it = degrees.find(asn);
    return it == degrees.end() ? 0 : it->second;
  };

  // --- Clique detection (Luckie-style): consider the top ASes by transit
  // degree and greedily grow a set that is fully meshed in the observed
  // adjacencies — the Tier-1 core peers with everyone in the core, while
  // regional heavyweights do not.
  std::set<std::pair<Asn, Asn>> adjacency;
  for (const auto& path : paths)
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      adjacency.insert(unordered(path[i], path[i + 1]));

  std::vector<std::pair<std::size_t, Asn>> ranked;
  for (const auto& [asn, deg] : degrees) ranked.push_back({deg, asn});
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  if (ranked.size() > 3 * std::size_t(config.max_clique_size))
    ranked.resize(3 * std::size_t(config.max_clique_size));

  // Maximum clique among the candidates (Bron-Kerbosch with pivoting): the
  // Tier-1 core is fully meshed, while regional heavyweights buy transit
  // from only a few core members and thus cannot join a large clique.
  std::vector<Asn> candidates;
  for (const auto& [deg, asn] : ranked) candidates.push_back(asn);
  const std::size_t n = candidates.size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (adjacency.count(unordered(candidates[i], candidates[j])))
        adj[i][j] = adj[j][i] = true;

  std::vector<std::size_t> best_clique;
  std::vector<std::size_t> current;
  // Iterative budget guard: the candidate set is tiny (<=72), but keep a
  // hard cap on explored states for safety.
  std::size_t budget = 200000;
  auto bron_kerbosch = [&](auto&& self, std::vector<std::size_t> p,
                           std::vector<std::size_t> x) -> void {
    if (budget == 0) return;
    --budget;
    if (p.empty() && x.empty()) {
      if (current.size() > best_clique.size()) best_clique = current;
      return;
    }
    if (current.size() + p.size() <= best_clique.size()) return;  // Bound.
    // Pivot: vertex of p ∪ x with most neighbors in p.
    std::size_t pivot = n;
    std::size_t pivot_deg = 0;
    for (const auto& pool : {p, x})
      for (std::size_t u : pool) {
        std::size_t d = 0;
        for (std::size_t v : p)
          if (adj[u][v]) ++d;
        if (pivot == n || d > pivot_deg) {
          pivot = u;
          pivot_deg = d;
        }
      }
    std::vector<std::size_t> ext;
    for (std::size_t v : p)
      if (pivot == n || !adj[pivot][v]) ext.push_back(v);
    for (std::size_t v : ext) {
      std::vector<std::size_t> p2, x2;
      for (std::size_t u : p)
        if (adj[v][u]) p2.push_back(u);
      for (std::size_t u : x)
        if (adj[v][u]) x2.push_back(u);
      current.push_back(v);
      self(self, std::move(p2), std::move(x2));
      current.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  };
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  bron_kerbosch(bron_kerbosch, std::move(all), {});

  std::set<Asn> clique;
  for (std::size_t i : best_clique) clique.insert(candidates[i]);
  if (clique.size() < 3) clique.clear();  // No meaningful core found.
  if (clique_out != nullptr) *clique_out = clique;

  // Global (neighbor) degree: used for peer-comparability. Transit degree
  // ranks transit power (apex detection), but a content network with zero
  // transit degree and hundreds of neighbors is still a peering heavyweight.
  std::map<Asn, std::set<Asn>> neighbor_sets;
  for (const auto& path : paths)
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      neighbor_sets[path[i]].insert(path[i + 1]);
      neighbor_sets[path[i + 1]].insert(path[i]);
    }
  auto global_degree_of = [&](Asn asn) -> std::size_t {
    auto it = neighbor_sets.find(asn);
    return it == neighbor_sets.end() ? 0 : it->second.size();
  };
  auto comparable = [&](Asn a, Asn b) {
    const double da = double(global_degree_of(a)) + 1.0;
    const double db = double(global_degree_of(b)) + 1.0;
    const double ratio = da > db ? da / db : db / da;
    return ratio < config.peer_degree_ratio;
  };

  // --- Voting: walk each path over its apex (highest transit degree).
  // A valley-free path has at most one flat (peer) edge, at the top; the
  // apex-adjacent edge whose endpoints have comparable degrees is voted
  // peer, everything else is voted customer-to-provider toward the apex.
  std::map<std::pair<Asn, Asn>, std::size_t> c2p_votes;  // (customer, provider)
  std::map<std::pair<Asn, Asn>, std::size_t> peer_votes;  // Unordered key.
  std::set<std::pair<Asn, Asn>> seen_links;
  for (const auto& path : paths) {
    // Apex: a clique member when the path crosses the core (clique members
    // have no providers, so the path cannot rise above them); otherwise the
    // AS with the highest transit degree.
    std::size_t apex = 0;
    bool apex_in_clique = false;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const bool in_clique = clique.count(path[i]) > 0;
      if (in_clique && !apex_in_clique) {
        apex = i;
        apex_in_clique = true;
      } else if (in_clique == apex_in_clique &&
                 degree_of(path[i]) > degree_of(path[apex])) {
        apex = i;
      }
    }

    // Choose at most one apex-adjacent flat edge: the side with the more
    // comparable degrees wins; ties go to the uphill side.
    std::size_t flat_edge = path.size();  // Index i of edge (i, i+1).
    const bool left_ok = apex > 0 && comparable(path[apex - 1], path[apex]);
    const bool right_ok =
        apex + 1 < path.size() && comparable(path[apex], path[apex + 1]);
    if (left_ok)
      flat_edge = apex - 1;
    else if (right_ok)
      flat_edge = apex;

    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      seen_links.insert(unordered(path[i], path[i + 1]));
      if (i == flat_edge) {
        ++peer_votes[unordered(path[i], path[i + 1])];
      } else if (i + 1 <= apex) {
        ++c2p_votes[{path[i], path[i + 1]}];  // Uphill: left buys from right.
      } else {
        ++c2p_votes[{path[i + 1], path[i]}];  // Downhill.
      }
    }
  }

  // --- Settle each observed link.
  InferredTopology out;
  for (const auto& [a, b] : seen_links) {
    const bool a_clique = clique.count(a) > 0;
    const bool b_clique = clique.count(b) > 0;
    if (a_clique && b_clique) {
      out.set(a, b, InferredRel::kPeer);
      continue;
    }
    // A clique member peers only inside the clique; every other adjacency
    // of a clique member is a customer buying transit (Luckie et al.).
    if (a_clique) {
      out.set(a, b, InferredRel::kAProviderOfB);
      continue;
    }
    if (b_clique) {
      out.set(a, b, InferredRel::kBProviderOfA);
      continue;
    }
    auto votes_of = [](const auto& map, std::pair<Asn, Asn> key) {
      auto it = map.find(key);
      return it == map.end() ? std::size_t{0} : it->second;
    };
    const double ab = double(votes_of(c2p_votes, {a, b}));  // a buys from b.
    const double ba = double(votes_of(c2p_votes, {b, a}));
    const double pp = double(votes_of(peer_votes, {a, b}));

    if (pp > std::max(ab, ba)) {
      out.set(a, b, InferredRel::kPeer);
    } else if (ab > config.vote_dominance * ba) {
      out.set(a, b, InferredRel::kBProviderOfA);
    } else if (ba > config.vote_dominance * ab) {
      out.set(a, b, InferredRel::kAProviderOfB);
    } else if (comparable(a, b)) {
      // Conflicting evidence between comparable ASes: call it peering.
      out.set(a, b, InferredRel::kPeer);
    } else if (degree_of(a) > degree_of(b)) {
      out.set(a, b, InferredRel::kAProviderOfB);
    } else {
      out.set(a, b, InferredRel::kBProviderOfA);
    }

  }
  return out;
}

InferredTopology aggregate_snapshots(
    const std::vector<InferredTopology>& snapshots) {
  IRP_CHECK(!snapshots.empty(), "no snapshots to aggregate");
  const std::size_t n = snapshots.size();

  // Union of pairs.
  std::set<std::pair<Asn, Asn>> pairs;
  for (const auto& snap : snapshots)
    for (const auto& [pair, _] : snap.links()) pairs.insert(pair);

  InferredTopology out;
  for (const auto& [a, b] : pairs) {
    // Collect per-epoch labels (ascending epochs).
    std::vector<std::optional<InferredRel>> labels;
    for (const auto& snap : snapshots) {
      auto it = snap.links().find({a, b});
      labels.push_back(it == snap.links().end()
                           ? std::nullopt
                           : std::optional<InferredRel>{it->second});
    }
    // §3.3: if the two most recent months agree, use that inference.
    std::optional<InferredRel> chosen;
    if (n >= 2 && labels[n - 1].has_value() && labels[n - 1] == labels[n - 2])
      chosen = labels[n - 1];
    if (!chosen) {
      // Weighted majority, weight = epoch index + 1 (recent months heavier).
      std::map<InferredRel, std::size_t> score;
      for (std::size_t e = 0; e < n; ++e)
        if (labels[e]) score[*labels[e]] += e + 1;
      std::size_t best = 0;
      for (const auto& [rel, s] : score)
        if (s > best) {
          best = s;
          chosen = rel;
        }
    }
    IRP_CHECK(chosen.has_value(), "pair in union without any label");
    out.set(a, b, *chosen);
  }
  return out;
}

}  // namespace irp
