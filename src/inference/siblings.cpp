#include "inference/siblings.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {

void SiblingGroups::add_group(std::vector<Asn> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  if (members.size() < 2) return;
  const std::size_t idx = groups_.size();
  for (Asn asn : members) group_of_[asn] = idx;
  groups_.push_back(std::move(members));
}

bool SiblingGroups::same_group(Asn a, Asn b) const {
  auto ia = group_of_.find(a);
  if (ia == group_of_.end()) return false;
  auto ib = group_of_.find(b);
  return ib != group_of_.end() && ia->second == ib->second;
}

SiblingGroups infer_siblings(const WhoisDb& whois, const DnsSoaDb& soa,
                             const SiblingInferenceConfig& config) {
  // Key: authoritative domain (SOA of the whois e-mail domain).
  std::map<std::string, std::vector<Asn>> by_anchor;
  whois.for_each([&](const WhoisRecord& rec) {
    const std::string domain = to_lower(rec.email_domain);
    // Filter groups anchored at popular e-mail providers or RIRs — shared
    // webmail does not imply shared ownership.
    const bool popular =
        std::find(config.popular_email_providers.begin(),
                  config.popular_email_providers.end(),
                  domain) != config.popular_email_providers.end();
    if (popular || starts_with(domain, config.rir_domain_prefix)) return;
    by_anchor[soa.soa_of(domain)].push_back(rec.asn);
  });

  SiblingGroups out;
  for (auto& [anchor, members] : by_anchor) out.add_group(std::move(members));
  return out;
}

}  // namespace irp
