// Dense renumbering of sparse ASN spaces.
//
// The library's per-AS state lives in flat vectors indexed by ASN, which
// requires a dense 1..N numbering. Synthetic topologies are dense by
// construction; real-world relationship dumps (CAIDA) use sparse 32-bit
// ASNs. AsnRenumberer maps between the two so real data can drive GrModel
// and the classifiers.
#pragma once

#include <map>
#include <vector>

#include "inference/relationships.hpp"

namespace irp {

/// Bidirectional sparse<->dense ASN mapping.
class AsnRenumberer {
 public:
  /// Builds the mapping from every ASN appearing in `topo`, in ascending
  /// original-ASN order (dense ids 1..N).
  static AsnRenumberer from(const InferredTopology& topo);

  /// Dense id of an original ASN; throws CheckError when unknown.
  Asn to_dense(Asn original) const;

  /// True if the original ASN is known.
  bool knows(Asn original) const { return to_dense_.count(original) > 0; }

  /// Original ASN of a dense id; throws CheckError when out of range.
  Asn to_original(Asn dense) const;

  /// Number of mapped ASNs (dense ids are 1..count()).
  std::size_t count() const { return to_original_.size(); }

  /// Rewrites a topology into the dense space.
  InferredTopology renumber(const InferredTopology& topo) const;

 private:
  std::map<Asn, Asn> to_dense_;
  std::vector<Asn> to_original_;  ///< Index 0 = dense id 1.
};

}  // namespace irp
