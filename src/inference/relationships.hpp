// AS-relationship inference (CAIDA stand-in) and snapshot aggregation.
//
// Per-snapshot inference follows the classic Gao/Luckie recipe: compute
// transit degrees from observed paths, detect the Tier-1 clique, walk each
// path over its apex voting customer-to-provider on the uphill and downhill
// segments, and settle remaining comparable-degree links as peer-to-peer.
//
// Aggregation follows §3.3 of the paper exactly: five monthly snapshots are
// merged by weighted majority with higher weight for recent months, and if
// the latest two months agree, their inference wins regardless of the first
// three. The merged topology is a *union* of links, which deliberately keeps
// stale links around — one of the violation root causes the paper reports.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "inference/path_corpus.hpp"
#include "topo/types.hpp"

namespace irp {

/// An inferred relationship for an unordered AS pair.
enum class InferredRel : std::uint8_t {
  kAProviderOfB,  ///< first (smaller ASN) is provider of second.
  kBProviderOfA,  ///< second is provider of first.
  kPeer,
};

/// An inferred AS-level topology: pairs with relationship labels.
class InferredTopology {
 public:
  /// Inserts/overwrites the label of a pair.
  void set(Asn a, Asn b, InferredRel rel);

  /// True if the pair is present.
  bool has_link(Asn a, Asn b) const;

  /// Relationship of `b` from `a`'s point of view; nullopt when the pair is
  /// absent from the inferred topology.
  std::optional<Relationship> relationship(Asn a, Asn b) const;

  /// Neighbors of an AS.
  const std::vector<Asn>& neighbors(Asn asn) const;

  std::size_t num_links() const { return rel_.size(); }

  /// Every (pair, label).
  const std::map<std::pair<Asn, Asn>, InferredRel>& links() const {
    return rel_;
  }

 private:
  static std::pair<Asn, Asn> key(Asn a, Asn b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }
  std::map<std::pair<Asn, Asn>, InferredRel> rel_;
  mutable std::map<Asn, std::vector<Asn>> adj_;
  mutable bool adj_dirty_ = false;
  void rebuild_adj() const;
};

/// Tuning knobs of the per-snapshot inference.
struct InferenceConfig {
  /// Maximum clique size considered during clique detection.
  int max_clique_size = 24;
  /// Degree ratio below which two ASes count as "comparable" (peers).
  double peer_degree_ratio = 2.0;
  /// Vote dominance required to settle a c2p direction.
  double vote_dominance = 1.5;
};

/// Infers relationships from one snapshot's paths. When `clique_out` is
/// non-null the detected Tier-1 clique is reported (diagnostics/tests).
InferredTopology infer_snapshot(const std::set<std::vector<Asn>>& paths,
                                const InferenceConfig& config = {},
                                std::set<Asn>* clique_out = nullptr);

/// Aggregates per-epoch inferences per §3.3 (weighted, recency-biased
/// majority over the union of links). `epochs` must be ascending and
/// parallel to `snapshots`.
InferredTopology aggregate_snapshots(
    const std::vector<InferredTopology>& snapshots);

/// Transit degree of every AS in a path set: number of distinct neighbors
/// in positions where the AS relays traffic (not an endpoint).
std::map<Asn, std::size_t> transit_degrees(
    const std::set<std::vector<Asn>>& paths);

}  // namespace irp
