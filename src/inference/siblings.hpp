// Sibling-AS inference from whois e-mail domains and DNS SOA records (§4.2).
//
// Following the paper's refinement of Cai et al.: group ASes whose whois
// contact e-mail domains resolve — directly or via their DNS SOA record —
// to the same authoritative domain. Groups anchored at popular webmail
// providers or at regional Internet registries are discarded (those domains
// say nothing about common ownership).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "topo/registry.hpp"
#include "topo/types.hpp"

namespace irp {

/// A partition of (some) ASes into sibling groups.
class SiblingGroups {
 public:
  /// Adds a group; single-AS groups are dropped.
  void add_group(std::vector<Asn> members);

  /// True if both ASes are in the same inferred sibling group.
  bool same_group(Asn a, Asn b) const;

  std::size_t num_groups() const { return groups_.size(); }

  const std::vector<std::vector<Asn>>& groups() const { return groups_; }

 private:
  std::vector<std::vector<Asn>> groups_;
  std::map<Asn, std::size_t> group_of_;
};

/// Domains whose presence in whois says nothing about AS ownership.
struct SiblingInferenceConfig {
  std::vector<std::string> popular_email_providers{"mail-a.example",
                                                   "mail-b.example"};
  /// Any domain starting with this prefix is treated as RIR-hosted.
  std::string rir_domain_prefix{"rir-"};
};

/// Infers sibling groups from the registries.
SiblingGroups infer_siblings(const WhoisDb& whois, const DnsSoaDb& soa,
                             const SiblingInferenceConfig& config = {});

}  // namespace irp
