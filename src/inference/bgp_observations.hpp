// Per-prefix BGP visibility extracted from collector feeds.
//
// The prefix-specific-policy criteria of §4.3 need to know, from public BGP
// data alone, whether an origin AS O was seen announcing prefix P to a
// neighbor N. A feed path "... N O" for P is exactly that observation.
//
// Lookups are on the classifier's hot path (every PSP GrModel computation
// probes announced()/announced_any() once per candidate origin edge), so the
// store is hash-based: prefixes through Ipv4PrefixHash, (origin, neighbor)
// pairs packed into one 64-bit key. export_sorted() provides the
// deterministic ordering the RouteOracle snapshot format needs.
#pragma once

#include <set>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bgp/route.hpp"
#include "net/ipv4.hpp"
#include "topo/types.hpp"

namespace irp {

/// Which (origin -> neighbor) announcements were visible per prefix.
class BgpObservations {
 public:
  /// Ingests feed entries (poisoned paths are skipped: a poisoned path does
  /// not witness a real origin -> neighbor announcement).
  void ingest(std::span<const FeedEntry> feed);

  /// Records one origin -> neighbor visibility fact for `prefix` directly
  /// (snapshot restore and unit tests; ingest() is the production path).
  void add(Asn origin, Asn neighbor, const Ipv4Prefix& prefix);

  /// True if the feeds show `origin` announcing `prefix` to `neighbor`.
  bool announced(Asn origin, Asn neighbor, const Ipv4Prefix& prefix) const;

  /// True if the feeds show `origin` announcing *any* prefix to `neighbor`.
  bool announced_any(Asn origin, Asn neighbor) const;

  /// Neighbors that `origin` was seen announcing `prefix` to.
  std::set<Asn> neighbors_for(Asn origin, const Ipv4Prefix& prefix) const;

  std::size_t size() const { return per_prefix_.size(); }

  /// Deterministic dump for serialization: prefixes ascending, and within
  /// each prefix the (origin, neighbor) pairs ascending.
  std::vector<std::pair<Ipv4Prefix, std::vector<std::pair<Asn, Asn>>>>
  export_sorted() const;

 private:
  static std::uint64_t pack(Asn origin, Asn neighbor) {
    return (std::uint64_t{origin} << 32) | std::uint64_t{neighbor};
  }

  /// (origin, neighbor) pairs seen for each prefix, packed as u64 keys.
  std::unordered_map<Ipv4Prefix, std::unordered_set<std::uint64_t>,
                     Ipv4PrefixHash>
      per_prefix_;
  std::unordered_set<std::uint64_t> any_prefix_;
};

}  // namespace irp
