// Per-prefix BGP visibility extracted from collector feeds.
//
// The prefix-specific-policy criteria of §4.3 need to know, from public BGP
// data alone, whether an origin AS O was seen announcing prefix P to a
// neighbor N. A feed path "... N O" for P is exactly that observation.
#pragma once

#include <map>
#include <set>
#include <span>

#include "bgp/route.hpp"
#include "net/ipv4.hpp"
#include "topo/types.hpp"

namespace irp {

/// Which (origin -> neighbor) announcements were visible per prefix.
class BgpObservations {
 public:
  /// Ingests feed entries (poisoned paths are skipped).
  void ingest(std::span<const FeedEntry> feed);

  /// True if the feeds show `origin` announcing `prefix` to `neighbor`.
  bool announced(Asn origin, Asn neighbor, const Ipv4Prefix& prefix) const;

  /// True if the feeds show `origin` announcing *any* prefix to `neighbor`.
  bool announced_any(Asn origin, Asn neighbor) const;

  /// Neighbors that `origin` was seen announcing `prefix` to.
  std::set<Asn> neighbors_for(Asn origin, const Ipv4Prefix& prefix) const;

  std::size_t size() const { return per_prefix_.size(); }

 private:
  /// (origin, neighbor) pairs seen for each prefix.
  std::map<Ipv4Prefix, std::set<std::pair<Asn, Asn>>> per_prefix_;
  std::set<std::pair<Asn, Asn>> any_prefix_;
};

}  // namespace irp
