#include "serve/oracle_snapshot.hpp"

#include <algorithm>

#include "core/passive_study.hpp"
#include "serve/byte_io.hpp"
#include "util/check.hpp"
#include "util/file.hpp"

namespace irp {
namespace {

constexpr std::size_t kHeaderBytes = 24;  // magic + version + size + checksum.
constexpr std::string_view kContext = "oracle snapshot";

}  // namespace

std::size_t OracleSnapshot::num_route_entries() const {
  std::size_t n = 0;
  for (const PrefixRoutes& pr : routes) n += pr.entries.size();
  return n;
}

std::string OracleSnapshot::to_bytes() const {
  ByteWriter w;
  w.u32(num_ases);

  w.u32(static_cast<std::uint32_t>(relationships.size()));
  for (const RelationshipEntry& r : relationships) {
    w.u32(r.a);
    w.u32(r.b);
    w.u8(r.rel);
  }

  w.u32(static_cast<std::uint32_t>(sibling_groups.size()));
  for (const auto& group : sibling_groups) w.asns(group);

  w.u32(static_cast<std::uint32_t>(hybrid_entries.size()));
  for (const HybridRecord& h : hybrid_entries) {
    w.u32(h.a);
    w.u32(h.b);
    w.u32(h.city);
    w.u8(h.rel);
  }
  w.u32(static_cast<std::uint32_t>(partial_transit.size()));
  for (const auto& [provider, customer] : partial_transit) {
    w.u32(provider);
    w.u32(customer);
  }

  w.u32(static_cast<std::uint32_t>(observations.size()));
  for (const ObservationBlock& block : observations) {
    w.prefix(block.prefix);
    w.u32(static_cast<std::uint32_t>(block.pairs.size()));
    for (const auto& [origin, neighbor] : block.pairs) {
      w.u32(origin);
      w.u32(neighbor);
    }
  }

  w.u32(static_cast<std::uint32_t>(paths.num_paths()));
  for (PathId id = 0; id < paths.num_paths(); ++id) {
    const PathTable::FlatNode n = paths.flat_node(id);
    w.u32(n.head);
    w.u32(n.tail);
    w.u32(n.num_hops);
    w.u32(n.poison);
  }
  w.u32(static_cast<std::uint32_t>(paths.num_poison_sets()));
  for (std::size_t i = 0; i < paths.num_poison_sets(); ++i)
    w.asns(paths.poison_set_at(i));

  w.u32(static_cast<std::uint32_t>(routes.size()));
  for (const PrefixRoutes& pr : routes) {
    w.prefix(pr.prefix);
    w.u32(pr.origin);
    w.u32(static_cast<std::uint32_t>(pr.entries.size()));
    for (const RouteEntry& e : pr.entries) {
      w.u32(e.asn);
      w.u32(e.selected);
      w.u32(e.next_hop);
      w.u8(e.self_originated ? 1 : 0);
      w.u32(static_cast<std::uint32_t>(e.alternates.size()));
      for (const AlternateRoute& alt : e.alternates) {
        w.u32(alt.path);
        w.u32(alt.from_asn);
      }
    }
  }

  const std::string payload = w.take();
  ByteWriter header;
  header.u32(kOracleSnapshotMagic);
  header.u32(kOracleSnapshotVersion);
  header.u64(payload.size());
  header.u64(fnv1a64(payload));
  return header.take() + payload;
}

OracleSnapshot OracleSnapshot::from_bytes(std::string_view bytes) {
  IRP_CHECK(bytes.size() >= kHeaderBytes,
            "oracle snapshot: image smaller than header");
  ByteReader header{bytes.substr(0, kHeaderBytes), std::string(kContext)};
  IRP_CHECK(header.u32() == kOracleSnapshotMagic,
            "oracle snapshot: bad magic (not an oracle snapshot)");
  const std::uint32_t version = header.u32();
  IRP_CHECK(version == kOracleSnapshotVersion,
            "oracle snapshot: unsupported version " + std::to_string(version));
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  IRP_CHECK(payload_size == bytes.size() - kHeaderBytes,
            "oracle snapshot: truncated image (payload size mismatch)");
  const std::string_view payload = bytes.substr(kHeaderBytes);
  IRP_CHECK(fnv1a64(payload) == checksum,
            "oracle snapshot: checksum mismatch (corrupted image)");

  ByteReader r{payload, std::string(kContext)};
  OracleSnapshot snap;
  snap.num_ases = r.u32();

  const std::uint32_t num_rel = r.count(9);
  snap.relationships.reserve(num_rel);
  for (std::uint32_t i = 0; i < num_rel; ++i) {
    RelationshipEntry e;
    e.a = r.u32();
    e.b = r.u32();
    e.rel = r.u8();
    IRP_CHECK(e.rel <= 2, "oracle snapshot: invalid relationship label");
    snap.relationships.push_back(e);
  }

  const std::uint32_t num_groups = r.count(4);
  snap.sibling_groups.reserve(num_groups);
  for (std::uint32_t i = 0; i < num_groups; ++i)
    snap.sibling_groups.push_back(r.asns());

  const std::uint32_t num_hybrid = r.count(13);
  snap.hybrid_entries.reserve(num_hybrid);
  for (std::uint32_t i = 0; i < num_hybrid; ++i) {
    HybridRecord h;
    h.a = r.u32();
    h.b = r.u32();
    h.city = r.u32();
    h.rel = r.u8();
    IRP_CHECK(h.rel <= 3, "oracle snapshot: invalid hybrid relationship");
    snap.hybrid_entries.push_back(h);
  }
  const std::uint32_t num_partial = r.count(8);
  snap.partial_transit.reserve(num_partial);
  for (std::uint32_t i = 0; i < num_partial; ++i) {
    const Asn provider = r.u32();
    const Asn customer = r.u32();
    snap.partial_transit.emplace_back(provider, customer);
  }

  const std::uint32_t num_obs = r.count(9);
  snap.observations.reserve(num_obs);
  for (std::uint32_t i = 0; i < num_obs; ++i) {
    ObservationBlock block;
    block.prefix = r.prefix();
    const std::uint32_t num_pairs = r.count(8);
    block.pairs.reserve(num_pairs);
    for (std::uint32_t p = 0; p < num_pairs; ++p) {
      const Asn origin = r.u32();
      const Asn neighbor = r.u32();
      block.pairs.emplace_back(origin, neighbor);
    }
    snap.observations.push_back(std::move(block));
  }

  const std::uint32_t num_nodes = r.count(16);
  std::vector<PathTable::FlatNode> nodes;
  nodes.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    PathTable::FlatNode n;
    n.head = r.u32();
    n.tail = r.u32();
    n.num_hops = r.u32();
    n.poison = r.u32();
    nodes.push_back(n);
  }
  const std::uint32_t num_poison = r.count(4);
  std::vector<std::vector<Asn>> poison_sets;
  poison_sets.reserve(num_poison);
  for (std::uint32_t i = 0; i < num_poison; ++i)
    poison_sets.push_back(r.asns());
  snap.paths = PathTable::from_flat(nodes, std::move(poison_sets));

  const std::uint32_t num_prefixes = r.count(13);
  snap.routes.reserve(num_prefixes);
  for (std::uint32_t i = 0; i < num_prefixes; ++i) {
    PrefixRoutes pr;
    pr.prefix = r.prefix();
    pr.origin = r.u32();
    const std::uint32_t num_entries = r.count(17);
    pr.entries.reserve(num_entries);
    for (std::uint32_t e = 0; e < num_entries; ++e) {
      RouteEntry entry;
      entry.asn = r.u32();
      entry.selected = r.u32();
      IRP_CHECK(entry.selected < snap.paths.num_paths(),
                "oracle snapshot: route references a missing path");
      entry.next_hop = r.u32();
      entry.self_originated = r.u8() != 0;
      const std::uint32_t num_alt = r.count(8);
      entry.alternates.reserve(num_alt);
      for (std::uint32_t a = 0; a < num_alt; ++a) {
        AlternateRoute alt;
        alt.path = r.u32();
        IRP_CHECK(alt.path < snap.paths.num_paths(),
                  "oracle snapshot: alternate references a missing path");
        alt.from_asn = r.u32();
        entry.alternates.push_back(alt);
      }
      IRP_CHECK(pr.entries.empty() || pr.entries.back().asn < entry.asn,
                "oracle snapshot: route entries not ascending by ASN");
      pr.entries.push_back(std::move(entry));
    }
    snap.routes.push_back(std::move(pr));
  }
  IRP_CHECK(r.remaining() == 0, "oracle snapshot: trailing bytes in payload");
  return snap;
}

void OracleSnapshot::save(const std::string& path) const {
  write_file(path, to_bytes());
}

OracleSnapshot OracleSnapshot::load(const std::string& path) {
  return from_bytes(read_file(path));
}

OracleSnapshot snapshot_study(const PassiveDataset& ds) {
  IRP_CHECK(ds.engine != nullptr,
            "snapshot_study requires the live measurement engine");
  const BgpEngine& engine = *ds.engine;
  const std::size_t num_ases = engine.topology().num_ases();

  OracleSnapshot snap;
  snap.num_ases = static_cast<std::uint32_t>(num_ases);

  // Aggregated relationships: links() iterates the ordered pair map, so the
  // dump is already deterministic and ascending.
  snap.relationships.reserve(ds.inferred.links().size());
  for (const auto& [pair, rel] : ds.inferred.links())
    snap.relationships.push_back(OracleSnapshot::RelationshipEntry{
        pair.first, pair.second, static_cast<std::uint8_t>(rel)});

  snap.sibling_groups = ds.siblings.groups();

  snap.hybrid_entries.reserve(ds.hybrid.entries().size());
  for (const HybridEntry& h : ds.hybrid.entries())
    snap.hybrid_entries.push_back(OracleSnapshot::HybridRecord{
        h.a, h.b, h.city, static_cast<std::uint8_t>(h.rel_of_b_from_a)});
  snap.partial_transit = ds.hybrid.partial_transit();

  for (const auto& [prefix, pairs] : ds.observations.export_sorted())
    snap.observations.push_back(OracleSnapshot::ObservationBlock{prefix, pairs});

  // Per-(AS, prefix) selected/alternate routes of the measurement engine,
  // re-interned into the snapshot's own path table (hash-consing preserves
  // suffix sharing, so the table stays compact).
  const std::vector<Ipv4Prefix> prefixes = engine.prefixes();
  snap.routes.reserve(prefixes.size());
  for (const Ipv4Prefix& prefix : prefixes) {
    OracleSnapshot::PrefixRoutes pr;
    pr.prefix = prefix;
    for (Asn asn = 1; asn <= static_cast<Asn>(num_ases); ++asn) {
      const BgpEngine::Selected* sel = engine.best(asn, prefix);
      if (sel == nullptr) continue;
      OracleSnapshot::RouteEntry entry;
      entry.asn = asn;
      entry.selected = snap.paths.intern(engine.paths().materialize(sel->path_id));
      entry.next_hop = sel->next_hop;
      entry.self_originated = sel->self_originated;
      if (sel->self_originated) pr.origin = asn;
      for (const Route& route : engine.routes_at(asn, prefix)) {
        if (route.via_link == sel->via_link) continue;  // The selected route.
        OracleSnapshot::AlternateRoute alt;
        alt.path = snap.paths.intern(route.path);
        alt.from_asn = route.from_asn;
        entry.alternates.push_back(alt);
      }
      pr.entries.push_back(std::move(entry));
    }
    snap.routes.push_back(std::move(pr));
  }
  return snap;
}

}  // namespace irp
