// OracleWire client: a synchronous, retrying TCP client for OracleServer.
//
// call() sends one request frame and blocks until the matching response
// arrives (request ids are matched, so a server answering out of order is
// fine). The connection is established lazily on the first call and reused
// across calls; any transport failure closes it so the next attempt starts
// clean.
//
// Failure taxonomy — every failure mode has a distinct type, so callers can
// react precisely:
//   * WireTransportError — the TCP layer failed (connect refused/timeout,
//     read timeout, peer closed mid-reply). `kind()` says which. Transient
//     by definition: call() retries these itself, up to `max_retries` times
//     with doubling backoff, before letting the error escape. Retrying is
//     safe because every oracle query is a pure read.
//   * WireDecodeError (wire.hpp) — the server sent bytes that do not parse.
//     Never retried: a peer that corrupts frames cannot be trusted with a
//     resend.
//   * OracleServerError — the server answered with a kError frame. Only
//     kOverloaded and kShuttingDown are retried (backoff gives the admission
//     queue time to empty); kMalformedRequest and kInternal escape at once
//     since a resend would fail identically.
//
// The client is single-threaded by design (one in-flight request per
// instance); share load by creating one client per thread, as
// test_oracle_server's concurrency test does.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "serve/wire.hpp"

namespace irp {

/// TCP/connection-level failure; retried internally up to Config::max_retries.
class WireTransportError : public CheckError {
 public:
  enum class Kind : std::uint8_t {
    kConnect,  ///< Could not establish the TCP connection in time.
    kTimeout,  ///< Connected, but no full reply within read_timeout.
    kClosed,   ///< Peer closed the connection before the reply completed.
    kIo,       ///< send()/recv() failed outright.
  };
  WireTransportError(Kind kind, const std::string& what)
      : CheckError(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// The server refused to answer: a kError frame, surfaced after the retry
/// budget (for retryable codes) or immediately (for the rest).
class OracleServerError : public CheckError {
 public:
  OracleServerError(WireErrorCode code, const std::string& what)
      : CheckError(what), code_(code) {}
  WireErrorCode code() const { return code_; }

 private:
  WireErrorCode code_;
};

/// Synchronous OracleWire client; one in-flight request at a time.
class OracleClient {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::chrono::milliseconds connect_timeout{2000};
    /// Budget for one complete reply (applies per attempt, not per byte).
    std::chrono::milliseconds read_timeout{5000};
    /// Extra attempts after the first, on transient failures only.
    int max_retries = 2;
    /// First retry waits this long; each further retry doubles it.
    std::chrono::milliseconds retry_backoff{50};
    /// Frames claiming a larger payload are rejected from the header alone.
    std::size_t max_frame_payload = kMaxWirePayload;
    /// Study id every request is routed to ("" = the server's default
    /// study). Nonempty ids make the client emit version-2 frames with
    /// kWireFlagStudy; a server that does not host the id answers every
    /// call with OracleServerError(kUnknownStudy), never retried.
    std::string study;
  };

  explicit OracleClient(Config config);
  ~OracleClient();

  OracleClient(const OracleClient&) = delete;
  OracleClient& operator=(const OracleClient&) = delete;

  /// Sends the request and blocks for its answer. Throws
  /// WireTransportError / WireDecodeError / OracleServerError as documented
  /// above. Reconnects and retries transient failures internally.
  OracleResponse call(const OracleRequest& request);

  /// True while a TCP connection is established (informational).
  bool connected() const { return fd_ >= 0; }

  /// Closes the connection; the next call() reconnects.
  void disconnect();

 private:
  void ensure_connected();
  void send_all(const std::string& bytes,
                std::chrono::steady_clock::time_point deadline);
  WireFrame read_frame(std::chrono::steady_clock::time_point deadline);
  OracleResponse attempt(const OracleRequest& request);

  Config config_;
  int fd_ = -1;
  std::string in_buf_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace irp
