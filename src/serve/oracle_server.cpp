#include "serve/oracle_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <mutex>
#include <vector>

#include "util/check.hpp"

namespace irp {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  IRP_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  IRP_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(F_SETFL, O_NONBLOCK) failed");
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

struct OracleServer::Impl {
  /// One admitted request whose service future has not resolved yet.
  struct InFlight {
    std::uint64_t request_id = 0;
    QueryType type = QueryType::kClassify;
    std::future<OracleResponse> response;
    std::chrono::steady_clock::time_point decoded;
  };

  struct Connection {
    int fd = -1;
    std::string in_buf;
    std::string out_buf;
    std::list<InFlight> inflight;
    bool read_closed = false;  ///< Peer EOF, poisoned stream, or draining;
                               ///< the connection closes once fully flushed.
  };

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::uint16_t bound_port = 0;
  std::list<Connection> connections;
  std::mutex shutdown_mu;

  struct PerType {
    std::atomic<std::uint64_t> answered{0};
    LatencyHistogram latency;
  };
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_refused{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> requests_admitted{0};
  std::atomic<std::uint64_t> requests_shed{0};
  std::atomic<std::uint64_t> requests_unknown_study{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::array<PerType, kNumQueryTypes> per_type;

  void close_connection(std::list<Connection>::iterator it) {
    ::close(it->fd);
    connections.erase(it);
    connections_closed.fetch_add(1, std::memory_order_relaxed);
  }

  void queue_frame(Connection& conn, std::string frame_bytes) {
    conn.out_buf += frame_bytes;
    frames_out.fetch_add(1, std::memory_order_relaxed);
  }
};

OracleServer::OracleServer(OracleService* service, Config config)
    : service_(service), config_(std::move(config)),
      impl_(std::make_unique<Impl>()) {
  IRP_CHECK(service_ != nullptr, "oracle server requires a service");
  IRP_CHECK(config_.max_connections >= 1, "max_connections must be >= 1");
}

OracleServer::OracleServer(OracleService* service)
    : OracleServer(service, Config{}) {}

OracleServer::~OracleServer() { shutdown(); }

void OracleServer::start() {
  IRP_CHECK(!started_.load(), "oracle server already started");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  IRP_CHECK(fd >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  IRP_CHECK(::inet_pton(AF_INET, config_.bind_address.c_str(),
                        &addr.sin_addr) == 1,
            "bad bind address " + config_.bind_address);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    IRP_CHECK(false, "cannot bind " + config_.bind_address + ":" +
                         std::to_string(config_.port) + " — " + err);
  }
  IRP_CHECK(::listen(fd, 64) == 0, "listen() failed");
  set_nonblocking(fd);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  IRP_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
            "getsockname() failed");
  impl_->bound_port = ntohs(bound.sin_port);
  impl_->listen_fd = fd;

  int pipe_fds[2];
  IRP_CHECK(::pipe(pipe_fds) == 0, "pipe() failed");
  impl_->wake_read = pipe_fds[0];
  impl_->wake_write = pipe_fds[1];
  set_nonblocking(impl_->wake_read);
  set_nonblocking(impl_->wake_write);

  thread_ = std::thread([this] { poll_loop(); });
  started_.store(true);
}

std::uint16_t OracleServer::port() const {
  IRP_CHECK(started_.load(), "oracle server not started");
  return impl_->bound_port;
}

void OracleServer::shutdown() {
  std::lock_guard<std::mutex> lock(impl_->shutdown_mu);
  stopping_.store(true);
  if (!thread_.joinable()) return;
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(impl_->wake_write, &byte, 1);
  thread_.join();
}

WireServerStats OracleServer::stats() const {
  const Impl& im = *impl_;
  WireServerStats s;
  s.connections_accepted = im.connections_accepted.load();
  s.connections_refused = im.connections_refused.load();
  s.connections_closed = im.connections_closed.load();
  s.frames_in = im.frames_in.load();
  s.frames_out = im.frames_out.load();
  s.requests_admitted = im.requests_admitted.load();
  s.requests_shed = im.requests_shed.load();
  s.requests_unknown_study = im.requests_unknown_study.load();
  s.decode_errors = im.decode_errors.load();
  s.bytes_in = im.bytes_in.load();
  s.bytes_out = im.bytes_out.load();
  for (int t = 0; t < kNumQueryTypes; ++t) {
    s.per_type[t].answered = im.per_type[t].answered.load();
    s.per_type[t].p50_us = im.per_type[t].latency.quantile_us(0.50);
    s.per_type[t].p99_us = im.per_type[t].latency.quantile_us(0.99);
  }
  return s;
}

void OracleServer::poll_loop() {
  Impl& im = *impl_;
  using Clock = std::chrono::steady_clock;
  bool draining = false;
  Clock::time_point drain_deadline{};

  // Decodes every complete frame in conn.in_buf; requests go to the
  // service, sheds and malformed payloads get error frames. A framing-level
  // decode error poisons the connection (one error frame, then close).
  auto consume_input = [&](Impl::Connection& conn) {
    try {
      while (auto frame =
                 try_decode_frame(conn.in_buf, config_.max_frame_payload)) {
        im.frames_in.fetch_add(1, std::memory_order_relaxed);
        if (!is_request_frame(frame->type)) {
          im.decode_errors.fetch_add(1, std::memory_order_relaxed);
          im.queue_frame(conn, encode_error(
                                   frame->request_id,
                                   WireErrorCode::kMalformedRequest,
                                   "expected a request frame, got " +
                                       std::string(frame_type_name(
                                           frame->type))));
          continue;
        }
        OracleRequest request;
        try {
          request = decode_request(*frame);
        } catch (const WireDecodeError& e) {
          im.decode_errors.fetch_add(1, std::memory_order_relaxed);
          im.queue_frame(conn,
                         encode_error(frame->request_id,
                                      WireErrorCode::kMalformedRequest,
                                      e.what()));
          continue;
        }
        const QueryType type = query_type(request);
        OracleService::Submitted submitted =
            service_->submit(std::move(request), frame->study);
        if (!submitted.accepted) {
          if (submitted.reject == OracleService::Reject::kUnknownStudy) {
            im.requests_unknown_study.fetch_add(1, std::memory_order_relaxed);
            im.queue_frame(conn,
                           encode_error(frame->request_id,
                                        WireErrorCode::kUnknownStudy,
                                        "unknown study '" + frame->study +
                                            "'"));
          } else {
            im.requests_shed.fetch_add(1, std::memory_order_relaxed);
            im.queue_frame(conn, encode_error(frame->request_id,
                                              WireErrorCode::kOverloaded,
                                              "service queue full"));
          }
          continue;
        }
        im.requests_admitted.fetch_add(1, std::memory_order_relaxed);
        Impl::InFlight in_flight;
        in_flight.request_id = frame->request_id;
        in_flight.type = type;
        in_flight.response = std::move(submitted.response);
        in_flight.decoded = Clock::now();
        conn.inflight.push_back(std::move(in_flight));
      }
    } catch (const WireDecodeError& e) {
      // Framing is gone; no resynchronization is possible. One diagnostic
      // error frame, then hard-close once it flushes.
      im.decode_errors.fetch_add(1, std::memory_order_relaxed);
      im.queue_frame(conn, encode_error(0, WireErrorCode::kMalformedRequest,
                                        e.what()));
      conn.in_buf.clear();
      conn.read_closed = true;
    }
  };

  auto flush_output = [&](Impl::Connection& conn) -> bool {
    while (!conn.out_buf.empty()) {
      const ssize_t n = ::send(conn.fd, conn.out_buf.data(),
                               conn.out_buf.size(), MSG_NOSIGNAL);
      if (n > 0) {
        im.bytes_out.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
        conn.out_buf.erase(0, static_cast<std::size_t>(n));
      } else if (errno == EINTR) {
        continue;  // Interrupted before any byte moved; just retry.
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;
      } else {
        return false;  // Peer gone; caller drops the connection.
      }
    }
    return true;
  };

  for (;;) {
    if (stopping_.load() && !draining) {
      draining = true;
      drain_deadline = Clock::now() +
                       std::chrono::milliseconds(config_.drain_timeout_ms);
      if (im.listen_fd >= 0) {
        ::close(im.listen_fd);
        im.listen_fd = -1;
      }
      // Stop reading everywhere: requests not yet admitted are refused by
      // the drain contract; admitted ones below are still answered.
      for (Impl::Connection& conn : im.connections) conn.read_closed = true;
    }

    // Completion sweep: move resolved service futures into output buffers.
    bool any_inflight = false;
    for (Impl::Connection& conn : im.connections) {
      for (auto it = conn.inflight.begin(); it != conn.inflight.end();) {
        if (it->response.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          any_inflight = true;
          ++it;
          continue;
        }
        std::string frame_bytes;
        try {
          const OracleResponse response = it->response.get();
          frame_bytes = encode_response(it->request_id, response);
          Impl::PerType& pt = im.per_type[static_cast<int>(it->type)];
          pt.latency.record(elapsed_ns(it->decoded));
          pt.answered.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e) {
          frame_bytes = encode_error(it->request_id,
                                     WireErrorCode::kInternal, e.what());
        }
        im.queue_frame(conn, std::move(frame_bytes));
        it = conn.inflight.erase(it);
      }
    }

    // Flush + reap. A connection dies when the peer vanished, or when it is
    // fully served (no reads coming, nothing in flight, all bytes out).
    const bool past_deadline = draining && Clock::now() >= drain_deadline;
    for (auto it = im.connections.begin(); it != im.connections.end();) {
      if (!flush_output(*it)) {
        im.close_connection(it++);
        continue;
      }
      const bool done = it->read_closed && it->inflight.empty() &&
                        it->out_buf.empty();
      if (done || past_deadline) {
        im.close_connection(it++);
        continue;
      }
      ++it;
    }
    if (draining && im.connections.empty()) break;

    // Poll: listen + wake pipe + every connection.
    std::vector<pollfd> fds;
    std::vector<Impl::Connection*> fd_conns;
    if (im.listen_fd >= 0)
      fds.push_back(pollfd{im.listen_fd, POLLIN, 0});
    const std::size_t wake_slot = fds.size();
    fds.push_back(pollfd{im.wake_read, POLLIN, 0});
    for (Impl::Connection& conn : im.connections) {
      short events = 0;
      if (!conn.read_closed) events |= POLLIN;
      if (!conn.out_buf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn.fd, events, 0});
      fd_conns.push_back(&conn);
    }
    // Pending futures resolve without waking any fd, so poll briefly while
    // any exist; otherwise sleep until traffic or the wake pipe.
    const int timeout_ms = any_inflight ? 1 : (draining ? 10 : 200);
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // Unrecoverable poll failure.

    if (fds[wake_slot].revents & POLLIN) {
      char sink[64];
      while (::read(im.wake_read, sink, sizeof sink) > 0) {
      }
    }

    // Accept new connections (refused outright above the connection cap).
    if (im.listen_fd >= 0 && (fds[0].revents & POLLIN)) {
      for (;;) {
        const int conn_fd = ::accept(im.listen_fd, nullptr, nullptr);
        if (conn_fd < 0) break;
        if (im.connections.size() >=
            static_cast<std::size_t>(config_.max_connections)) {
          ::close(conn_fd);
          im.connections_refused.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        set_nonblocking(conn_fd);
        const int one = 1;
        ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        Impl::Connection conn;
        conn.fd = conn_fd;
        im.connections.push_back(std::move(conn));
        im.connections_accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Reads. fd_conns indexes connections as they were when fds was built;
    // reaping happens at the top of the next iteration, so iterators stay
    // valid through this loop.
    for (std::size_t i = 0; i < fd_conns.size(); ++i) {
      const pollfd& pfd = fds[wake_slot + 1 + i];
      Impl::Connection& conn = *fd_conns[i];
      // POLLHUP with frames still queued: stop reading but keep flushing —
      // the peer may only have half-closed its write side.
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL))
        conn.read_closed = true;
      if (!(pfd.revents & POLLIN) || conn.read_closed) continue;
      char buf[65536];
      for (;;) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
        if (n > 0) {
          im.bytes_in.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
          conn.in_buf.append(buf, static_cast<std::size_t>(n));
        } else if (n == 0) {
          conn.read_closed = true;
          break;
        } else if (errno == EINTR) {
          continue;  // A signal is not a peer disconnect; retry the read.
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        } else {
          conn.read_closed = true;
          break;
        }
      }
      if (!conn.in_buf.empty()) consume_input(conn);
    }
  }

  // Teardown: whatever survived the drain deadline closes now.
  for (auto it = im.connections.begin(); it != im.connections.end();)
    im.close_connection(it++);
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  ::close(im.wake_read);
  ::close(im.wake_write);
}

}  // namespace irp
