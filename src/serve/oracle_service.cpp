#include "serve/oracle_service.hpp"

#include <bit>
#include <sstream>

#include "util/check.hpp"

namespace irp {

QueryType query_type(const OracleRequest& request) {
  return static_cast<QueryType>(request.index());
}

std::string_view query_type_name(QueryType type) {
  switch (type) {
    case QueryType::kClassify: return "classify";
    case QueryType::kAlternateRoutes: return "alternate_routes";
    case QueryType::kPspVisibility: return "psp_visibility";
    case QueryType::kRelationshipLookup: return "relationship";
  }
  IRP_UNREACHABLE("bad query type");
}

namespace {

struct TextRenderer {
  std::ostringstream out;

  void operator()(const ClassifyResponse& r) {
    out << "classify category=" << decision_category_name(r.category)
        << " best=" << (r.best ? 1 : 0) << " short=" << (r.is_short ? 1 : 0);
  }
  void operator()(const AlternateRoutesResponse& r) {
    if (!r.has_route) {
      out << "alternate_routes no-route";
      return;
    }
    out << "alternate_routes selected=[" << r.selected.to_string() << "]"
        << " next_hop=" << r.next_hop
        << " self=" << (r.self_originated ? 1 : 0) << " alternates="
        << r.alternates.size();
    for (const auto& alt : r.alternates)
      out << " {from=" << alt.from_asn << " path=[" << alt.path.to_string()
          << "]}";
  }
  void operator()(const PspVisibilityResponse& r) {
    out << "psp announced=" << (r.announced ? 1 : 0)
        << " announced_any=" << (r.announced_any ? 1 : 0) << " neighbors=[";
    for (std::size_t i = 0; i < r.neighbors.size(); ++i) {
      if (i > 0) out << ' ';
      out << r.neighbors[i];
    }
    out << "]";
  }
  void operator()(const RelationshipLookupResponse& r) {
    out << "relationship has_link=" << (r.has_link ? 1 : 0) << " rel="
        << (r.rel ? relationship_name(*r.rel) : std::string_view{"none"})
        << " siblings=" << (r.same_sibling_group ? 1 : 0);
  }
};

struct Evaluator {
  const OracleIndex* index;

  OracleResponse operator()(const ClassifyRequest& req) const {
    ClassifyResponse resp;
    resp.category = index->classify(req.decision, req.scenario);
    resp.best = resp.category == DecisionCategory::kBestShort ||
                resp.category == DecisionCategory::kBestLong;
    resp.is_short = resp.category == DecisionCategory::kBestShort ||
                    resp.category == DecisionCategory::kNonBestShort;
    return resp;
  }

  OracleResponse operator()(const AlternateRoutesRequest& req) const {
    AlternateRoutesResponse resp;
    const OracleSnapshot::RouteEntry* entry =
        index->route(req.asn, req.prefix);
    if (entry == nullptr) return resp;
    resp.has_route = true;
    resp.self_originated = entry->self_originated;
    resp.next_hop = entry->next_hop;
    resp.selected = index->paths().materialize(entry->selected);
    resp.alternates.reserve(entry->alternates.size());
    for (const OracleSnapshot::AlternateRoute& alt : entry->alternates) {
      AlternateRoutesResponse::Alternate out;
      out.path = index->paths().materialize(alt.path);
      out.from_asn = alt.from_asn;
      resp.alternates.push_back(std::move(out));
    }
    return resp;
  }

  OracleResponse operator()(const PspVisibilityRequest& req) const {
    PspVisibilityResponse resp;
    const BgpObservations& obs = index->observations();
    resp.announced = obs.announced(req.origin, req.neighbor, req.prefix);
    resp.announced_any = obs.announced_any(req.origin, req.neighbor);
    const auto neighbors = obs.neighbors_for(req.origin, req.prefix);
    resp.neighbors.assign(neighbors.begin(), neighbors.end());
    return resp;
  }

  OracleResponse operator()(const RelationshipLookupRequest& req) const {
    RelationshipLookupResponse resp;
    resp.has_link = index->topology().has_link(req.a, req.b);
    resp.rel = index->topology().relationship(req.a, req.b);
    resp.same_sibling_group = index->siblings().same_group(req.a, req.b);
    return resp;
  }
};

}  // namespace

std::string to_text(const OracleResponse& response) {
  TextRenderer renderer;
  std::visit(renderer, response);
  return renderer.out.str();
}

void LatencyHistogram::record(std::uint64_t nanos) {
  const int bucket =
      nanos == 0
          ? 0
          : std::min(kBuckets - 1, static_cast<int>(std::bit_width(nanos)) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::quantile_us(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const std::uint64_t target =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * double(total)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Upper bound of bucket i is 2^(i+1) ns.
      return double(std::uint64_t{1} << std::min(i + 1, 62)) / 1000.0;
    }
  }
  return 0;
}

OracleService::OracleService(const OracleIndex* index, Config config)
    : index_(index), catalog_(nullptr), config_(config) {
  IRP_CHECK(index_ != nullptr, "oracle service requires an index");
  IRP_CHECK(config_.worker_threads >= 0, "worker_threads must be >= 0");
  IRP_CHECK(config_.queue_capacity > 0, "queue_capacity must be positive");
  study_counters_.push_back(std::make_unique<TypeCounters>());
  workers_.reserve(static_cast<std::size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

OracleService::OracleService(const OracleIndex* index)
    : OracleService(index, Config{}) {}

OracleService::OracleService(const StudyCatalog* catalog, Config config)
    : index_(nullptr), catalog_(catalog), config_(config) {
  IRP_CHECK(catalog_ != nullptr, "oracle service requires a catalog");
  IRP_CHECK(catalog_->size() > 0, "oracle service catalog holds no studies");
  IRP_CHECK(config_.worker_threads >= 0, "worker_threads must be >= 0");
  IRP_CHECK(config_.queue_capacity > 0, "queue_capacity must be positive");
  index_ = catalog_->default_study()->index.get();
  for (std::size_t i = 0; i < catalog_->size(); ++i)
    study_counters_.push_back(std::make_unique<TypeCounters>());
  workers_.reserve(static_cast<std::size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

OracleService::~OracleService() { shutdown(); }

const OracleIndex* OracleService::resolve(std::string_view study,
                                          std::uint32_t* ordinal) const {
  if (catalog_ == nullptr) {
    // Single-index mode hosts exactly one anonymous study.
    if (!study.empty()) return nullptr;
    *ordinal = 0;
    return index_;
  }
  const StudyCatalog::Study* found = catalog_->find(study);
  if (found == nullptr) return nullptr;
  *ordinal = found->ordinal;
  return found->index.get();
}

OracleResponse OracleService::answer(const OracleRequest& request) const {
  return std::visit(Evaluator{index_}, request);
}

OracleResponse OracleService::answer(const OracleRequest& request,
                                     std::string_view study) const {
  std::uint32_t ordinal = 0;
  const OracleIndex* index = resolve(study, &ordinal);
  if (index == nullptr) {
    unknown_study_.fetch_add(1, std::memory_order_relaxed);
    throw UnknownStudyError(study);
  }
  return std::visit(Evaluator{index}, request);
}

void OracleService::serve_one(Pending& pending) {
  const QueryType type = query_type(pending.request);
  TypeCounters& counters = counters_[static_cast<int>(type)];
  TypeCounters& study_counters = *study_counters_[pending.study_ordinal];
  try {
    OracleResponse response =
        std::visit(Evaluator{pending.index}, pending.request);
    const auto done = std::chrono::steady_clock::now();
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(done -
                                                             pending.enqueued)
            .count());
    counters.latency.record(nanos);
    counters.served.fetch_add(1, std::memory_order_relaxed);
    study_counters.latency.record(nanos);
    study_counters.served.fetch_add(1, std::memory_order_relaxed);
    pending.promise.set_value(std::move(response));
  } catch (...) {
    pending.promise.set_exception(std::current_exception());
  }
  if (config_.cache_rebalance_every > 0 && catalog_ != nullptr) {
    const std::uint64_t served =
        served_total_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (served % config_.cache_rebalance_every == 0)
      catalog_->rebalance_cache();
  }
}

void OracleService::worker_main() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    serve_one(pending);
  }
}

OracleService::Submitted OracleService::submit(OracleRequest request) {
  return submit(std::move(request), std::string_view{});
}

OracleService::Submitted OracleService::submit(OracleRequest request,
                                               std::string_view study) {
  Pending pending;
  pending.request = std::move(request);
  pending.index = resolve(study, &pending.study_ordinal);
  if (pending.index == nullptr) {
    unknown_study_.fetch_add(1, std::memory_order_relaxed);
    Submitted shed;
    shed.reject = Reject::kUnknownStudy;
    return shed;
  }
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<OracleResponse> future = pending.promise.get_future();
  const QueryType type = query_type(pending.request);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= config_.queue_capacity) {
      counters_[static_cast<int>(type)].rejected.fetch_add(
          1, std::memory_order_relaxed);
      study_counters_[pending.study_ordinal]->rejected.fetch_add(
          1, std::memory_order_relaxed);
      Submitted shed;  // Overload: shed rather than grow or stall.
      shed.reject = Reject::kOverloaded;
      return shed;
    }
    queue_.push_back(std::move(pending));
    peak_queue_depth_ = std::max(peak_queue_depth_, queue_.size());
  }
  cv_.notify_one();
  return Submitted{true, std::move(future), Reject::kNone};
}

std::size_t OracleService::drain(std::size_t max_requests) {
  std::size_t served = 0;
  while (served < max_requests) {
    Pending pending;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    serve_one(pending);
    ++served;
  }
  return served;
}

void OracleService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Deterministic mode (no workers): serve what was accepted before the
  // stop, honoring the accepted-implies-answered contract.
  drain();
}

OracleStatsView OracleService::stats() const {
  OracleStatsView view;
  for (int t = 0; t < kNumQueryTypes; ++t) {
    const TypeCounters& c = counters_[t];
    view.per_type[t].served = c.served.load(std::memory_order_relaxed);
    view.per_type[t].rejected = c.rejected.load(std::memory_order_relaxed);
    view.per_type[t].p50_us = c.latency.quantile_us(0.50);
    view.per_type[t].p99_us = c.latency.quantile_us(0.99);
    view.served += view.per_type[t].served;
    view.rejected += view.per_type[t].rejected;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    view.peak_queue_depth = peak_queue_depth_;
  }
  view.unknown_study = unknown_study_.load(std::memory_order_relaxed);

  view.per_study.reserve(study_counters_.size());
  for (std::size_t i = 0; i < study_counters_.size(); ++i) {
    OracleStatsView::PerStudy per;
    if (catalog_ != nullptr) {
      per.name = catalog_->studies()[i]->name;
      per.cache = catalog_->studies()[i]->index->cache_stats();
    } else {
      per.cache = index_->cache_stats();
    }
    const TypeCounters& c = *study_counters_[i];
    per.served = c.served.load(std::memory_order_relaxed);
    per.rejected = c.rejected.load(std::memory_order_relaxed);
    per.p50_us = c.latency.quantile_us(0.50);
    per.p99_us = c.latency.quantile_us(0.99);
    view.per_study.push_back(std::move(per));
  }

  if (catalog_ == nullptr) {
    view.cache = index_->cache_stats();
  } else {
    // Aggregate across studies; the capacity reported is the shared budget,
    // not the sum of the (rebalancing) per-study quotas.
    for (const OracleStatsView::PerStudy& per : view.per_study) {
      view.cache.hits += per.cache.hits;
      view.cache.misses += per.cache.misses;
      view.cache.evictions += per.cache.evictions;
      view.cache.entries += per.cache.entries;
      view.cache.shards += per.cache.shards;
    }
    view.cache.capacity = catalog_->cache_budget().total_capacity;
  }
  return view;
}

}  // namespace irp
