// OracleWire server: a poll(2)-driven multi-client TCP front for
// OracleService.
//
// One background thread owns every socket. It accepts connections, reads
// and frame-decodes requests (wire.hpp), and feeds them straight into the
// OracleService admission queue — the server adds no queueing of its own,
// so the service's bounded MPMC queue remains the single source of
// backpressure truth. When admission control sheds a request, the client
// receives an explicit kOverloaded error frame instead of a stalled or
// dropped connection; the socket stays healthy and the client can retry.
//
// Robustness rules (all tested in test_oracle_server):
//   * Malformed bytes — bad magic, wrong version, oversized or corrupt
//     frames — earn one kMalformedRequest error frame and a hard close of
//     that connection. A byte stream that failed to frame-decode cannot be
//     resynchronized, so the server never tries.
//   * A request frame that frame-decodes but not request-decodes gets a
//     kMalformedRequest error frame; the connection stays open (framing is
//     intact, only that one payload was bad).
//   * Connections beyond `max_connections` are accepted and immediately
//     closed (counted, never serviced).
//   * shutdown() drains gracefully: the listen socket closes first (new
//     connections refused), every request already admitted to the service
//     is answered and flushed, then connections close. A drain deadline
//     bounds how long a non-reading client can hold shutdown hostage.
//
// Observability: WireServerStats counts connections (accepted / refused /
// closed), frames and bytes in both directions, admitted vs shed requests
// and decode errors, and per-query-type wire latency histograms measured
// from frame decode to response enqueue — i.e. including the service queue
// wait, which is exactly the number a remote caller experiences on top of
// raw evaluation (OracleStatsView has the service-side view).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/oracle_service.hpp"
#include "serve/wire.hpp"

namespace irp {

/// Copyable server counters snapshot; see OracleServer::stats().
struct WireServerStats {
  struct PerType {
    std::uint64_t answered = 0;  ///< Response frames sent for this type.
    double p50_us = 0;           ///< Wire latency: decode -> response queued.
    double p99_us = 0;
  };
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< Over max_connections, or drain.
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t requests_admitted = 0;  ///< Passed service admission control.
  std::uint64_t requests_shed = 0;      ///< kOverloaded error frames sent.
  std::uint64_t requests_unknown_study = 0;  ///< kUnknownStudy frames sent.
  std::uint64_t decode_errors = 0;      ///< Connections poisoned by bad bytes.
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::array<PerType, kNumQueryTypes> per_type{};
};

/// TCP front for one OracleService. The service (and its index/snapshot)
/// must outlive the server.
class OracleServer {
 public:
  struct Config {
    /// Address to bind; the default serves loopback only. Use "0.0.0.0" to
    /// accept remote hosts.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back with port()).
    std::uint16_t port = 0;
    /// Connections beyond this are accepted and immediately closed.
    int max_connections = 64;
    /// Frames claiming a larger payload are rejected from the header alone.
    std::size_t max_frame_payload = kMaxWirePayload;
    /// Graceful-drain bound: shutdown() force-closes connections that have
    /// not flushed within this many milliseconds.
    int drain_timeout_ms = 5000;
  };

  OracleServer(OracleService* service, Config config);
  explicit OracleServer(OracleService* service);
  ~OracleServer();  ///< Calls shutdown().

  OracleServer(const OracleServer&) = delete;
  OracleServer& operator=(const OracleServer&) = delete;

  /// Binds, listens, and starts the poll thread. Throws CheckError when the
  /// address cannot be bound. Call at most once.
  void start();

  /// The actually bound TCP port (resolves port == 0); valid after start().
  std::uint16_t port() const;

  /// Graceful drain: refuses new connections, answers every admitted
  /// request, flushes and closes every connection (bounded by
  /// drain_timeout_ms), joins the poll thread. Idempotent.
  void shutdown();

  WireServerStats stats() const;

 private:
  struct Impl;

  void poll_loop();

  OracleService* service_;
  Config config_;
  std::unique_ptr<Impl> impl_;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace irp
