// RouteOracle read layer: sharded indexes and cached evaluation over a
// loaded snapshot.
//
// OracleIndex materializes the study datasets (inferred topology, siblings,
// hybrid, observations) back out of the flat snapshot arrays and drives a
// DecisionClassifier over them, so a query against a snapshot reuses exactly
// the classification semantics of the offline study (§4.1-§4.3). Route
// lookups go through a sharded hash index keyed by prefix, then binary
// search by ASN inside the prefix block; everything is read-only after
// construction, so concurrent queries need no locks on the index itself.
//
// ClassifyCache is the one mutable piece: a bounded, sharded LRU over final
// classification results. Shards are independently locked, so concurrent
// classify queries only contend when they hash to the same shard; capacity
// is enforced per shard (capacity/shards each) and eviction is plain LRU.
// Cached values are deterministic functions of the key, so the cache never
// changes an answer — only its latency.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/classify.hpp"
#include "serve/oracle_snapshot.hpp"

namespace irp {

/// Everything DecisionClassifier::classify reads from a decision + scenario,
/// packed into an equality-comparable cache key.
struct ClassifyKey {
  Asn decider = 0;
  Asn next_hop = 0;
  Asn dest = 0;
  Ipv4Prefix prefix;
  std::uint32_t remaining_len = 0;
  CityId city = 0;
  bool has_city = false;
  std::uint8_t scenario = 0;  ///< bit0 hybrid, bit1 siblings, bits 2-3 PSP.

  friend bool operator==(const ClassifyKey&, const ClassifyKey&) = default;
};

ClassifyKey make_classify_key(const RouteDecision& d,
                              const ScenarioOptions& opts);

struct ClassifyKeyHash {
  std::size_t operator()(const ClassifyKey& k) const;
};

/// Bounded sharded LRU cache for classification results.
class ClassifyCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;
    std::size_t shards = 0;
    double hit_rate() const {
      const double total = double(hits) + double(misses);
      return total == 0 ? 0.0 : double(hits) / total;
    }
  };

  /// `capacity` is the total entry budget, split evenly over `shards`.
  /// capacity == 0 disables the cache (every get misses, puts are dropped).
  ClassifyCache(std::size_t capacity, std::size_t shards);

  ClassifyCache(const ClassifyCache&) = delete;
  ClassifyCache& operator=(const ClassifyCache&) = delete;

  std::optional<DecisionCategory> get(const ClassifyKey& key);
  void put(const ClassifyKey& key, DecisionCategory value);
  Stats stats() const;

  /// Re-budgets the cache in place: the new total is split over the existing
  /// shards and each shard's LRU tail is trimmed to the new per-shard bound.
  /// Thread-safe against concurrent get/put; capacity 0 disables the cache
  /// (and drops everything cached). StudyCatalog uses this to move quota
  /// between studies sharing one budget.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<std::pair<ClassifyKey, DecisionCategory>> lru;
    std::unordered_map<ClassifyKey, decltype(lru)::iterator, ClassifyKeyHash>
        map;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const ClassifyKey& key);
  static void trim_locked(Shard& shard, std::size_t bound);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> per_shard_capacity_{0};
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

struct OracleIndexConfig {
  std::size_t route_shards = 8;    ///< Prefix-hash shards of the route index.
  std::size_t cache_capacity = 4096;  ///< Total classify-cache entries.
  std::size_t cache_shards = 8;
};

/// Read-only query index over one snapshot. Thread-safe after construction;
/// the snapshot must outlive the index.
class OracleIndex {
 public:
  explicit OracleIndex(const OracleSnapshot* snapshot,
                       OracleIndexConfig config = {});

  /// Multi-study form: `shared_paths` (when non-null) overrides the
  /// snapshot's own path table as the arena behind paths() — the snapshot's
  /// route entries must already hold PathIds of that arena (StudyCatalog
  /// remaps them on load). The arena must outlive the index.
  OracleIndex(const OracleSnapshot* snapshot, const PathTable* shared_paths,
              OracleIndexConfig config);

  OracleIndex(const OracleIndex&) = delete;
  OracleIndex& operator=(const OracleIndex&) = delete;

  // Materialized study views (identical to the live study's products).
  const InferredTopology& topology() const { return topo_; }
  const SiblingGroups& siblings() const { return siblings_; }
  const HybridDataset& hybrid() const { return hybrid_; }
  const BgpObservations& observations() const { return observations_; }
  const DecisionClassifier& classifier() const { return *classifier_; }
  const PathTable& paths() const { return *paths_; }
  std::size_t num_ases() const { return snap_->num_ases; }

  /// Classification with DecisionClassifier semantics, memoized through the
  /// sharded LRU. Deterministic: cache state never changes the answer.
  DecisionCategory classify(const RouteDecision& d,
                            const ScenarioOptions& opts) const;

  /// The route block of a prefix; nullptr when the prefix was never
  /// announced in the snapshotted engine.
  const OracleSnapshot::PrefixRoutes* prefix_routes(
      const Ipv4Prefix& prefix) const;

  /// Selected/alternate routes of `asn` toward `prefix`; nullptr when the
  /// AS had no route.
  const OracleSnapshot::RouteEntry* route(Asn asn,
                                          const Ipv4Prefix& prefix) const;

  ClassifyCache::Stats cache_stats() const { return cache_.stats(); }
  /// Re-budgets the classify cache (see ClassifyCache::set_capacity). Safe
  /// to call concurrently with queries; answers never change, only latency.
  void set_cache_capacity(std::size_t capacity) const {
    cache_.set_capacity(capacity);
  }
  std::size_t num_route_shards() const { return route_shards_.size(); }
  std::size_t shard_entries(std::size_t shard) const {
    return route_shards_[shard].by_prefix.size();
  }

 private:
  struct RouteShard {
    std::unordered_map<Ipv4Prefix, const OracleSnapshot::PrefixRoutes*,
                       Ipv4PrefixHash>
        by_prefix;
  };

  const OracleSnapshot* snap_;
  const PathTable* paths_;
  InferredTopology topo_;
  SiblingGroups siblings_;
  HybridDataset hybrid_;
  BgpObservations observations_;
  std::unique_ptr<DecisionClassifier> classifier_;
  std::vector<RouteShard> route_shards_;
  mutable ClassifyCache cache_;
};

}  // namespace irp
