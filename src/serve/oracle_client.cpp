#include "serve/oracle_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace irp {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void transport_fail(WireTransportError::Kind kind,
                                 const std::string& detail) {
  throw WireTransportError(kind, "oracle client: " + detail);
}

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  IRP_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  IRP_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// True when the error frame is worth a backoff-and-retry: the condition is
/// expected to clear (queue drains, another replica comes up).
bool retryable(WireErrorCode code) {
  return code == WireErrorCode::kOverloaded ||
         code == WireErrorCode::kShuttingDown;
}

}  // namespace

OracleClient::OracleClient(Config config) : config_(std::move(config)) {
  IRP_CHECK(config_.port != 0, "oracle client requires a port");
  IRP_CHECK(config_.max_retries >= 0, "max_retries must be >= 0");
}

OracleClient::~OracleClient() { disconnect(); }

void OracleClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_buf_.clear();
}

void OracleClient::ensure_connected() {
  if (fd_ >= 0) return;

  // Resolve (numeric addresses and names alike), then non-blocking connect
  // with a poll()-enforced deadline — a plain connect() would block for the
  // kernel's timeout, not ours.
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(config_.host.c_str(),
                               std::to_string(config_.port).c_str(), &hints,
                               &res);
  if (rc != 0 || res == nullptr)
    transport_fail(WireTransportError::Kind::kConnect,
                   "cannot resolve " + config_.host + ": " +
                       ::gai_strerror(rc));

  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    transport_fail(WireTransportError::Kind::kConnect, "socket() failed");
  }
  set_nonblocking(fd);
  const int connect_rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (connect_rc != 0 && errno != EINPROGRESS) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    transport_fail(WireTransportError::Kind::kConnect,
                   "connect to " + config_.host + ":" +
                       std::to_string(config_.port) + " failed — " + err);
  }
  if (connect_rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(config_.connect_timeout.count()));
    int so_error = 0;
    socklen_t len = sizeof so_error;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (ready <= 0 || so_error != 0) {
      ::close(fd);
      transport_fail(WireTransportError::Kind::kConnect,
                     "connect to " + config_.host + ":" +
                         std::to_string(config_.port) +
                         (ready <= 0 ? " timed out"
                                     : std::string(" failed — ") +
                                           std::strerror(so_error)));
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  in_buf_.clear();
}

void OracleClient::send_all(const std::string& bytes,
                            Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;  // Interrupted, nothing moved; retry.
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      transport_fail(WireTransportError::Kind::kIo,
                     std::string("send failed — ") + std::strerror(errno));
    const int timeout = remaining_ms(deadline);
    if (timeout == 0)
      transport_fail(WireTransportError::Kind::kTimeout,
                     "request not sent within the timeout");
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0 && errno != EINTR)
      transport_fail(WireTransportError::Kind::kIo, "poll failed");
  }
}

WireFrame OracleClient::read_frame(Clock::time_point deadline) {
  for (;;) {
    if (auto frame = try_decode_frame(in_buf_, config_.max_frame_payload))
      return std::move(*frame);
    const int timeout = remaining_ms(deadline);
    if (timeout == 0)
      transport_fail(WireTransportError::Kind::kTimeout,
                     "no reply within " +
                         std::to_string(config_.read_timeout.count()) + "ms");
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0) {
      // Same rule the server's poll loop applies: a signal landing between
      // frames is not an I/O failure — re-check the deadline and wait again.
      if (errno == EINTR) continue;
      transport_fail(WireTransportError::Kind::kIo, "poll failed");
    }
    if (ready == 0) continue;  // Deadline re-checked above.
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0)
      in_buf_.append(buf, static_cast<std::size_t>(n));
    else if (n == 0)
      transport_fail(WireTransportError::Kind::kClosed,
                     "server closed the connection before replying");
    else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      transport_fail(WireTransportError::Kind::kIo,
                     std::string("recv failed — ") + std::strerror(errno));
  }
}

OracleResponse OracleClient::attempt(const OracleRequest& request) {
  ensure_connected();
  const std::uint64_t id = next_request_id_++;
  const Clock::time_point deadline = Clock::now() + config_.read_timeout;
  send_all(encode_request(id, request, config_.study), deadline);
  for (;;) {
    const WireFrame frame = read_frame(deadline);
    if (frame.request_id != id) continue;  // Stale reply from a prior retry.
    auto reply = decode_reply(frame);
    if (auto* err = std::get_if<WireError>(&reply))
      throw OracleServerError(err->code,
                              "oracle server: " +
                                  std::string(wire_error_code_name(
                                      err->code)) +
                                  " — " + err->message);
    return std::move(std::get<OracleResponse>(reply));
  }
}

OracleResponse OracleClient::call(const OracleRequest& request) {
  std::chrono::milliseconds backoff = config_.retry_backoff;
  for (int tried = 0;; ++tried) {
    try {
      return attempt(request);
    } catch (const WireTransportError&) {
      // Transient transport failure: reconnect and retry. Safe because
      // oracle queries are pure reads — a duplicate execution is invisible.
      disconnect();
      if (tried >= config_.max_retries) throw;
    } catch (const OracleServerError& e) {
      // The connection is healthy; only backoff-worthy codes are retried.
      if (!retryable(e.code()) || tried >= config_.max_retries) throw;
    } catch (const WireDecodeError&) {
      // The server speaks garbage; resending cannot help.
      disconnect();
      throw;
    }
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
}

}  // namespace irp
