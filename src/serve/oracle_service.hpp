// RouteOracle service front: typed queries, a bounded worker pool, and
// admission control.
//
// Four query classes cover what the paper answers one offline pass at a
// time: ClassifyDecision (the §4 GR-validity ladder), AlternateRoutes (the
// §3.2/§4.4 per-AS route diversity), PspVisibility (the §4.3 criteria
// inputs) and RelationshipLookup (inference/sibling output). submit() runs
// admission control against a bounded MPMC queue: when the queue is full the
// request is rejected immediately with accepted == false — the service
// prefers shedding load over unbounded growth or stalls. Accepted requests
// are always answered, including during shutdown (workers drain the queue
// before exiting).
//
// Two execution modes:
//   * worker_threads >= 1 — background workers pop the queue and fulfil the
//     response futures; clients pipeline as deep as the queue allows.
//   * worker_threads == 0 — deterministic single-thread mode: nothing runs
//     until the owner calls drain(), which serves queued requests in FIFO
//     order on the calling thread. test_oracle_determinism proves the two
//     modes produce byte-identical answers for the same query stream.
//
// Every answer is a pure function of the (immutable) index, so responses
// are deterministic regardless of worker count, interleaving, or cache
// state; timing-dependent values live only in OracleStatsView.
//
// Remote access: serve/oracle_server.hpp exposes this service over TCP via
// the OracleWire protocol (serve/wire.hpp, spec in docs/PROTOCOL.md) with
// the same admission-control semantics — a shed request becomes an explicit
// overload error frame, and remote answers are byte-identical to local ones.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "serve/oracle_index.hpp"
#include "serve/study_catalog.hpp"

namespace irp {

// -- Requests.

/// "Is this routing decision GR-valid under this scenario?" (§4.1-§4.3).
struct ClassifyRequest {
  RouteDecision decision;
  ScenarioOptions scenario;
};

/// "Which routes does AS `asn` hold toward `prefix`?" (§3.2/§4.4).
struct AlternateRoutesRequest {
  Asn asn = 0;
  Ipv4Prefix prefix;
};

/// "Was `origin` seen announcing `prefix` to `neighbor`?" (§4.3).
struct PspVisibilityRequest {
  Asn origin = 0;
  Asn neighbor = 0;
  Ipv4Prefix prefix;
};

/// "What does the aggregated inference say about this AS pair?"
struct RelationshipLookupRequest {
  Asn a = 0;
  Asn b = 0;
};

using OracleRequest = std::variant<ClassifyRequest, AlternateRoutesRequest,
                                   PspVisibilityRequest,
                                   RelationshipLookupRequest>;

// -- Responses (same alternative order as the requests).

struct ClassifyResponse {
  DecisionCategory category = DecisionCategory::kBestShort;
  bool best = false;
  bool is_short = false;
};

struct AlternateRoutesResponse {
  struct Alternate {
    AsPath path;
    Asn from_asn = 0;
  };
  bool has_route = false;
  bool self_originated = false;
  Asn next_hop = 0;
  AsPath selected;
  std::vector<Alternate> alternates;
};

struct PspVisibilityResponse {
  bool announced = false;      ///< origin -> neighbor seen for the prefix.
  bool announced_any = false;  ///< origin -> neighbor seen for any prefix.
  std::vector<Asn> neighbors;  ///< All neighbors seen for (origin, prefix).
};

struct RelationshipLookupResponse {
  bool has_link = false;
  std::optional<Relationship> rel;  ///< Of b from a's perspective.
  bool same_sibling_group = false;
};

using OracleResponse = std::variant<ClassifyResponse, AlternateRoutesResponse,
                                    PspVisibilityResponse,
                                    RelationshipLookupResponse>;

/// Query classes, aligned with the variant alternative indexes.
enum class QueryType : std::uint8_t {
  kClassify = 0,
  kAlternateRoutes = 1,
  kPspVisibility = 2,
  kRelationshipLookup = 3,
};
inline constexpr int kNumQueryTypes = 4;

QueryType query_type(const OracleRequest& request);
std::string_view query_type_name(QueryType type);

/// Deterministic one-line rendering of a response (CLI output; also the
/// byte-comparison form of the determinism tests).
std::string to_text(const OracleResponse& response);

/// Lock-free power-of-two-bucketed latency histogram (nanosecond input).
class LatencyHistogram {
 public:
  void record(std::uint64_t nanos);
  std::uint64_t count() const;
  /// Approximate quantile in microseconds (upper bound of the bucket that
  /// crosses `q`); 0 when empty.
  double quantile_us(double q) const;

 private:
  static constexpr int kBuckets = 48;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Copyable stats snapshot; see OracleService::stats().
struct OracleStatsView {
  struct PerType {
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    double p50_us = 0;
    double p99_us = 0;
  };
  struct PerStudy {
    std::string name;
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    double p50_us = 0;
    double p99_us = 0;
    ClassifyCache::Stats cache;
  };
  std::array<PerType, kNumQueryTypes> per_type{};
  /// One entry per hosted study (single-index services report one unnamed
  /// entry); ordered by load order, [0] is the default study.
  std::vector<PerStudy> per_study;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  /// Submissions naming a study the service does not host.
  std::uint64_t unknown_study = 0;
  std::size_t peak_queue_depth = 0;
  /// Aggregated over every study (capacity = the shared budget).
  ClassifyCache::Stats cache;
};

/// Concurrent query server over one OracleIndex or a multi-study
/// StudyCatalog (one shared admission queue and worker pool either way;
/// requests carry an optional study id routed at submit time).
class OracleService {
 public:
  struct Config {
    /// Background workers; 0 selects the deterministic manual-drain mode.
    int worker_threads = 1;
    /// Admission-control bound: submit() rejects once this many requests
    /// are queued (in-flight requests do not count).
    std::size_t queue_capacity = 1024;
    /// Catalog mode only: every this-many served requests the shared
    /// classify-cache budget is rebalanced by per-study hit rates
    /// (StudyCatalog::rebalance_cache). 0 disables periodic rebalancing.
    std::uint64_t cache_rebalance_every = 0;
  };

  OracleService(const OracleIndex* index, Config config);
  explicit OracleService(const OracleIndex* index);
  /// Serves every study in `catalog` (which must be fully loaded and must
  /// outlive the service); "" routes to the catalog's default study.
  OracleService(const StudyCatalog* catalog, Config config);
  ~OracleService();

  OracleService(const OracleService&) = delete;
  OracleService& operator=(const OracleService&) = delete;

  /// Why a submission was not accepted.
  enum class Reject : std::uint8_t {
    kNone = 0,       ///< Accepted.
    kOverloaded,     ///< Queue full or shutting down; retryable.
    kUnknownStudy,   ///< Study id matches nothing hosted; not retryable.
  };

  /// Admission result: `accepted == false` means the request was shed
  /// (`reject` says why); the future is only valid when accepted.
  struct Submitted {
    bool accepted = false;
    std::future<OracleResponse> response;
    Reject reject = Reject::kNone;
  };

  /// Enqueues a query against the default study; never blocks.
  Submitted submit(OracleRequest request);

  /// Enqueues a query against study `study` ("" = default); never blocks.
  /// An id the service does not host rejects with Reject::kUnknownStudy.
  Submitted submit(OracleRequest request, std::string_view study);

  /// Evaluates a query synchronously on the calling thread (bypasses the
  /// queue; same deterministic answer the workers would produce).
  OracleResponse answer(const OracleRequest& request) const;

  /// Synchronous evaluation against study `study` ("" = default); throws
  /// UnknownStudyError for ids the service does not host.
  OracleResponse answer(const OracleRequest& request,
                        std::string_view study) const;

  /// Serves up to `max_requests` queued requests on the calling thread, in
  /// FIFO order; returns how many were served. The deterministic mode's
  /// engine (with workers running it is a no-op most of the time, since
  /// workers drain the queue first).
  std::size_t drain(
      std::size_t max_requests = std::numeric_limits<std::size_t>::max());

  /// Stops accepting new work, serves everything already accepted, joins
  /// the workers. Idempotent; the destructor calls it.
  void shutdown();

  OracleStatsView stats() const;
  int worker_threads() const { return config_.worker_threads; }

 private:
  struct Pending {
    OracleRequest request;
    /// Resolved at submit time, so workers never re-run study lookup.
    const OracleIndex* index = nullptr;
    std::uint32_t study_ordinal = 0;
    std::promise<OracleResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  struct TypeCounters {
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> rejected{0};
    LatencyHistogram latency;
  };

  /// Resolves a study id to its index; nullptr = unknown. `ordinal` gets
  /// the per-study counter slot on success.
  const OracleIndex* resolve(std::string_view study,
                             std::uint32_t* ordinal) const;
  void serve_one(Pending& pending);
  void worker_main();

  const OracleIndex* index_;           ///< Default study's index.
  const StudyCatalog* catalog_;        ///< nullptr in single-index mode.
  Config config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  std::size_t peak_queue_depth_ = 0;
  std::vector<std::thread> workers_;

  mutable std::array<TypeCounters, kNumQueryTypes> counters_;
  /// One slot per study (slot 0 in single-index mode); heap-allocated
  /// because the atomics are not movable.
  std::vector<std::unique_ptr<TypeCounters>> study_counters_;
  mutable std::atomic<std::uint64_t> unknown_study_{0};
  std::atomic<std::uint64_t> served_total_{0};
};

}  // namespace irp
