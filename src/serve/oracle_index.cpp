#include "serve/oracle_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

ClassifyKey make_classify_key(const RouteDecision& d,
                              const ScenarioOptions& opts) {
  ClassifyKey key;
  key.decider = d.decider;
  key.next_hop = d.next_hop;
  key.dest = d.dest_asn;
  key.prefix = d.dst_prefix;
  key.remaining_len = static_cast<std::uint32_t>(d.remaining_len);
  key.has_city = d.interconnect_city.has_value();
  key.city = key.has_city ? *d.interconnect_city : 0;
  key.scenario = static_cast<std::uint8_t>((opts.use_hybrid ? 1 : 0) |
                                           (opts.use_siblings ? 2 : 0) |
                                           (static_cast<int>(opts.psp) << 2));
  return key;
}

std::size_t ClassifyKeyHash::operator()(const ClassifyKey& k) const {
  std::uint64_t h = Ipv4PrefixHash{}(k.prefix);
  h = mix64(h ^ ((std::uint64_t{k.decider} << 32) | k.next_hop));
  h = mix64(h ^ ((std::uint64_t{k.dest} << 32) | k.remaining_len));
  h = mix64(h ^ ((std::uint64_t{k.city} << 8) |
                 (std::uint64_t{k.scenario} << 1) | (k.has_city ? 1 : 0)));
  return static_cast<std::size_t>(h);
}

ClassifyCache::ClassifyCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  if (shards == 0) shards = 1;
  if (capacity > 0 && shards > capacity) shards = capacity;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  per_shard_capacity_ = capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / shards);
}

void ClassifyCache::trim_locked(Shard& shard, std::size_t bound) {
  while (shard.lru.size() > bound) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ClassifyCache::set_capacity(std::size_t capacity) {
  const std::size_t shards = shards_.size();
  const std::size_t per_shard =
      capacity == 0 ? 0 : std::max<std::size_t>(1, capacity / shards);
  capacity_.store(capacity, std::memory_order_relaxed);
  per_shard_capacity_.store(per_shard, std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    trim_locked(*shard, per_shard);
  }
}

ClassifyCache::Shard& ClassifyCache::shard_for(const ClassifyKey& key) {
  return *shards_[ClassifyKeyHash{}(key) % shards_.size()];
}

std::optional<DecisionCategory> ClassifyCache::get(const ClassifyKey& key) {
  if (per_shard_capacity_.load(std::memory_order_relaxed) == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void ClassifyCache::put(const ClassifyKey& key, DecisionCategory value) {
  const std::size_t bound =
      per_shard_capacity_.load(std::memory_order_relaxed);
  if (bound == 0) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, value);
  shard.map.emplace(key, shard.lru.begin());
  trim_locked(shard, bound);
}

ClassifyCache::Stats ClassifyCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.capacity = capacity_.load(std::memory_order_relaxed);
  s.shards = shards_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->map.size();
    s.evictions += shard->evictions;
  }
  return s;
}

OracleIndex::OracleIndex(const OracleSnapshot* snapshot,
                         OracleIndexConfig config)
    : OracleIndex(snapshot, nullptr, config) {}

OracleIndex::OracleIndex(const OracleSnapshot* snapshot,
                         const PathTable* shared_paths,
                         OracleIndexConfig config)
    : snap_(snapshot),
      paths_(shared_paths),
      route_shards_(std::max<std::size_t>(1, config.route_shards)),
      cache_(config.cache_capacity, config.cache_shards) {
  IRP_CHECK(snap_ != nullptr, "oracle index requires a snapshot");
  if (paths_ == nullptr) paths_ = &snap_->paths;

  // Rebuild the study views. Insertion through the same public mutators the
  // live pipeline uses guarantees the materialized state is identical to the
  // study's own products — the classifier then behaves identically too.
  for (const OracleSnapshot::RelationshipEntry& e : snap_->relationships)
    topo_.set(e.a, e.b, static_cast<InferredRel>(e.rel));
  for (const auto& group : snap_->sibling_groups) siblings_.add_group(group);
  for (const OracleSnapshot::HybridRecord& h : snap_->hybrid_entries)
    hybrid_.add(HybridEntry{h.a, h.b, h.city, static_cast<Relationship>(h.rel)});
  for (const auto& [provider, customer] : snap_->partial_transit)
    hybrid_.add_partial_transit(provider, customer);
  for (const OracleSnapshot::ObservationBlock& block : snap_->observations)
    for (const auto& [origin, neighbor] : block.pairs)
      observations_.add(origin, neighbor, block.prefix);

  classifier_ = std::make_unique<DecisionClassifier>(
      &topo_, snap_->num_ases, &hybrid_, &siblings_, &observations_);

  for (const OracleSnapshot::PrefixRoutes& pr : snap_->routes) {
    RouteShard& shard =
        route_shards_[Ipv4PrefixHash{}(pr.prefix) % route_shards_.size()];
    const bool inserted = shard.by_prefix.emplace(pr.prefix, &pr).second;
    IRP_CHECK(inserted, "oracle snapshot has duplicate prefix route blocks");
  }
}

DecisionCategory OracleIndex::classify(const RouteDecision& d,
                                       const ScenarioOptions& opts) const {
  const ClassifyKey key = make_classify_key(d, opts);
  if (const auto cached = cache_.get(key)) return *cached;
  const DecisionCategory category = classifier_->classify(d, opts);
  cache_.put(key, category);
  return category;
}

const OracleSnapshot::PrefixRoutes* OracleIndex::prefix_routes(
    const Ipv4Prefix& prefix) const {
  const RouteShard& shard =
      route_shards_[Ipv4PrefixHash{}(prefix) % route_shards_.size()];
  auto it = shard.by_prefix.find(prefix);
  return it == shard.by_prefix.end() ? nullptr : it->second;
}

const OracleSnapshot::RouteEntry* OracleIndex::route(
    Asn asn, const Ipv4Prefix& prefix) const {
  const OracleSnapshot::PrefixRoutes* pr = prefix_routes(prefix);
  if (pr == nullptr) return nullptr;
  auto it = std::lower_bound(
      pr->entries.begin(), pr->entries.end(), asn,
      [](const OracleSnapshot::RouteEntry& e, Asn a) { return e.asn < a; });
  if (it == pr->entries.end() || it->asn != asn) return nullptr;
  return &*it;
}

}  // namespace irp
