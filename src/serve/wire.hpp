// OracleWire: the framed binary protocol that carries RouteOracle queries
// between processes and hosts.
//
// A frame is a fixed 28-byte header followed by a checksummed payload:
//
//   offset size field
//        0    4 magic         0x57505249 ("IRPW" in little-endian order)
//        4    2 version       kWireVersion (1)
//        6    1 frame_type    FrameType
//        7    1 flags         reserved; must be 0 in version 1
//        8    8 request_id    client-chosen; echoed verbatim in the reply
//       16    4 payload_size  bytes after the header; <= max payload bound
//       20    8 checksum      fnv1a64(payload)
//       28    . payload       frame_type-specific encoding (docs/PROTOCOL.md)
//
// All integers are little-endian (the ByteWriter/ByteReader idiom shared
// with the oracle snapshot). Requests and responses carry the OracleService
// variants bit-for-bit: decoding an encoded request yields a struct that
// compares equal to the original, so a remote answer is byte-identical to
// the local one (test_wire proves round-trips; test_oracle_server proves
// end-to-end equality).
//
// Error handling is typed and total:
//   * try_decode_frame() rejects garbage as early as possible — bad magic,
//     unsupported version, unknown frame type, nonzero flags and oversized
//     payload_size all throw WireDecodeError from the header alone, before
//     any payload is buffered. A correct header with a corrupt payload fails
//     the checksum. Callers must treat the stream as poisoned after any
//     decode error (resynchronization is impossible by design).
//   * kError frames carry a WireErrorCode + message instead of an answer;
//     kOverloaded is the admission-control shed surfaced to the remote
//     caller, kMalformedRequest reports a payload the server could frame-
//     decode but not request-decode.
//
// Version policy: the protocol is versioned as a whole; a receiver accepts
// the closed range [kWireVersionMin, kWireVersion] and rejects the rest
// (kBadVersion). Version 2 carves the kWireFlagStudy bit out of the
// reserved flags byte: when set, the payload is prefixed with a
// length-delimited study id that routes the request to one of several
// studies hosted behind the endpoint (serve/study_catalog.hpp). Encoders
// emit the lowest version that can carry the frame — a frame with no study
// id is bit-for-bit identical to its version-1 encoding, so old clients
// and old servers interoperate against the default study unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "serve/oracle_service.hpp"
#include "util/check.hpp"

namespace irp {

/// "IRPW" in little-endian byte order.
inline constexpr std::uint32_t kWireMagic = 0x57505249u;
/// Highest protocol version this build speaks (and the version emitted for
/// frames that need version-2 features).
inline constexpr std::uint16_t kWireVersion = 2;
/// Lowest protocol version still accepted; version-1 frames are the
/// pre-multi-study encoding and always address the default study.
inline constexpr std::uint16_t kWireVersionMin = 1;
/// Version-2 flag bit: the payload starts with a length-delimited study id
/// (u32 length + bytes) addressing one study of a multi-study server. All
/// other flag bits remain reserved and must be 0.
inline constexpr std::uint8_t kWireFlagStudy = 0x01;
inline constexpr std::size_t kWireHeaderBytes = 28;
/// Default upper bound on payload_size; frames claiming more are rejected
/// from the header alone (kOversized), so a hostile peer cannot make the
/// receiver buffer unbounded data.
inline constexpr std::size_t kMaxWirePayload = 1u << 20;

/// Frame discriminator. Requests occupy 0x00-0x0f in QueryType order;
/// the matching response is `request | 0x10`; 0x20 is the error frame.
enum class FrameType : std::uint8_t {
  kClassifyRequest = 0x00,
  kAlternateRoutesRequest = 0x01,
  kPspVisibilityRequest = 0x02,
  kRelationshipLookupRequest = 0x03,
  kClassifyResponse = 0x10,
  kAlternateRoutesResponse = 0x11,
  kPspVisibilityResponse = 0x12,
  kRelationshipLookupResponse = 0x13,
  kError = 0x20,
};

bool is_request_frame(FrameType type);
bool is_response_frame(FrameType type);
/// The response FrameType answering a request of query type `type`.
FrameType response_frame_type(QueryType type);
std::string_view frame_type_name(FrameType type);

/// Application-level error codes carried by kError frames.
enum class WireErrorCode : std::uint8_t {
  kOverloaded = 1,        ///< Admission control shed the request; retryable.
  kMalformedRequest = 2,  ///< Request payload undecodable; not retryable.
  kShuttingDown = 3,      ///< Server is draining; retryable elsewhere/later.
  kInternal = 4,          ///< Evaluation threw; not retryable.
  kUnknownStudy = 5,      ///< Study id matches no hosted study; not retryable.
};
std::string_view wire_error_code_name(WireErrorCode code);

/// What exactly was wrong with undecodable bytes.
enum class WireFault : std::uint8_t {
  kBadMagic,          ///< First four bytes are not "IRPW".
  kBadVersion,        ///< Unsupported protocol version.
  kBadFlags,          ///< Reserved flags byte nonzero.
  kBadType,           ///< Unknown FrameType.
  kOversized,         ///< payload_size exceeds the receiver's bound.
  kChecksumMismatch,  ///< Payload bytes do not hash to the header checksum.
  kMalformedPayload,  ///< Frame sound, payload encoding invalid for its type.
};
std::string_view wire_fault_name(WireFault fault);

/// Thrown by every wire decode path; `fault()` says which rule the bytes
/// broke. Subclasses CheckError so existing catch sites keep working.
class WireDecodeError : public CheckError {
 public:
  WireDecodeError(WireFault fault, const std::string& what)
      : CheckError(what), fault_(fault) {}
  WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

/// One parsed frame: type + request id + raw (already checksum-verified)
/// payload bytes. `study` is the multi-study routing id ("" = default
/// study); it rides in a version-2 payload prefix, never in `payload`.
struct WireFrame {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::string study;
  std::string payload;
};

/// The content of a kError frame.
struct WireError {
  WireErrorCode code = WireErrorCode::kInternal;
  std::string message;
};

// -- Frame layer.

/// Serializes header + payload (checksum computed here). An empty
/// `frame.study` produces the version-1 encoding; a nonempty one produces a
/// version-2 frame with kWireFlagStudy set and the study id prefixed to the
/// payload (the checksum and payload_size cover the prefix).
std::string encode_frame(const WireFrame& frame);

/// Incremental stream decoder: returns nullopt when `buffer` does not yet
/// hold a complete frame (read more bytes and call again); on success the
/// frame's bytes are consumed from the front of `buffer`. Throws
/// WireDecodeError the moment the buffered bytes are provably not a valid
/// frame — from the header alone where possible.
std::optional<WireFrame> try_decode_frame(
    std::string& buffer, std::size_t max_payload = kMaxWirePayload);

// -- Message layer.

/// Encodes a request frame; a nonempty `study` routes it to that study on a
/// multi-study server (version-2 frame), "" keeps the version-1 encoding.
std::string encode_request(std::uint64_t request_id,
                           const OracleRequest& request,
                           std::string_view study = {});
std::string encode_response(std::uint64_t request_id,
                            const OracleResponse& response);
std::string encode_error(std::uint64_t request_id, WireErrorCode code,
                         std::string_view message);

/// Decodes a request frame; throws WireDecodeError (kBadType for non-request
/// frames, kMalformedPayload for invalid encodings).
OracleRequest decode_request(const WireFrame& frame);

/// Decodes a server reply: either a typed response or a WireError. Throws
/// WireDecodeError on request frames and invalid encodings.
std::variant<OracleResponse, WireError> decode_reply(const WireFrame& frame);

/// Canonical `offset: hex |ascii|` rendering (16 bytes per line); the
/// wire_dump helper builds the PROTOCOL.md worked example from this.
std::string hex_dump(std::string_view bytes);

}  // namespace irp
