// Shared little-endian byte serialization for the serve layer.
//
// ByteWriter/ByteReader are the single encode/decode idiom behind both the
// oracle snapshot image (oracle_snapshot.cpp) and the OracleWire framing
// protocol (wire.cpp): append-only little-endian writing, and bounds-checked
// reading where every overrun throws CheckError before any allocation. The
// reader is constructed with a `context` string ("oracle snapshot", "wire")
// so error messages name the format that failed to parse.
//
// Little-endian hosts only, like the rest of irp: multi-byte integers are
// memcpy'd, never byte-swapped. fnv1a64 is the checksum both formats store.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"
#include "topo/types.hpp"
#include "util/check.hpp"

namespace irp {

/// FNV-1a 64-bit hash; the payload checksum of snapshot images and wire
/// frames (fast, allocation-free, good avalanche for corruption detection —
/// not cryptographic).
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Little-endian append-only buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void prefix(const Ipv4Prefix& p) {
    u32(p.network().value());
    u8(static_cast<std::uint8_t>(p.length()));
  }
  void asns(const std::vector<Asn>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (Asn a : v) u32(a);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.append(c, n);  // Little-endian hosts only, like the rest of irp.
  }
  std::string buf_;
};

/// Bounds-checked little-endian cursor; every overrun throws CheckError.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data, std::string context)
      : data_(data), context_(std::move(context)) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    std::uint16_t v;
    fixed(&v, 2);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    fixed(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    fixed(&v, 8);
    return v;
  }
  Ipv4Prefix prefix() {
    const std::uint32_t network = u32();
    const int length = u8();
    IRP_CHECK(length <= 32, context_ + ": prefix length out of range");
    return Ipv4Prefix{Ipv4Addr{network}, length};
  }
  std::vector<Asn> asns() {
    const std::uint32_t n = count(sizeof(Asn));
    std::vector<Asn> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
    return out;
  }
  std::string str() {
    const std::uint32_t n = count(1);
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }
  /// Reads an element count and verifies the remaining bytes can hold it
  /// (`min_elem_bytes` per element) before the caller allocates.
  std::uint32_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    IRP_CHECK(std::uint64_t{n} * min_elem_bytes <= remaining(),
              context_ + ": truncated payload (count exceeds bytes)");
    return n;
  }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) {
    IRP_CHECK(n <= remaining(), context_ + ": truncated payload");
  }
  void fixed(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  std::string_view data_;
  std::string context_;
  std::size_t pos_ = 0;
};

}  // namespace irp
