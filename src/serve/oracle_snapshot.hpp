// RouteOracle snapshot: a completed study frozen into one binary image.
//
// Everything the query layer needs to answer routing-decision questions
// offline — the §3.3-aggregated relationships, sibling clusters, the
// Giotsas-style complex-relationships dataset, per-prefix BGP observations
// (§4.3), the interned AS-path table, and the per-(AS, prefix) selected and
// alternate routes of the measurement-epoch engine — is flattened into plain
// arrays. Loading is O(bytes): no convergence, no inference, no traceroutes;
// a loaded snapshot answers every query class identically to the live study
// it was taken from (test_oracle_snapshot proves this).
//
// Wire format (little-endian):
//   magic u32 | version u32 | payload_size u64 | fnv1a64(payload) u64 | payload
// The loader rejects wrong magic/version, truncated images (size mismatch)
// and corrupted payloads (checksum mismatch) with CheckError — never UB.
// Inside the payload every count is bounds-checked against the remaining
// bytes before any allocation, and the path table re-validates its tree
// invariants on rebuild (PathTable::from_flat).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bgp/path_table.hpp"
#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "topo/types.hpp"

namespace irp {

struct PassiveDataset;

/// "IRPO" in little-endian byte order.
inline constexpr std::uint32_t kOracleSnapshotMagic = 0x4F505249u;
inline constexpr std::uint32_t kOracleSnapshotVersion = 1;

/// The frozen study image. Plain data; build with snapshot_study(), persist
/// with save()/load() or to_bytes()/from_bytes().
struct OracleSnapshot {
  /// One aggregated relationship label; a < b (InferredRel orientation).
  struct RelationshipEntry {
    Asn a = 0;
    Asn b = 0;
    std::uint8_t rel = 0;  ///< InferredRel under the hood.
  };

  /// One city-scoped complex-relationship record (HybridEntry image).
  struct HybridRecord {
    Asn a = 0;
    Asn b = 0;
    CityId city = 0;
    std::uint8_t rel = 0;  ///< Relationship of b from a.
  };

  /// (origin, neighbor) pairs seen announcing one prefix, ascending.
  struct ObservationBlock {
    Ipv4Prefix prefix;
    std::vector<std::pair<Asn, Asn>> pairs;
  };

  /// A non-selected Adj-RIB-In route of one AS for one prefix.
  struct AlternateRoute {
    PathId path = kEmptyPathId;  ///< Into `paths`.
    Asn from_asn = 0;
  };

  /// Selected route + alternates of one AS for one prefix.
  struct RouteEntry {
    Asn asn = 0;
    PathId selected = kEmptyPathId;  ///< Into `paths`; excludes `asn` itself.
    Asn next_hop = 0;                ///< 0 when self-originated.
    bool self_originated = false;
    std::vector<AlternateRoute> alternates;  ///< Adjacency-list order.
  };

  /// All per-AS routes toward one announced prefix; entries ascending by ASN
  /// (binary-searchable), ASes without a route omitted.
  struct PrefixRoutes {
    Ipv4Prefix prefix;
    Asn origin = 0;
    std::vector<RouteEntry> entries;
  };

  std::uint32_t num_ases = 0;  ///< Dense ASN bound (ASNs are 1..num_ases).
  std::vector<RelationshipEntry> relationships;
  std::vector<std::vector<Asn>> sibling_groups;
  std::vector<HybridRecord> hybrid_entries;
  std::vector<std::pair<Asn, Asn>> partial_transit;
  std::vector<ObservationBlock> observations;
  PathTable paths;
  std::vector<PrefixRoutes> routes;

  /// Total route entries across all prefixes (reporting).
  std::size_t num_route_entries() const;

  /// Serializes the full image (header + checksummed payload). The bytes are
  /// deterministic: two snapshots of the same study are identical.
  std::string to_bytes() const;

  /// Parses an image; throws CheckError on wrong magic/version, truncation,
  /// checksum mismatch, or structurally malformed payloads.
  static OracleSnapshot from_bytes(std::string_view bytes);

  void save(const std::string& path) const;
  static OracleSnapshot load(const std::string& path);
};

/// Freezes a completed passive study (aggregated inference products plus the
/// live measurement-epoch engine) into a snapshot. Requires ds.engine.
OracleSnapshot snapshot_study(const PassiveDataset& ds);

}  // namespace irp
