#include "serve/wire.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "serve/byte_io.hpp"

namespace irp {
namespace {

constexpr std::string_view kContext = "wire";

[[noreturn]] void fail(WireFault fault, const std::string& detail) {
  throw WireDecodeError(
      fault, "wire: " + std::string(wire_fault_name(fault)) + " — " + detail);
}

bool valid_frame_type(std::uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kClassifyRequest:
    case FrameType::kAlternateRoutesRequest:
    case FrameType::kPspVisibilityRequest:
    case FrameType::kRelationshipLookupRequest:
    case FrameType::kClassifyResponse:
    case FrameType::kAlternateRoutesResponse:
    case FrameType::kPspVisibilityResponse:
    case FrameType::kRelationshipLookupResponse:
    case FrameType::kError:
      return true;
  }
  return false;
}

// -- Payload encoders. Field order is normative; docs/PROTOCOL.md mirrors
// these byte for byte.

std::uint8_t pack_scenario(const ScenarioOptions& opts) {
  return static_cast<std::uint8_t>((opts.use_hybrid ? 1 : 0) |
                                   (opts.use_siblings ? 2 : 0) |
                                   (static_cast<int>(opts.psp) << 2));
}

ScenarioOptions unpack_scenario(std::uint8_t bits) {
  IRP_CHECK((bits & ~0x0fu) == 0, "wire: reserved scenario bits set");
  const int psp = bits >> 2;
  IRP_CHECK(psp <= 2, "wire: PSP mode out of range");
  ScenarioOptions opts;
  opts.use_hybrid = (bits & 1) != 0;
  opts.use_siblings = (bits & 2) != 0;
  opts.psp = static_cast<PspMode>(psp);
  return opts;
}

void put_path(ByteWriter& w, const AsPath& path) {
  w.asns(path.hops);
  w.asns(path.poison_set);
}

AsPath get_path(ByteReader& r) {
  AsPath path;
  path.hops = r.asns();
  path.poison_set = r.asns();
  return path;
}

std::uint8_t get_bool(ByteReader& r) {
  const std::uint8_t v = r.u8();
  IRP_CHECK(v <= 1, "wire: boolean field not 0 or 1");
  return v;
}

struct RequestEncoder {
  ByteWriter& w;

  void operator()(const ClassifyRequest& req) {
    const RouteDecision& d = req.decision;
    w.u32(d.decider);
    w.u32(d.next_hop);
    w.u32(d.dest_asn);
    w.u32(d.src_asn);
    w.u32(d.origin_asn);
    w.u32(static_cast<std::uint32_t>(d.remaining_len));
    w.prefix(d.dst_prefix);
    w.u8(d.interconnect_city.has_value() ? 1 : 0);
    w.u32(d.interconnect_city.value_or(0));
    w.u64(d.traceroute_index);
    w.asns(d.measured_remaining);
    w.u8(pack_scenario(req.scenario));
  }
  void operator()(const AlternateRoutesRequest& req) {
    w.u32(req.asn);
    w.prefix(req.prefix);
  }
  void operator()(const PspVisibilityRequest& req) {
    w.u32(req.origin);
    w.u32(req.neighbor);
    w.prefix(req.prefix);
  }
  void operator()(const RelationshipLookupRequest& req) {
    w.u32(req.a);
    w.u32(req.b);
  }
};

struct ResponseEncoder {
  ByteWriter& w;

  void operator()(const ClassifyResponse& r) {
    w.u8(static_cast<std::uint8_t>(r.category));
    w.u8(r.best ? 1 : 0);
    w.u8(r.is_short ? 1 : 0);
  }
  void operator()(const AlternateRoutesResponse& r) {
    w.u8(r.has_route ? 1 : 0);
    w.u8(r.self_originated ? 1 : 0);
    w.u32(r.next_hop);
    put_path(w, r.selected);
    w.u32(static_cast<std::uint32_t>(r.alternates.size()));
    for (const AlternateRoutesResponse::Alternate& alt : r.alternates) {
      w.u32(alt.from_asn);
      put_path(w, alt.path);
    }
  }
  void operator()(const PspVisibilityResponse& r) {
    w.u8(r.announced ? 1 : 0);
    w.u8(r.announced_any ? 1 : 0);
    w.asns(r.neighbors);
  }
  void operator()(const RelationshipLookupResponse& r) {
    w.u8(r.has_link ? 1 : 0);
    w.u8(r.rel.has_value() ? 1 : 0);
    w.u8(r.rel ? static_cast<std::uint8_t>(*r.rel) : 0);
    w.u8(r.same_sibling_group ? 1 : 0);
  }
};

OracleRequest decode_request_payload(FrameType type, ByteReader& r) {
  switch (type) {
    case FrameType::kClassifyRequest: {
      ClassifyRequest req;
      RouteDecision& d = req.decision;
      d.decider = r.u32();
      d.next_hop = r.u32();
      d.dest_asn = r.u32();
      d.src_asn = r.u32();
      d.origin_asn = r.u32();
      d.remaining_len = r.u32();
      d.dst_prefix = r.prefix();
      const bool has_city = get_bool(r) != 0;
      const CityId city = r.u32();
      if (has_city)
        d.interconnect_city = city;
      else
        IRP_CHECK(city == 0, "wire: city set without has_city");
      d.traceroute_index = r.u64();
      d.measured_remaining = r.asns();
      req.scenario = unpack_scenario(r.u8());
      return req;
    }
    case FrameType::kAlternateRoutesRequest: {
      AlternateRoutesRequest req;
      req.asn = r.u32();
      req.prefix = r.prefix();
      return req;
    }
    case FrameType::kPspVisibilityRequest: {
      PspVisibilityRequest req;
      req.origin = r.u32();
      req.neighbor = r.u32();
      req.prefix = r.prefix();
      return req;
    }
    case FrameType::kRelationshipLookupRequest: {
      RelationshipLookupRequest req;
      req.a = r.u32();
      req.b = r.u32();
      return req;
    }
    default:
      IRP_UNREACHABLE("non-request frame type");
  }
}

OracleResponse decode_response_payload(FrameType type, ByteReader& r) {
  switch (type) {
    case FrameType::kClassifyResponse: {
      ClassifyResponse resp;
      const std::uint8_t category = r.u8();
      IRP_CHECK(category <= 3, "wire: decision category out of range");
      resp.category = static_cast<DecisionCategory>(category);
      resp.best = get_bool(r) != 0;
      resp.is_short = get_bool(r) != 0;
      return resp;
    }
    case FrameType::kAlternateRoutesResponse: {
      AlternateRoutesResponse resp;
      resp.has_route = get_bool(r) != 0;
      resp.self_originated = get_bool(r) != 0;
      resp.next_hop = r.u32();
      resp.selected = get_path(r);
      const std::uint32_t num_alt = r.count(12);
      resp.alternates.reserve(num_alt);
      for (std::uint32_t i = 0; i < num_alt; ++i) {
        AlternateRoutesResponse::Alternate alt;
        alt.from_asn = r.u32();
        alt.path = get_path(r);
        resp.alternates.push_back(std::move(alt));
      }
      return resp;
    }
    case FrameType::kPspVisibilityResponse: {
      PspVisibilityResponse resp;
      resp.announced = get_bool(r) != 0;
      resp.announced_any = get_bool(r) != 0;
      resp.neighbors = r.asns();
      return resp;
    }
    case FrameType::kRelationshipLookupResponse: {
      RelationshipLookupResponse resp;
      resp.has_link = get_bool(r) != 0;
      const bool has_rel = get_bool(r) != 0;
      const std::uint8_t rel = r.u8();
      IRP_CHECK(rel <= 3, "wire: relationship out of range");
      if (has_rel)
        resp.rel = static_cast<Relationship>(rel);
      else
        IRP_CHECK(rel == 0, "wire: relationship set without has_rel");
      resp.same_sibling_group = get_bool(r) != 0;
      return resp;
    }
    default:
      IRP_UNREACHABLE("non-response frame type");
  }
}

}  // namespace

bool is_request_frame(FrameType type) {
  return static_cast<std::uint8_t>(type) <= 0x03;
}

bool is_response_frame(FrameType type) {
  const std::uint8_t raw = static_cast<std::uint8_t>(type);
  return raw >= 0x10 && raw <= 0x13;
}

FrameType response_frame_type(QueryType type) {
  return static_cast<FrameType>(static_cast<std::uint8_t>(type) | 0x10);
}

std::string_view frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kClassifyRequest: return "classify_request";
    case FrameType::kAlternateRoutesRequest: return "alternate_routes_request";
    case FrameType::kPspVisibilityRequest: return "psp_visibility_request";
    case FrameType::kRelationshipLookupRequest: return "relationship_request";
    case FrameType::kClassifyResponse: return "classify_response";
    case FrameType::kAlternateRoutesResponse: return "alternate_routes_response";
    case FrameType::kPspVisibilityResponse: return "psp_visibility_response";
    case FrameType::kRelationshipLookupResponse: return "relationship_response";
    case FrameType::kError: return "error";
  }
  IRP_UNREACHABLE("bad frame type");
}

std::string_view wire_error_code_name(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kOverloaded: return "overloaded";
    case WireErrorCode::kMalformedRequest: return "malformed_request";
    case WireErrorCode::kShuttingDown: return "shutting_down";
    case WireErrorCode::kInternal: return "internal";
    case WireErrorCode::kUnknownStudy: return "unknown_study";
  }
  IRP_UNREACHABLE("bad wire error code");
}

std::string_view wire_fault_name(WireFault fault) {
  switch (fault) {
    case WireFault::kBadMagic: return "bad magic";
    case WireFault::kBadVersion: return "unsupported version";
    case WireFault::kBadFlags: return "reserved flags set";
    case WireFault::kBadType: return "unknown frame type";
    case WireFault::kOversized: return "oversized payload";
    case WireFault::kChecksumMismatch: return "checksum mismatch";
    case WireFault::kMalformedPayload: return "malformed payload";
  }
  IRP_UNREACHABLE("bad wire fault");
}

std::string encode_frame(const WireFrame& frame) {
  // Emit the lowest version that can carry the frame: without a study id
  // the bytes are exactly the version-1 encoding, so pre-multi-study peers
  // keep understanding everything a default-study client sends.
  std::string body;
  if (!frame.study.empty()) {
    ByteWriter prefix;
    prefix.str(frame.study);
    body = prefix.take();
  }
  body += frame.payload;

  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(frame.study.empty() ? kWireVersionMin : kWireVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u8(frame.study.empty() ? 0 : kWireFlagStudy);
  w.u64(frame.request_id);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u64(fnv1a64(body));
  std::string out = w.take();
  out += body;
  return out;
}

std::optional<WireFrame> try_decode_frame(std::string& buffer,
                                          std::size_t max_payload) {
  if (buffer.size() < kWireHeaderBytes) return std::nullopt;
  ByteReader header{std::string_view(buffer).substr(0, kWireHeaderBytes),
                    std::string(kContext)};
  const std::uint32_t magic = header.u32();
  if (magic != kWireMagic)
    fail(WireFault::kBadMagic, "stream does not start with IRPW");
  const std::uint16_t version = header.u16();
  if (version < kWireVersionMin || version > kWireVersion)
    fail(WireFault::kBadVersion,
         "got version " + std::to_string(version) + ", speak " +
             std::to_string(kWireVersionMin) + ".." +
             std::to_string(kWireVersion));
  const std::uint8_t raw_type = header.u8();
  if (!valid_frame_type(raw_type))
    fail(WireFault::kBadType,
         "frame type " + std::to_string(raw_type) + " unknown");
  const std::uint8_t flags = header.u8();
  const std::uint8_t known_flags = version >= 2 ? kWireFlagStudy : 0;
  if ((flags & ~known_flags) != 0)
    fail(WireFault::kBadFlags,
         version >= 2 ? "reserved flag bits set in version 2 frame"
                      : "flags must be 0 in version 1");
  const std::uint64_t request_id = header.u64();
  const std::uint32_t payload_size = header.u32();
  if (payload_size > max_payload)
    fail(WireFault::kOversized,
         "payload_size " + std::to_string(payload_size) + " exceeds bound " +
             std::to_string(max_payload));
  const std::uint64_t checksum = header.u64();

  if (buffer.size() < kWireHeaderBytes + payload_size) return std::nullopt;
  WireFrame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.request_id = request_id;
  frame.payload = buffer.substr(kWireHeaderBytes, payload_size);
  if (fnv1a64(frame.payload) != checksum)
    fail(WireFault::kChecksumMismatch, "payload corrupted in transit");
  buffer.erase(0, kWireHeaderBytes + payload_size);
  if ((flags & kWireFlagStudy) != 0) {
    // Peel the study-id prefix off the (checksum-verified) payload. A prefix
    // that does not parse is a framing-level fault: the peer claimed the
    // flag but did not encode the prefix, so nothing after it is trustable.
    try {
      ByteReader r{frame.payload, std::string(kContext)};
      frame.study = r.str();
      frame.payload = frame.payload.substr(frame.payload.size() -
                                           r.remaining());
    } catch (const CheckError& e) {
      fail(WireFault::kMalformedPayload,
           std::string("study-id prefix undecodable — ") + e.what());
    }
  }
  return frame;
}

std::string encode_request(std::uint64_t request_id,
                           const OracleRequest& request,
                           std::string_view study) {
  WireFrame frame;
  frame.type = static_cast<FrameType>(request.index());
  frame.request_id = request_id;
  frame.study = std::string(study);
  ByteWriter w;
  std::visit(RequestEncoder{w}, request);
  frame.payload = w.take();
  return encode_frame(frame);
}

std::string encode_response(std::uint64_t request_id,
                            const OracleResponse& response) {
  WireFrame frame;
  frame.type = static_cast<FrameType>(response.index() | 0x10);
  frame.request_id = request_id;
  ByteWriter w;
  std::visit(ResponseEncoder{w}, response);
  frame.payload = w.take();
  return encode_frame(frame);
}

std::string encode_error(std::uint64_t request_id, WireErrorCode code,
                         std::string_view message) {
  WireFrame frame;
  frame.type = FrameType::kError;
  frame.request_id = request_id;
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(code));
  w.str(message);
  frame.payload = w.take();
  return encode_frame(frame);
}

OracleRequest decode_request(const WireFrame& frame) {
  if (!is_request_frame(frame.type))
    fail(WireFault::kBadType,
         std::string(frame_type_name(frame.type)) + " is not a request");
  ByteReader r{frame.payload, std::string(kContext)};
  try {
    OracleRequest request = decode_request_payload(frame.type, r);
    IRP_CHECK(r.remaining() == 0, "wire: trailing bytes in request payload");
    return request;
  } catch (const WireDecodeError&) {
    throw;
  } catch (const CheckError& e) {
    fail(WireFault::kMalformedPayload, e.what());
  }
}

std::variant<OracleResponse, WireError> decode_reply(const WireFrame& frame) {
  if (!is_response_frame(frame.type) && frame.type != FrameType::kError)
    fail(WireFault::kBadType,
         std::string(frame_type_name(frame.type)) + " is not a reply");
  ByteReader r{frame.payload, std::string(kContext)};
  try {
    if (frame.type == FrameType::kError) {
      WireError err;
      const std::uint8_t code = r.u8();
      IRP_CHECK(code >= 1 && code <= 5, "wire: error code out of range");
      err.code = static_cast<WireErrorCode>(code);
      err.message = r.str();
      IRP_CHECK(r.remaining() == 0, "wire: trailing bytes in error payload");
      return err;
    }
    OracleResponse response = decode_response_payload(frame.type, r);
    IRP_CHECK(r.remaining() == 0, "wire: trailing bytes in response payload");
    return response;
  } catch (const WireDecodeError&) {
    throw;
  } catch (const CheckError& e) {
    fail(WireFault::kMalformedPayload, e.what());
  }
}

std::string hex_dump(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::ostringstream out;
  for (std::size_t line = 0; line < bytes.size(); line += 16) {
    const std::size_t n = std::min<std::size_t>(16, bytes.size() - line);
    char offset[24];
    std::snprintf(offset, sizeof offset, "%04zx", line);
    out << offset << "  ";
    for (std::size_t i = 0; i < 16; ++i) {
      if (i < n) {
        const unsigned char c = static_cast<unsigned char>(bytes[line + i]);
        out << kHex[c >> 4] << kHex[c & 0xf] << ' ';
      } else {
        out << "   ";
      }
      if (i == 7) out << ' ';
    }
    out << " |";
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char c = static_cast<unsigned char>(bytes[line + i]);
      out << (c >= 0x20 && c < 0x7f ? static_cast<char>(c) : '.');
    }
    out << "|\n";
  }
  return out.str();
}

}  // namespace irp
