// StudyCatalog: many frozen studies behind one serving endpoint.
//
// The paper's passive study is re-run across seeds, scenarios, and snapshot
// epochs (§3.1, §4); comparing those runs used to mean one RouteOracle
// process per snapshot. A catalog loads N OracleSnapshot images, tags each
// with a study id, and exposes one OracleIndex per study so a single
// OracleService (and a single TCP endpoint) can answer queries against any
// of them. Two resources are deliberately shared across studies:
//
//   * One path-table arena. Snapshot epochs of the same topology intern
//     nearly identical AS-path trees; on load every study's paths are
//     re-interned into one global PathTable (an O(nodes) walk of the flat
//     image — tails precede their nodes, so a single forward pass remaps
//     every PathId) and the study's route entries are rewritten to arena
//     ids. Duplicate suffixes across studies collapse to one node.
//   * One classify-cache budget. Each study's sharded LRU keeps its own
//     lock structure (no cross-study contention), but the total entry
//     budget is a catalog-level constant: quotas start as an even split and
//     rebalance_cache() re-weights them by observed per-study hit rates, so
//     a hot epoch absorbs budget from cold ones without any study dropping
//     below a configured floor.
//
// Identity: a study id is "<name>@<fnv1a64 of the snapshot image>" — the
// operator-supplied name makes it addressable, the content checksum makes
// it unambiguous across re-converged epochs with the same name. Lookup
// accepts the bare name, the full id, or "" for the default (first-loaded)
// study; anything else is answered with UnknownStudyError / the wire's
// kUnknownStudy.
//
// Thread safety: the catalog is immutable after the last add_study() call;
// queries and rebalance_cache() may then run concurrently from any thread
// (the only mutable state is inside each study's ClassifyCache, which
// locks per shard).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/oracle_index.hpp"
#include "util/check.hpp"

namespace irp {

/// Typed "no such study" error: thrown by OracleService::answer and carried
/// on the wire as WireErrorCode::kUnknownStudy.
class UnknownStudyError : public CheckError {
 public:
  explicit UnknownStudyError(std::string_view study)
      : CheckError("unknown study '" + std::string(study) + "'"),
        study_(study) {}
  const std::string& study() const { return study_; }

 private:
  std::string study_;
};

struct StudyCatalogConfig {
  /// Total classify-cache entries shared by every study in the catalog
  /// (the per-study OracleIndexConfig::cache_capacity is derived from this,
  /// never set directly). 0 disables caching for all studies.
  std::size_t total_cache_capacity = 8192;
  /// No study's quota falls below this floor during rebalancing (clamped to
  /// an even split when total/N is smaller).
  std::size_t min_study_cache_quota = 64;
  std::size_t cache_shards = 8;
  std::size_t route_shards = 8;
};

/// Immutable-after-load collection of studies sharing one path arena and one
/// classify-cache budget.
class StudyCatalog {
 public:
  struct Study {
    std::string name;  ///< Operator-supplied; unique within the catalog.
    std::string id;    ///< "<name>@<16-hex content checksum>".
    std::uint32_t ordinal = 0;  ///< Load order; 0 is the default study.
    OracleSnapshot snapshot;    ///< Route PathIds remapped to the arena.
    std::unique_ptr<OracleIndex> index;
    std::size_t image_bytes = 0;  ///< Serialized snapshot size.
    std::size_t own_paths = 0;    ///< Path nodes before arena sharing.
  };

  explicit StudyCatalog(StudyCatalogConfig config = {});

  StudyCatalog(const StudyCatalog&) = delete;
  StudyCatalog& operator=(const StudyCatalog&) = delete;

  /// Registers `snapshot` under `name` (nonempty, no '=' or '@', unique);
  /// the first study added becomes the default. Re-interns the snapshot's
  /// paths into the shared arena and resets every study's cache quota to an
  /// even split of the budget. Returns the new study.
  const Study& add_study(std::string name, OracleSnapshot snapshot);

  /// load()s `path` and add_study()s it; the content checksum is computed
  /// from the file bytes.
  const Study& add_study_file(std::string name, const std::string& path);

  /// Resolves "" to the default study, otherwise matches a study name or
  /// full id; nullptr when nothing matches.
  const Study* find(std::string_view name_or_id) const;
  const Study* default_study() const;

  std::size_t size() const { return studies_.size(); }
  const std::vector<std::unique_ptr<Study>>& studies() const {
    return studies_;
  }

  /// The shared arena behind every study's OracleIndex::paths().
  const PathTable& paths() const { return arena_; }

  struct ArenaStats {
    std::size_t arena_paths = 0;  ///< Nodes in the shared table.
    std::size_t sum_study_paths = 0;  ///< Sum of pre-merge node counts.
    /// Fraction of per-study nodes deduplicated away by sharing (0 with at
    /// most one study's worth of paths).
    double sharing() const {
      return sum_study_paths == 0
                 ? 0.0
                 : 1.0 - double(arena_paths) / double(sum_study_paths);
    }
  };
  ArenaStats arena_stats() const;

  /// Redistributes the shared cache budget: each study's quota becomes the
  /// floor plus a share of the remainder proportional to its lifetime cache
  /// hit rate (even split while no study has traffic). Trims LRU tails of
  /// shrunken studies immediately. Safe concurrently with queries —
  /// answers never change, only cache latency.
  void rebalance_cache() const;

  struct CacheBudgetView {
    struct PerStudy {
      std::string name;
      std::size_t quota = 0;
      ClassifyCache::Stats stats;
    };
    std::size_t total_capacity = 0;
    std::vector<PerStudy> per_study;
  };
  CacheBudgetView cache_budget() const;

 private:
  /// Even split of the budget, respecting the floor where possible.
  std::size_t even_quota() const;

  StudyCatalogConfig config_;
  PathTable arena_;
  std::vector<std::unique_ptr<Study>> studies_;
};

}  // namespace irp
