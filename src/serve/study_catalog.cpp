#include "serve/study_catalog.hpp"

#include <algorithm>
#include <cstdio>

#include "serve/byte_io.hpp"

namespace irp {
namespace {

std::string checksum_hex(std::uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(checksum));
  return std::string(buf);
}

/// Re-interns every path of `snapshot` into `arena` and rewrites the route
/// entries to arena ids. One forward pass suffices: from_flat() guarantees
/// a node's tail precedes it, so by the time node i is visited its tail is
/// already remapped.
void merge_paths_into_arena(OracleSnapshot& snapshot, PathTable& arena) {
  const PathTable& own = snapshot.paths;
  std::vector<PathId> remap(own.num_paths());
  for (PathId id = 0; id < own.num_paths(); ++id) {
    const PathTable::FlatNode node = own.flat_node(id);
    if (node.num_hops == 0) {
      const std::vector<Asn>& poison = own.poison_set_at(node.poison);
      remap[id] = arena.root(poison);
    } else {
      remap[id] = arena.prepend(remap[node.tail], node.head);
    }
  }
  for (OracleSnapshot::PrefixRoutes& pr : snapshot.routes) {
    for (OracleSnapshot::RouteEntry& entry : pr.entries) {
      entry.selected = remap[entry.selected];
      for (OracleSnapshot::AlternateRoute& alt : entry.alternates)
        alt.path = remap[alt.path];
    }
  }
}

}  // namespace

StudyCatalog::StudyCatalog(StudyCatalogConfig config) : config_(config) {}

const StudyCatalog::Study& StudyCatalog::add_study(std::string name,
                                                   OracleSnapshot snapshot) {
  IRP_CHECK(!name.empty(), "study name must be nonempty");
  IRP_CHECK(name.find('=') == std::string::npos &&
                name.find('@') == std::string::npos,
            "study name must not contain '=' or '@'");
  IRP_CHECK(find(name) == nullptr, "duplicate study name '" + name + "'");

  // Identity is content-derived: checksum the canonical image bytes before
  // the arena remap rewrites the path table.
  const std::string image = snapshot.to_bytes();

  auto study = std::make_unique<Study>();
  study->name = name;
  study->id = name + "@" + checksum_hex(fnv1a64(image));
  study->ordinal = static_cast<std::uint32_t>(studies_.size());
  study->image_bytes = image.size();
  study->own_paths = snapshot.paths.num_paths();
  study->snapshot = std::move(snapshot);
  merge_paths_into_arena(study->snapshot, arena_);

  OracleIndexConfig index_config;
  index_config.route_shards = config_.route_shards;
  index_config.cache_shards = config_.cache_shards;
  index_config.cache_capacity = 0;  // Budgeted below, across all studies.
  study->index = std::make_unique<OracleIndex>(&study->snapshot, &arena_,
                                               index_config);
  studies_.push_back(std::move(study));

  // A new study resets every quota to an even split; rebalance_cache() will
  // skew the split once hit rates accumulate.
  const std::size_t quota = even_quota();
  for (const auto& s : studies_) s->index->set_cache_capacity(quota);
  return *studies_.back();
}

const StudyCatalog::Study& StudyCatalog::add_study_file(
    std::string name, const std::string& path) {
  return add_study(std::move(name), OracleSnapshot::load(path));
}

const StudyCatalog::Study* StudyCatalog::find(
    std::string_view name_or_id) const {
  if (name_or_id.empty()) return default_study();
  for (const auto& study : studies_)
    if (study->name == name_or_id || study->id == name_or_id)
      return study.get();
  return nullptr;
}

const StudyCatalog::Study* StudyCatalog::default_study() const {
  return studies_.empty() ? nullptr : studies_.front().get();
}

StudyCatalog::ArenaStats StudyCatalog::arena_stats() const {
  ArenaStats stats;
  stats.arena_paths = arena_.num_paths();
  for (const auto& study : studies_) stats.sum_study_paths += study->own_paths;
  return stats;
}

std::size_t StudyCatalog::even_quota() const {
  if (studies_.empty() || config_.total_cache_capacity == 0) return 0;
  return config_.total_cache_capacity / studies_.size();
}

void StudyCatalog::rebalance_cache() const {
  if (studies_.empty()) return;
  const std::size_t total = config_.total_cache_capacity;
  if (total == 0) return;

  // The floor cannot exceed an even split, or N floors would overshoot the
  // budget on their own.
  const std::size_t floor =
      std::min(config_.min_study_cache_quota, total / studies_.size());
  const std::size_t spread = total - floor * studies_.size();

  std::vector<double> weight(studies_.size(), 0.0);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < studies_.size(); ++i) {
    weight[i] = studies_[i]->index->cache_stats().hit_rate();
    weight_sum += weight[i];
  }

  for (std::size_t i = 0; i < studies_.size(); ++i) {
    const double share =
        weight_sum == 0.0 ? 1.0 / double(studies_.size())
                          : weight[i] / weight_sum;
    const std::size_t quota =
        floor + static_cast<std::size_t>(double(spread) * share);
    studies_[i]->index->set_cache_capacity(quota);
  }
}

StudyCatalog::CacheBudgetView StudyCatalog::cache_budget() const {
  CacheBudgetView view;
  view.total_capacity = config_.total_cache_capacity;
  view.per_study.reserve(studies_.size());
  for (const auto& study : studies_) {
    CacheBudgetView::PerStudy per;
    per.name = study->name;
    per.stats = study->index->cache_stats();
    per.quota = per.stats.capacity;
    view.per_study.push_back(std::move(per));
  }
  return view;
}

}  // namespace irp
