#include "bgp/baseline_engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {
namespace {

/// Safety cap on activations per prefix, as a multiple of the AS count.
/// Policy-induced oscillation (dispute wheels) is possible in principle with
/// arbitrary local-pref deltas; the cap keeps runs bounded and flags them.
constexpr std::size_t kActivationFactor = 64;

}  // namespace

BaselineBgpEngine::BaselineBgpEngine(const Topology* topo, const GroundTruthPolicy* policy,
                     int epoch)
    : topo_(topo), policy_(policy), epoch_(epoch) {
  IRP_CHECK(topo_ != nullptr, "engine requires a topology");
  IRP_CHECK(policy_ != nullptr, "engine requires a policy");
}

BaselineBgpEngine::PrefixState& BaselineBgpEngine::state_for(const Ipv4Prefix& prefix) {
  auto it = index_.find(prefix);
  if (it != index_.end()) return *states_[it->second];
  auto st = std::make_unique<PrefixState>();
  st->prefix = prefix;
  st->per_as.resize(topo_->num_ases());
  st->queued.resize(topo_->num_ases() + 1, false);
  index_[prefix] = states_.size();
  states_.push_back(std::move(st));
  return *states_.back();
}

const BaselineBgpEngine::PrefixState* BaselineBgpEngine::find_state(
    const Ipv4Prefix& prefix) const {
  auto it = index_.find(prefix);
  return it == index_.end() ? nullptr : states_[it->second].get();
}

void BaselineBgpEngine::announce(const Ipv4Prefix& prefix, Asn origin,
                         AnnounceOptions options) {
  IRP_CHECK(origin >= 1 && origin <= topo_->num_ases(), "bad origin ASN");
  PrefixState& st = state_for(prefix);
  IRP_CHECK(!st.originated || st.origin == origin,
            "prefix already originated by a different AS");
  st.origin = origin;
  st.originated = true;
  st.options = std::move(options);
  // Force a full re-export at the origin, so option changes (new poison
  // set, different announcement sites) propagate even when the selected
  // route object itself compares equal.
  st.per_as[origin - 1].force_export = true;
  enqueue(st, origin);
}

void BaselineBgpEngine::withdraw(const Ipv4Prefix& prefix) {
  PrefixState* st = const_cast<PrefixState*>(find_state(prefix));
  if (st == nullptr || !st->originated) return;
  st->originated = false;
  st->per_as[st->origin - 1].force_export = true;
  enqueue(*st, st->origin);
}

void BaselineBgpEngine::run() {
  for (auto& stp : states_) {
    PrefixState& st = *stp;
    const std::size_t cap = kActivationFactor * (topo_->num_ases() + 1);
    std::size_t activations = 0;
    while (!st.queue.empty()) {
      const Asn asn = st.queue.front();
      st.queue.pop_front();
      st.queued[asn] = false;
      process(st, asn);
      if (++activations > cap) {
        converged_ = false;
        // Drop remaining activations; the run is flagged as non-converged.
        while (!st.queue.empty()) {
          st.queued[st.queue.front()] = false;
          st.queue.pop_front();
        }
        break;
      }
    }
  }
}

void BaselineBgpEngine::enqueue(PrefixState& st, Asn asn) {
  if (!st.queued[asn]) {
    st.queued[asn] = true;
    st.queue.push_back(asn);
  }
}

std::optional<BaselineBgpEngine::Selected> BaselineBgpEngine::select(const PrefixState& st,
                                                     Asn asn) const {
  if (st.originated && st.origin == asn) {
    Selected s;
    s.path.poison_set = st.options.poison_set;
    s.self_originated = true;
    s.local_pref = 1 << 20;  // An origin always prefers its own prefix.
    return s;
  }

  const PerAs& pa = st.per_as[asn - 1];
  const Selected* best = nullptr;
  Selected candidate;
  std::optional<Selected> chosen;
  for (const Route& r : pa.rib_in) {
    const Link& link = topo_->link(r.via_link);
    candidate = Selected{};
    candidate.path = r.path;
    candidate.via_link = r.via_link;
    candidate.next_hop = r.from_asn;
    candidate.age = r.received_at;
    candidate.local_pref = policy_->local_pref(asn, link, r.path);
    candidate.self_originated = false;
    const Relationship rel = topo_->relationship_from(link, asn);
    // Across sibling links the organizational class is inherited; the
    // composite organization must obey Gao-Rexford toward the outside.
    candidate.effective_class =
        rel == Relationship::kSibling ? r.org_class : std::optional{rel};

    if (best == nullptr) {
      chosen = candidate;
      best = &*chosen;
      continue;
    }
    // Full decision process, most significant step first.
    bool better = false;
    if (candidate.local_pref != best->local_pref) {
      better = candidate.local_pref > best->local_pref;
    } else if (candidate.path.length() != best->path.length()) {
      better = candidate.path.length() < best->path.length();
    } else {
      const int igp_new = topo_->igp_cost_from(link, asn);
      const int igp_old =
          topo_->igp_cost_from(topo_->link(best->via_link), asn);
      if (igp_new != igp_old) {
        better = igp_new < igp_old;
      } else if (candidate.age != best->age) {
        better = candidate.age < best->age;  // Oldest route wins.
      } else if (candidate.next_hop != best->next_hop) {
        better = candidate.next_hop < best->next_hop;  // Router-id stand-in.
      } else {
        better = candidate.via_link < best->via_link;
      }
    }
    if (better) {
      chosen = candidate;
      best = &*chosen;
    }
  }
  return chosen;
}

void BaselineBgpEngine::process(PrefixState& st, Asn asn) {
  PerAs& pa = st.per_as[asn - 1];
  std::optional<Selected> next = select(st, asn);

  const bool changed = [&] {
    if (pa.selected.has_value() != next.has_value()) return true;
    if (!next) return false;
    return pa.selected->path != next->path ||
           pa.selected->via_link != next->via_link ||
           pa.selected->self_originated != next->self_originated ||
           pa.selected->effective_class != next->effective_class;
  }();

  if (!changed && !pa.force_export) return;
  pa.force_export = false;
  pa.selected = std::move(next);
  export_from(st, asn);
}

void BaselineBgpEngine::export_from(PrefixState& st, Asn asn) {
  PerAs& pa = st.per_as[asn - 1];
  for (LinkId lid : topo_->links_of(asn)) {
    const Link& link = topo_->link(lid);
    if (!topo_->link_alive(link, epoch_)) continue;

    bool allowed = pa.selected.has_value();
    if (allowed && !pa.selected->self_originated) {
      // Split horizon: never advertise back over the link the route came
      // from (the neighbor would reject it by loop prevention anyway).
      if (lid == pa.selected->via_link) allowed = false;
      if (allowed)
        allowed = policy_->export_ok(asn, pa.selected->effective_class, link,
                                     st.prefix);
    } else if (allowed) {
      // Self-originated: respect per-site / selective announcement limits.
      if (!st.options.only_links.empty() &&
          std::find(st.options.only_links.begin(), st.options.only_links.end(),
                    lid) == st.options.only_links.end())
        allowed = false;
      if (allowed)
        allowed = policy_->export_ok(asn, std::nullopt, link, st.prefix);
    }

    if (allowed) {
      AsPath out = pa.selected->path.prepend(asn);
      if (pa.selected->self_originated) {
        // Inbound TE: per-link AS-path prepending at the origin.
        for (const auto& [plid, count] : st.options.prepend_on)
          if (plid == lid)
            out.hops.insert(out.hops.begin(), std::size_t(count), asn);
      }
      auto it = pa.sent.find(lid);
      if (it != pa.sent.end() && it->second == out) continue;  // No change.
      pa.sent[lid] = out;
      deliver_update(st, asn, link, out,
                     pa.selected->self_originated
                         ? std::nullopt
                         : pa.selected->effective_class);
    } else {
      auto it = pa.sent.find(lid);
      if (it == pa.sent.end()) continue;  // Nothing previously advertised.
      pa.sent.erase(it);
      deliver_withdraw(st, asn, link);
    }
  }
}

void BaselineBgpEngine::deliver_update(PrefixState& st, Asn from, const Link& link,
                               const AsPath& path,
                               std::optional<Relationship> org_class) {
  ++messages_;
  const Asn to = topo_->other_end(link, from);
  PerAs& pa = st.per_as[to - 1];

  auto slot = std::find_if(pa.rib_in.begin(), pa.rib_in.end(),
                           [&](const Route& r) { return r.via_link == link.id; });

  if (path.contains(to)) {
    // Loop prevention (this is what poisoning triggers): the announcement is
    // rejected; if a previous route from this link existed it is implicitly
    // withdrawn.
    if (slot != pa.rib_in.end()) {
      pa.rib_in.erase(slot);
      enqueue(st, to);
    }
    return;
  }

  Route route;
  route.path = path;
  route.via_link = link.id;
  route.from_asn = from;
  route.received_at = ++clock_;
  route.org_class = org_class;
  if (slot != pa.rib_in.end()) {
    // Replacement keeps the original age when the path is unchanged in all
    // but attributes; a genuinely new path gets a fresh age.
    if (slot->path == path) route.received_at = slot->received_at;
    *slot = route;
  } else {
    pa.rib_in.push_back(route);
  }
  enqueue(st, to);
}

void BaselineBgpEngine::deliver_withdraw(PrefixState& st, Asn from, const Link& link) {
  ++messages_;
  const Asn to = topo_->other_end(link, from);
  PerAs& pa = st.per_as[to - 1];
  auto slot = std::find_if(pa.rib_in.begin(), pa.rib_in.end(),
                           [&](const Route& r) { return r.via_link == link.id; });
  if (slot != pa.rib_in.end()) {
    pa.rib_in.erase(slot);
    enqueue(st, to);
  }
}

const BaselineBgpEngine::Selected* BaselineBgpEngine::best(Asn asn,
                                           const Ipv4Prefix& prefix) const {
  const PrefixState* st = find_state(prefix);
  if (st == nullptr) return nullptr;
  const auto& sel = st->per_as[asn - 1].selected;
  return sel.has_value() ? &*sel : nullptr;
}

std::vector<Route> BaselineBgpEngine::routes_at(Asn asn,
                                        const Ipv4Prefix& prefix) const {
  const PrefixState* st = find_state(prefix);
  if (st == nullptr) return {};
  return st->per_as[asn - 1].rib_in;
}

std::optional<Asn> BaselineBgpEngine::forward_next_hop(Asn asn,
                                               const Ipv4Prefix& prefix) const {
  const Selected* sel = best(asn, prefix);
  if (sel == nullptr || sel->self_originated) return std::nullopt;
  return sel->next_hop;
}

std::vector<FeedEntry> BaselineBgpEngine::feed(std::span<const Asn> peers) const {
  std::vector<FeedEntry> out;
  for (const auto& stp : states_) {
    for (Asn peer : peers) {
      const auto& sel = stp->per_as[peer - 1].selected;
      if (!sel.has_value()) continue;
      FeedEntry e;
      e.peer = peer;
      e.prefix = stp->prefix;
      e.path = sel->path.prepend(peer);
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::vector<Ipv4Prefix> BaselineBgpEngine::prefixes() const {
  std::vector<Ipv4Prefix> out;
  out.reserve(states_.size());
  for (const auto& stp : states_) out.push_back(stp->prefix);
  return out;
}

}  // namespace irp
