// Hash-consed AS-path storage for the BGP engine.
//
// Every AS path that exists during a convergence is a prepend of some other
// path (its neighbor's path), so the set of live paths forms a tree rooted at
// the origin's (empty) announcement. PathTable stores that tree explicitly:
// each node is (head ASN, parent id) and interning guarantees one node per
// distinct path, so
//   * prepend()   is an O(1) hash probe instead of a full vector copy,
//   * equality    is a single integer compare (same table, same id),
//   * length()    is a cached field read,
//   * contains()  is an O(depth) walk of small nodes (loop prevention).
//
// Poisoned AS-sets (§3.2) are part of a path's identity — two paths with the
// same hops but different poison sets must not compare equal, and loop
// prevention fires on poison members too. The table therefore interns poison
// sets separately and roots each announcement's tree at an "empty path +
// poison set" node; every node inherits its root's poison id, so the poison
// lookup stays O(1).
//
// Ids are only meaningful within the table that produced them. A table is
// engine-local and not thread-safe; concurrent engines each own one.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"

namespace irp {

/// Handle to an interned path; valid for the lifetime of its PathTable.
using PathId = std::uint32_t;

/// The empty path (no hops, no poison set), pre-interned in every table.
inline constexpr PathId kEmptyPathId = 0;

class PathTable {
 public:
  PathTable();

  /// Intern/lookup counters, cheap enough to keep always-on.
  struct Stats {
    std::uint64_t nodes = 0;        ///< Distinct paths interned (tree nodes).
    std::uint64_t hits = 0;         ///< Intern requests served from the table.
    std::uint64_t bytes_saved = 0;  ///< Hop-vector bytes not copied on hits.
    std::uint64_t poison_sets = 0;  ///< Distinct non-empty poison sets.
  };

  /// The empty path carrying `poison_set` (interned; empty set = kEmptyPathId).
  PathId root(std::span<const Asn> poison_set);

  /// The path `head · id`: `id` with one hop prepended. O(1) amortized.
  PathId prepend(PathId id, Asn head);

  /// `head` prepended `count` times (origin-side AS-path prepending).
  PathId prepend_n(PathId id, Asn head, std::size_t count);

  /// Interns a materialized AsPath (hops + poison set).
  PathId intern(const AsPath& path);

  /// Credits a prepend the caller avoided by reusing `id` directly (e.g. the
  /// engine fanning one exported path out over several links). Keeps the
  /// sharing counters meaningful after hot-path hoisting: each reuse is a
  /// hop-vector copy a value-based representation would have made.
  void note_reuse(PathId id) {
    ++stats_.hits;
    stats_.bytes_saved += num_hops(id) * sizeof(Asn);
  }

  /// Number of hops (excluding the poison set).
  std::size_t num_hops(PathId id) const { return nodes_[id].num_hops; }

  /// BGP path length: hops plus one for a non-empty poison set.
  std::size_t length(PathId id) const {
    const Node& n = nodes_[id];
    return n.num_hops + (n.poison == 0 ? 0 : 1);
  }

  /// First (most recent) hop; 0 for an empty path.
  Asn front(PathId id) const { return nodes_[id].head; }

  /// Loop prevention: true if `asn` is a hop or a poison-set member.
  bool contains(PathId id, Asn asn) const;

  /// The path's poison set (empty vector for unpoisoned paths).
  const std::vector<Asn>& poison_set(PathId id) const {
    return poison_sets_[nodes_[id].poison];
  }

  /// Visits hops front (most recent) to back (origin).
  template <typename Fn>
  void for_each_hop(PathId id, Fn&& fn) const {
    for (PathId cur = id; nodes_[cur].num_hops > 0; cur = nodes_[cur].tail)
      fn(nodes_[cur].head);
  }

  /// True if `fn` holds for every hop (vacuously true for the empty path);
  /// stops walking at the first failure.
  template <typename Fn>
  bool all_of_hops(PathId id, Fn&& fn) const {
    for (PathId cur = id; nodes_[cur].num_hops > 0; cur = nodes_[cur].tail)
      if (!fn(nodes_[cur].head)) return false;
    return true;
  }

  /// Appends the hops (front to back) to `out`.
  void append_hops(PathId id, std::vector<Asn>& out) const;

  /// Materializes the full AsPath value (one hop-vector allocation).
  AsPath materialize(PathId id) const;

  /// Materializes into an existing AsPath, reusing its vector capacities.
  void materialize_into(PathId id, AsPath& out) const;

  std::size_t num_paths() const { return nodes_.size(); }
  const Stats& stats() const { return stats_; }

  // -- Snapshot hooks (RouteOracle binary images, see src/serve/).
  //
  // A table serializes as its flat node array plus the poison-set pool; ids
  // survive the round trip unchanged, so route records referencing PathIds
  // stay valid against the rebuilt table.

  /// One node of the flat image; mirrors the private Node layout.
  struct FlatNode {
    Asn head = 0;
    PathId tail = 0;
    std::uint32_t num_hops = 0;
    std::uint32_t poison = 0;
  };

  /// The flat image of one node (`id < num_paths()`).
  FlatNode flat_node(PathId id) const {
    const Node& n = nodes_[id];
    return FlatNode{n.head, n.tail, n.num_hops, n.poison};
  }

  std::size_t num_poison_sets() const { return poison_sets_.size(); }
  const std::vector<Asn>& poison_set_at(std::size_t index) const {
    return poison_sets_[index];
  }

  /// Rebuilds a table from a flat image in O(nodes). Every tree invariant is
  /// re-validated (tails precede their node, hop counts are consistent,
  /// poison ids inherited, no duplicate intern entries); malformed input
  /// throws CheckError instead of producing a table with undefined walks.
  static PathTable from_flat(std::span<const FlatNode> nodes,
                             std::vector<std::vector<Asn>> poison_sets);

 private:
  struct Node {
    Asn head = 0;        ///< Most recent hop; 0 for root (empty) paths.
    PathId tail = 0;     ///< Rest of the path; self-referential for roots.
    std::uint32_t num_hops = 0;
    std::uint32_t poison = 0;  ///< Index into poison_sets_, inherited from root.
  };

  std::vector<Node> nodes_;
  std::vector<std::vector<Asn>> poison_sets_;  ///< [0] is the empty set.
  /// (head, tail) -> node id; the 64-bit key is collision-free by
  /// construction (two 32-bit halves), so lookups never compare paths.
  std::unordered_map<std::uint64_t, PathId> intern_;
  std::map<std::vector<Asn>, PathId> roots_;  ///< poison set -> root node.
  Stats stats_;
};

}  // namespace irp
