#include "bgp/route.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {

bool AsPath::contains(Asn asn) const {
  return std::find(hops.begin(), hops.end(), asn) != hops.end() ||
         std::find(poison_set.begin(), poison_set.end(), asn) !=
             poison_set.end();
}

AsPath AsPath::prepend(Asn asn) const {
  AsPath out = *this;
  out.hops.insert(out.hops.begin(), asn);
  return out;
}

Asn AsPath::origin() const {
  IRP_CHECK(!hops.empty(), "origin of empty path");
  return hops.back();
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(hops[i]);
    // Render the poisoned AS-set where the paper places it: surrounded by
    // the announcer (origin) ASN, i.e. just before the final hop.
    if (!poison_set.empty() && i + 2 == hops.size()) {
      out += " {";
      for (std::size_t j = 0; j < poison_set.size(); ++j) {
        if (j > 0) out += ',';
        out += std::to_string(poison_set[j]);
      }
      out += '}';
    }
  }
  if (!poison_set.empty() && hops.size() < 2) {
    out += " {";
    for (std::size_t j = 0; j < poison_set.size(); ++j) {
      if (j > 0) out += ',';
      out += std::to_string(poison_set[j]);
    }
    out += '}';
  }
  return out;
}

}  // namespace irp
