#include "bgp/policy.hpp"

#include "util/check.hpp"

namespace irp {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

GroundTruthPolicy::GroundTruthPolicy(const Topology* topo, PolicyConfig config)
    : topo_(topo), config_(config) {
  IRP_CHECK(topo_ != nullptr, "policy requires a topology");
}

int GroundTruthPolicy::local_pref_base(Asn self, const Link& link) const {
  const AsNode& node = topo_->as_node(self);
  const Relationship rel = topo_->relationship_from(link, self);

  int base = 0;
  if (node.flat_local_pref) {
    base = config_.lp_flat;
  } else {
    switch (rel) {
      case Relationship::kCustomer: base = config_.lp_customer; break;
      case Relationship::kSibling:  base = config_.lp_sibling; break;
      case Relationship::kPeer:     base = config_.lp_peer; break;
      case Relationship::kProvider: base = config_.lp_provider; break;
    }
  }
  return base + topo_->lp_delta_from(link, self);
}

int GroundTruthPolicy::local_pref(Asn self, const Link& link,
                                  const AsPath& path) const {
  int pref = local_pref_base(self, link);
  if (topo_->as_node(self).prefers_domestic && path_is_domestic(self, path))
    pref += config_.domestic_bonus;
  return pref;
}

int GroundTruthPolicy::local_pref(Asn self, const Link& link,
                                  const PathTable& table, PathId path) const {
  int pref = local_pref_base(self, link);
  if (topo_->as_node(self).prefers_domestic &&
      path_is_domestic(self, table, path))
    pref += config_.domestic_bonus;
  return pref;
}

bool GroundTruthPolicy::path_is_domestic(Asn self, const AsPath& path) const {
  const CountryId home = topo_->as_node(self).home_country;
  for (Asn asn : path.hops)
    if (topo_->as_node(asn).home_country != home) return false;
  return true;
}

bool GroundTruthPolicy::path_is_domestic(Asn self, const PathTable& table,
                                         PathId path) const {
  const CountryId home = topo_->as_node(self).home_country;
  return table.all_of_hops(path, [&](Asn asn) {
    return topo_->as_node(asn).home_country == home;
  });
}

bool GroundTruthPolicy::export_ok(Asn self,
                                  std::optional<Relationship> learned_rel,
                                  const Link& out_link,
                                  const Ipv4Prefix& prefix) const {
  const Relationship out_rel = topo_->relationship_from(out_link, self);

  // Gao-Rexford export rule with sibling transparency: routes learned from
  // customers or siblings (or originated here) go to everyone; routes
  // learned from peers or providers go only to customers and siblings.
  const bool route_is_ours =
      !learned_rel.has_value() || *learned_rel == Relationship::kCustomer ||
      *learned_rel == Relationship::kSibling;
  if (!route_is_ours && out_rel != Relationship::kCustomer &&
      out_rel != Relationship::kSibling)
    return false;

  // Partial transit (§4.1): a provider on a partial-transit link serves the
  // customer only for a subset of prefixes.
  if (out_rel == Relationship::kCustomer && out_link.partial_transit &&
      !partial_transit_serves(prefix, out_link))
    return false;

  return true;
}

bool GroundTruthPolicy::partial_transit_serves(const Ipv4Prefix& prefix,
                                               const Link& link) {
  const std::uint64_t h =
      mix64((std::uint64_t{prefix.network().value()} << 16) ^
            (std::uint64_t{link.id} * 0x9e3779b97f4a7c15ULL));
  return (h & 1) == 0;
}

}  // namespace irp
