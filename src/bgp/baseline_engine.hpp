// Frozen pre-PathTable BGP engine, kept as a reference implementation.
//
// This is the engine as it existed before the interned-path rewrite: every
// AS path is a full std::vector copy, select() copies a candidate per RIB
// entry, and per-AS sent state lives in std::map. It is deliberately left
// byte-for-byte equivalent in behaviour so it can serve two jobs:
//   * correctness oracle — test_engine_equivalence asserts the production
//     BgpEngine produces identical feeds, selections, RIBs, and message
//     counts on generated topologies;
//   * perf baseline — bench_engine_hotpath reports the production engine's
//     speedup over this implementation (BENCH_engine.json).
// Do not optimize this file; optimize bgp/engine.cpp and let the
// equivalence test keep it honest.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bgp/engine.hpp"  // Shares AnnounceOptions with the real engine.
#include "bgp/policy.hpp"
#include "bgp/route.hpp"
#include "topo/topology.hpp"

namespace irp {

/// Per-prefix BGP simulator over a ground-truth topology (frozen baseline).
class BaselineBgpEngine {
 public:
  /// `epoch` selects which links are alive (topology evolution).
  BaselineBgpEngine(const Topology* topo, const GroundTruthPolicy* policy, int epoch);

  /// Originates (or re-originates, replacing options of) `prefix` at
  /// `origin`. Call run() afterwards to converge.
  void announce(const Ipv4Prefix& prefix, Asn origin,
                AnnounceOptions options = {});

  /// Withdraws the prefix at its origin.
  void withdraw(const Ipv4Prefix& prefix);

  /// Propagates until quiescent (or the safety cap is hit).
  void run();

  /// The route an AS selected for a prefix.
  struct Selected {
    /// Path toward the origin, *excluding* this AS (empty at the origin).
    AsPath path;
    LinkId via_link = kInvalidLink;
    Asn next_hop = 0;           ///< 0 when self-originated.
    LogicalTime age = 0;        ///< Arrival time of the selected route.
    int local_pref = 0;
    bool self_originated = false;
    /// Class governing export: where the organization externally learned
    /// the route (nullopt = originated by this AS or inside its org).
    std::optional<Relationship> effective_class;
  };

  /// Best route of `asn` toward `prefix`; nullptr if none.
  const Selected* best(Asn asn, const Ipv4Prefix& prefix) const;

  /// All accepted Adj-RIB-In routes of `asn` for `prefix` (at most one per
  /// link), in link order. Used by the reverse-engineering analyses.
  std::vector<Route> routes_at(Asn asn, const Ipv4Prefix& prefix) const;

  /// Data-plane next hop of `asn` for `prefix`; nullopt when unrouted or
  /// self-originated.
  std::optional<Asn> forward_next_hop(Asn asn, const Ipv4Prefix& prefix) const;

  /// Current best routes of the given collector peers, over all prefixes —
  /// a RouteViews/RIS-style table dump.
  std::vector<FeedEntry> feed(std::span<const Asn> peers) const;

  /// All prefixes ever announced.
  std::vector<Ipv4Prefix> prefixes() const;

  LogicalTime now() const { return clock_; }
  int epoch() const { return epoch_; }
  std::size_t messages_delivered() const { return messages_; }
  bool converged() const { return converged_; }
  const Topology& topology() const { return *topo_; }

 private:
  struct PerAs {
    /// Accepted routes, at most one per adjacent link.
    std::vector<Route> rib_in;
    std::optional<Selected> selected;
    /// Forces the next process() to re-run exports even if the selection
    /// compares equal (set by announce/withdraw when options change).
    bool force_export = false;
    /// Last path advertised per outgoing link (absent = withdrawn/never).
    std::map<LinkId, AsPath> sent;
  };

  struct PrefixState {
    Ipv4Prefix prefix;
    Asn origin = 0;
    bool originated = false;
    AnnounceOptions options;
    std::vector<PerAs> per_as;
    std::deque<Asn> queue;
    std::vector<bool> queued;
  };

  PrefixState& state_for(const Ipv4Prefix& prefix);
  const PrefixState* find_state(const Ipv4Prefix& prefix) const;

  void enqueue(PrefixState& st, Asn asn);
  void process(PrefixState& st, Asn asn);
  std::optional<Selected> select(const PrefixState& st, Asn asn) const;
  void export_from(PrefixState& st, Asn asn);
  void deliver_update(PrefixState& st, Asn from, const Link& link,
                      const AsPath& path,
                      std::optional<Relationship> org_class);
  void deliver_withdraw(PrefixState& st, Asn from, const Link& link);

  const Topology* topo_;
  const GroundTruthPolicy* policy_;
  int epoch_;
  LogicalTime clock_ = 0;
  std::size_t messages_ = 0;
  bool converged_ = true;
  std::map<Ipv4Prefix, std::size_t> index_;
  std::vector<std::unique_ptr<PrefixState>> states_;
};

}  // namespace irp
