// Event-driven BGP propagation engine.
//
// Simulates per-prefix BGP over the ground-truth topology and policy:
// announcements propagate through Adj-RIB-Ins, each AS runs the full BGP
// decision process (local-pref, AS-path length, IGP cost to next hop, route
// age, router id), and exports are filtered by the ground-truth policy.
// Loop prevention rejects any path containing the receiving ASN — which is
// exactly the mechanism BGP poisoning (§3.2) relies on.
//
// The engine is incremental: announce/withdraw can be interleaved with run()
// and logical time advances monotonically, so route ages are meaningful
// across experiment stages (the magnet/anycast experiment needs this).
// Everything is deterministic: activations drain in FIFO order.
//
// Hot-path representation (see DESIGN.md "Engine internals"): all AS paths
// live in an engine-local PathTable, so RIB entries and sent-state hold
// 4-byte PathIds, prepending on export is an O(1) intern, path equality is
// an integer compare, and the decision process runs allocation-free over
// attributes cached at delivery time. The frozen pre-PathTable engine is
// kept in bgp/baseline_engine.hpp as a correctness oracle and perf baseline;
// test_engine_equivalence asserts both produce byte-identical results.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/path_table.hpp"
#include "bgp/policy.hpp"
#include "bgp/route.hpp"
#include "topo/topology.hpp"

namespace irp {

/// Options for an announcement.
struct AnnounceOptions {
  /// ASNs inserted into the announcement's AS-set (BGP poisoning).
  std::vector<Asn> poison_set;
  /// If non-empty, the origin exports the prefix only over these links
  /// (selective prefix announcement, or per-site PEERING announcements).
  std::vector<LinkId> only_links;
  /// Per-link AS-path prepending: extra copies of the origin ASN announced
  /// over specific links (inbound traffic engineering).
  std::vector<std::pair<LinkId, int>> prepend_on;
};

/// Cheap always-on instrumentation, surfaced next to messages_delivered().
/// EXPERIMENTS.md explains how to read these.
struct EngineCounters {
  std::uint64_t paths_interned = 0;    ///< Distinct paths in the path table.
  std::uint64_t intern_hits = 0;       ///< Prepends/interns served from it.
  std::uint64_t path_bytes_saved = 0;  ///< Hop-vector bytes sharing avoided.
  std::uint64_t selections_run = 0;    ///< Decision-process invocations.
  std::uint64_t rib_routes_scanned = 0;  ///< RIB entries examined by them.
  std::uint64_t states_reused = 0;     ///< PrefixStates recycled from a pool.
};

/// Per-prefix BGP simulator over a ground-truth topology.
class BgpEngine {
 private:
  struct PrefixState;  // Defined below; needed by StatePool.

 public:
  /// Recycles per-prefix engine state (the O(num_ases) per-AS vectors)
  /// across short-lived engines over the same topology — build_corpus spawns
  /// one engine per (epoch, batch) job, and without pooling every job
  /// re-mallocs the full O(num_ases · batch) state. Thread-safe; engines on
  /// different pool threads may share one StatePool.
  class StatePool {
   public:
    StatePool();
    ~StatePool();
    StatePool(const StatePool&) = delete;
    StatePool& operator=(const StatePool&) = delete;

    /// States currently parked and ready for reuse.
    std::size_t available() const;
    /// Total acquisitions served by recycling instead of allocation.
    std::uint64_t reuses() const;

   private:
    friend class BgpEngine;
    std::unique_ptr<PrefixState> acquire();
    void release(std::unique_ptr<PrefixState> st);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<PrefixState>> free_;
    std::uint64_t reuses_ = 0;
  };

  /// `epoch` selects which links are alive (topology evolution). A non-null
  /// `pool` donates recycled PrefixStates and receives them back when the
  /// engine is destroyed.
  BgpEngine(const Topology* topo, const GroundTruthPolicy* policy, int epoch,
            StatePool* pool = nullptr);
  ~BgpEngine();
  BgpEngine(const BgpEngine&) = delete;
  BgpEngine& operator=(const BgpEngine&) = delete;

  /// Originates (or re-originates, replacing options of) `prefix` at
  /// `origin`. Call run() afterwards to converge.
  void announce(const Ipv4Prefix& prefix, Asn origin,
                AnnounceOptions options = {});

  /// Withdraws the prefix at its origin.
  void withdraw(const Ipv4Prefix& prefix);

  /// Propagates until quiescent (or the safety cap is hit).
  void run();

  /// The route an AS selected for a prefix.
  struct Selected {
    /// Path toward the origin, *excluding* this AS (empty at the origin).
    /// `path_id` is the interned handle in the owning engine's path table;
    /// `path` is materialized from it lazily on the first best() access
    /// (`path_cached` tracks freshness), so convergence itself never
    /// allocates hop vectors.
    AsPath path;
    PathId path_id = kEmptyPathId;
    bool path_cached = true;
    LinkId via_link = kInvalidLink;
    Asn next_hop = 0;           ///< 0 when self-originated.
    LogicalTime age = 0;        ///< Arrival time of the selected route.
    int local_pref = 0;
    bool self_originated = false;
    /// Class governing export: where the organization externally learned
    /// the route (nullopt = originated by this AS or inside its org).
    std::optional<Relationship> effective_class;
  };

  /// Best route of `asn` toward `prefix`; nullptr if none.
  const Selected* best(Asn asn, const Ipv4Prefix& prefix) const;

  /// All accepted Adj-RIB-In routes of `asn` for `prefix` (at most one per
  /// link), in link order. Used by the reverse-engineering analyses.
  /// NOTE: this *materializes a copy* — each Route carries a freshly
  /// allocated AsPath — so hoist the call out of loops; the engine's own hot
  /// path never uses it.
  std::vector<Route> routes_at(Asn asn, const Ipv4Prefix& prefix) const;

  /// Data-plane next hop of `asn` for `prefix`; nullopt when unrouted or
  /// self-originated.
  std::optional<Asn> forward_next_hop(Asn asn, const Ipv4Prefix& prefix) const;

  /// Current best routes of the given collector peers, over all prefixes —
  /// a RouteViews/RIS-style table dump.
  std::vector<FeedEntry> feed(std::span<const Asn> peers) const;

  /// All prefixes ever announced.
  std::vector<Ipv4Prefix> prefixes() const;

  LogicalTime now() const { return clock_; }
  int epoch() const { return epoch_; }
  std::size_t messages_delivered() const { return messages_; }
  bool converged() const { return converged_; }
  const Topology& topology() const { return *topo_; }

  /// Interned-path storage; ids in Selected::path_id index into it.
  const PathTable& paths() const { return table_; }

  /// Instrumentation snapshot (merges engine and path-table counters).
  EngineCounters counters() const;

 private:
  /// Sentinel for PerAs::sent slots: nothing advertised over that link.
  /// (No real advertisement can be the empty path either — export always
  /// prepends the sender — but an explicit sentinel keeps intent obvious.)
  static constexpr PathId kNotSent = 0xFFFFFFFFu;

  /// An accepted Adj-RIB-In entry. Everything the decision process compares
  /// is cached here at delivery time (it depends only on the receiving AS,
  /// the link, and the path — all fixed per entry), so select() touches no
  /// policy/topology code and allocates nothing.
  struct RibRoute {
    PathId path = kEmptyPathId;
    LinkId via_link = 0;
    Asn from_asn = 0;
    LogicalTime received_at = 0;
    int local_pref = 0;  ///< Import local-pref at the receiving AS.
    int igp_cost = 0;    ///< IGP cost from the receiver's backbone.
    /// Organizational route class as received (carried across siblings).
    std::optional<Relationship> org_class;
    /// Class governing selection/export at the receiving AS.
    std::optional<Relationship> effective_class;
  };

  struct PerAs {
    /// Accepted routes, at most one per adjacent link.
    std::vector<RibRoute> rib_in;
    std::optional<Selected> selected;
    /// Forces the next process() to re-run exports even if the selection
    /// compares equal (set by announce/withdraw when options change).
    bool force_export = false;
    /// Last path advertised per outgoing link, indexed by the link's
    /// position in the AS's adjacency list (kNotSent = withdrawn/never).
    /// Sized lazily on first export; a flat slot array beats a sorted
    /// vector here because export walks the adjacency list in order anyway.
    std::vector<PathId> sent;
  };

  struct PrefixState {
    Ipv4Prefix prefix;
    Asn origin = 0;
    bool originated = false;
    AnnounceOptions options;
    /// Interned root for the origin's (possibly poisoned) announcement,
    /// fixed at announce() so process() never re-interns the poison set.
    PathId origin_path = kEmptyPathId;
    std::vector<PerAs> per_as;
    std::deque<Asn> queue;
    std::vector<bool> queued;

    /// Clears for reuse, keeping the per-AS vector capacities (the point of
    /// the pool).
    void reset(std::size_t num_ases);
  };

  PrefixState& state_for(const Ipv4Prefix& prefix);
  const PrefixState* find_state(const Ipv4Prefix& prefix) const;

  void enqueue(PrefixState& st, Asn asn);
  void process(PrefixState& st, Asn asn);
  /// Full decision process, most significant step first: does `a` beat `b`?
  bool preferred(const RibRoute& a, const RibRoute& b) const;
  void export_from(PrefixState& st, Asn asn);
  void deliver_update(PrefixState& st, Asn from, const Link& link,
                      PathId path, std::optional<Relationship> org_class);
  void deliver_withdraw(PrefixState& st, Asn from, const Link& link);

  const Topology* topo_;
  const GroundTruthPolicy* policy_;
  int epoch_;
  StatePool* pool_;
  LogicalTime clock_ = 0;
  std::size_t messages_ = 0;
  bool converged_ = true;
  PathTable table_;
  std::uint64_t selections_ = 0;
  std::uint64_t rib_scanned_ = 0;
  std::uint64_t states_reused_ = 0;
  std::unordered_map<Ipv4Prefix, std::size_t, Ipv4PrefixHash> index_;
  std::vector<std::unique_ptr<PrefixState>> states_;
};

}  // namespace irp
