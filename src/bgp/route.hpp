// BGP route representation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "topo/types.hpp"

namespace irp {

/// Logical timestamp; increases monotonically with every route delivery.
using LogicalTime = std::uint64_t;

/// An AS path plus an optional poisoned AS-set.
///
/// Poisoned announcements (§3.2) carry the poisoned ASNs in a single AS-set
/// surrounded by the announcer's ASN; the set counts as one hop for path
/// length and triggers loop prevention at its members, but prevents the
/// inference of non-existent inter-AS links.
struct AsPath {
  /// Front is the most recent (closest) AS, back is the origin.
  std::vector<Asn> hops;
  /// Poisoned AS-set (empty for normal announcements).
  std::vector<Asn> poison_set;

  /// BGP path length: one per hop, plus one for a non-empty AS-set.
  std::size_t length() const {
    return hops.size() + (poison_set.empty() ? 0 : 1);
  }

  /// True if `asn` appears anywhere (loop prevention).
  bool contains(Asn asn) const;

  /// Returns a copy with `asn` prepended.
  AsPath prepend(Asn asn) const;

  /// Origin AS (last hop); requires a non-empty path.
  Asn origin() const;

  /// Human-readable rendering, e.g. "64501 64502 {64999} 64501 64500".
  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;
};

/// A route as held in an Adj-RIB-In: the path as received over a link, plus
/// the attributes the decision process needs.
struct Route {
  AsPath path;
  LinkId via_link = 0;       ///< Link the route was learned over.
  Asn from_asn = 0;          ///< Neighbor that announced it.
  LogicalTime received_at = 0;  ///< For the route-age tie-breaker.
  /// Organizational route class, carried across sibling links: the class
  /// the route had where the organization *externally* learned it
  /// (nullopt = originated inside the organization). Without this, sibling
  /// families would re-export provider routes as if they were their own and
  /// become accidental global transit providers.
  std::optional<Relationship> org_class;
};

/// A route collector feed entry: the best path of one collector peer for one
/// prefix (RouteViews/RIS stand-in).
struct FeedEntry {
  Asn peer = 0;           ///< The AS exporting its best route to the collector.
  Ipv4Prefix prefix;
  AsPath path;            ///< Path as the collector sees it (peer prepended).
};

}  // namespace irp
