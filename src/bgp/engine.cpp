#include "bgp/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {
namespace {

/// Safety cap on activations per prefix, as a multiple of the AS count.
/// Policy-induced oscillation (dispute wheels) is possible in principle with
/// arbitrary local-pref deltas; the cap keeps runs bounded and flags them.
constexpr std::size_t kActivationFactor = 64;

}  // namespace

// ---------------------------------------------------------------- StatePool

BgpEngine::StatePool::StatePool() = default;
BgpEngine::StatePool::~StatePool() = default;

std::size_t BgpEngine::StatePool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_.size();
}

std::uint64_t BgpEngine::StatePool::reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

std::unique_ptr<BgpEngine::PrefixState> BgpEngine::StatePool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) return nullptr;
  auto st = std::move(free_.back());
  free_.pop_back();
  ++reuses_;
  return st;
}

void BgpEngine::StatePool::release(std::unique_ptr<PrefixState> st) {
  if (st == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(st));
}

void BgpEngine::PrefixState::reset(std::size_t num_ases) {
  prefix = Ipv4Prefix{};
  origin = 0;
  originated = false;
  options = AnnounceOptions{};
  origin_path = kEmptyPathId;
  // Clear element-wise before resizing: clear() keeps each inner vector's
  // capacity, which is the allocation the pool exists to recycle.
  for (PerAs& pa : per_as) {
    pa.rib_in.clear();
    pa.selected.reset();
    pa.force_export = false;
    pa.sent.clear();
  }
  per_as.resize(num_ases);
  queue.clear();
  queued.assign(num_ases + 1, false);
}

// ---------------------------------------------------------------- BgpEngine

BgpEngine::BgpEngine(const Topology* topo, const GroundTruthPolicy* policy,
                     int epoch, StatePool* pool)
    : topo_(topo), policy_(policy), epoch_(epoch), pool_(pool) {
  IRP_CHECK(topo_ != nullptr, "engine requires a topology");
  IRP_CHECK(policy_ != nullptr, "engine requires a policy");
}

BgpEngine::~BgpEngine() {
  if (pool_ == nullptr) return;
  for (auto& st : states_) pool_->release(std::move(st));
}

BgpEngine::PrefixState& BgpEngine::state_for(const Ipv4Prefix& prefix) {
  auto it = index_.find(prefix);
  if (it != index_.end()) return *states_[it->second];
  std::unique_ptr<PrefixState> st;
  if (pool_ != nullptr) st = pool_->acquire();
  if (st != nullptr) {
    ++states_reused_;
    st->reset(topo_->num_ases());
  } else {
    st = std::make_unique<PrefixState>();
    st->per_as.resize(topo_->num_ases());
    st->queued.resize(topo_->num_ases() + 1, false);
  }
  st->prefix = prefix;
  index_[prefix] = states_.size();
  states_.push_back(std::move(st));
  return *states_.back();
}

const BgpEngine::PrefixState* BgpEngine::find_state(
    const Ipv4Prefix& prefix) const {
  auto it = index_.find(prefix);
  return it == index_.end() ? nullptr : states_[it->second].get();
}

void BgpEngine::announce(const Ipv4Prefix& prefix, Asn origin,
                         AnnounceOptions options) {
  IRP_CHECK(origin >= 1 && origin <= topo_->num_ases(), "bad origin ASN");
  PrefixState& st = state_for(prefix);
  IRP_CHECK(!st.originated || st.origin == origin,
            "prefix already originated by a different AS");
  st.origin = origin;
  st.originated = true;
  st.options = std::move(options);
  st.origin_path = table_.root(st.options.poison_set);
  // Force a full re-export at the origin, so option changes (new poison
  // set, different announcement sites) propagate even when the selected
  // route object itself compares equal.
  st.per_as[origin - 1].force_export = true;
  enqueue(st, origin);
}

void BgpEngine::withdraw(const Ipv4Prefix& prefix) {
  PrefixState* st = const_cast<PrefixState*>(find_state(prefix));
  if (st == nullptr || !st->originated) return;
  st->originated = false;
  st->per_as[st->origin - 1].force_export = true;
  enqueue(*st, st->origin);
}

void BgpEngine::run() {
  for (auto& stp : states_) {
    PrefixState& st = *stp;
    const std::size_t cap = kActivationFactor * (topo_->num_ases() + 1);
    std::size_t activations = 0;
    while (!st.queue.empty()) {
      const Asn asn = st.queue.front();
      st.queue.pop_front();
      st.queued[asn] = false;
      process(st, asn);
      if (++activations > cap) {
        converged_ = false;
        // Drop remaining activations; the run is flagged as non-converged.
        while (!st.queue.empty()) {
          st.queued[st.queue.front()] = false;
          st.queue.pop_front();
        }
        break;
      }
    }
  }
}

void BgpEngine::enqueue(PrefixState& st, Asn asn) {
  if (!st.queued[asn]) {
    st.queued[asn] = true;
    st.queue.push_back(asn);
  }
}

bool BgpEngine::preferred(const RibRoute& a, const RibRoute& b) const {
  if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
  const std::size_t len_a = table_.length(a.path);
  const std::size_t len_b = table_.length(b.path);
  if (len_a != len_b) return len_a < len_b;
  if (a.igp_cost != b.igp_cost) return a.igp_cost < b.igp_cost;
  if (a.received_at != b.received_at)
    return a.received_at < b.received_at;  // Oldest route wins.
  if (a.from_asn != b.from_asn)
    return a.from_asn < b.from_asn;  // Router-id stand-in.
  return a.via_link < b.via_link;
}

void BgpEngine::process(PrefixState& st, Asn asn) {
  PerAs& pa = st.per_as[asn - 1];
  ++selections_;

  // Run the decision process without materializing anything: the winner is
  // described by (path id, attributes); only a *changed* selection pays for
  // an AsPath materialization below.
  bool have = false;
  PathId next_path = kEmptyPathId;
  LinkId next_via = kInvalidLink;
  Asn next_hop = 0;
  LogicalTime next_age = 0;
  int next_lp = 0;
  bool next_self = false;
  std::optional<Relationship> next_class;

  if (st.originated && st.origin == asn) {
    have = true;
    next_path = st.origin_path;
    next_self = true;
    next_lp = 1 << 20;  // An origin always prefers its own prefix.
  } else {
    rib_scanned_ += pa.rib_in.size();
    const RibRoute* best = nullptr;
    for (const RibRoute& r : pa.rib_in)
      if (best == nullptr || preferred(r, *best)) best = &r;
    if (best != nullptr) {
      have = true;
      next_path = best->path;
      next_via = best->via_link;
      next_hop = best->from_asn;
      next_age = best->received_at;
      next_lp = best->local_pref;
      next_class = best->effective_class;
    }
  }

  const bool changed = [&] {
    if (pa.selected.has_value() != have) return true;
    if (!have) return false;
    // Path equality is id equality: both sides are interned in table_.
    return pa.selected->path_id != next_path ||
           pa.selected->via_link != next_via ||
           pa.selected->self_originated != next_self ||
           pa.selected->effective_class != next_class;
  }();

  if (!changed && !pa.force_export) return;
  pa.force_export = false;
  if (have) {
    // Update in place, reusing the previous Selected's vector capacities;
    // the materialized path is refreshed lazily on the next best() access.
    if (!pa.selected.has_value()) pa.selected.emplace();
    Selected& s = *pa.selected;
    s.path_id = next_path;
    s.path_cached = false;
    s.via_link = next_via;
    s.next_hop = next_hop;
    s.age = next_age;
    s.local_pref = next_lp;
    s.self_originated = next_self;
    s.effective_class = next_class;
  } else {
    pa.selected.reset();
  }
  export_from(st, asn);
}

void BgpEngine::export_from(PrefixState& st, Asn asn) {
  PerAs& pa = st.per_as[asn - 1];
  const auto& links = topo_->links_of(asn);
  if (pa.sent.size() != links.size()) pa.sent.assign(links.size(), kNotSent);
  // The exported path is the same for every link (modulo per-link TE, rare);
  // intern the prepend once per export, not once per delivery.
  PathId out_base = kNotSent;
  for (std::size_t slot = 0; slot < links.size(); ++slot) {
    const LinkId lid = links[slot];
    const Link& link = topo_->link(lid);
    if (!topo_->link_alive(link, epoch_)) continue;

    bool allowed = pa.selected.has_value();
    if (allowed && !pa.selected->self_originated) {
      // Split horizon: never advertise back over the link the route came
      // from (the neighbor would reject it by loop prevention anyway).
      if (lid == pa.selected->via_link) allowed = false;
      if (allowed)
        allowed = policy_->export_ok(asn, pa.selected->effective_class, link,
                                     st.prefix);
    } else if (allowed) {
      // Self-originated: respect per-site / selective announcement limits.
      if (!st.options.only_links.empty() &&
          std::find(st.options.only_links.begin(), st.options.only_links.end(),
                    lid) == st.options.only_links.end())
        allowed = false;
      if (allowed)
        allowed = policy_->export_ok(asn, std::nullopt, link, st.prefix);
    }

    if (allowed) {
      if (out_base == kNotSent)
        out_base = table_.prepend(pa.selected->path_id, asn);
      else
        table_.note_reuse(out_base);
      PathId out = out_base;
      if (pa.selected->self_originated) {
        // Inbound TE: per-link AS-path prepending at the origin.
        for (const auto& [plid, count] : st.options.prepend_on)
          if (plid == lid)
            out = table_.prepend_n(out, asn, std::size_t(count));
      }
      if (pa.sent[slot] == out) continue;  // No change.
      pa.sent[slot] = out;
      deliver_update(st, asn, link, out,
                     pa.selected->self_originated
                         ? std::nullopt
                         : pa.selected->effective_class);
    } else {
      if (pa.sent[slot] == kNotSent) continue;  // Nothing previously sent.
      pa.sent[slot] = kNotSent;
      deliver_withdraw(st, asn, link);
    }
  }
}

void BgpEngine::deliver_update(PrefixState& st, Asn from, const Link& link,
                               PathId path,
                               std::optional<Relationship> org_class) {
  ++messages_;
  const Asn to = topo_->other_end(link, from);
  PerAs& pa = st.per_as[to - 1];

  auto slot =
      std::find_if(pa.rib_in.begin(), pa.rib_in.end(),
                   [&](const RibRoute& r) { return r.via_link == link.id; });

  if (table_.contains(path, to)) {
    // Loop prevention (this is what poisoning triggers): the announcement is
    // rejected; if a previous route from this link existed it is implicitly
    // withdrawn.
    if (slot != pa.rib_in.end()) {
      pa.rib_in.erase(slot);
      enqueue(st, to);
    }
    return;
  }

  RibRoute route;
  route.path = path;
  route.via_link = link.id;
  route.from_asn = from;
  route.received_at = ++clock_;
  route.org_class = org_class;
  // Decision-process attributes are fixed per (receiver, link, path): cache
  // them here so select() never calls back into policy or topology.
  const Relationship rel = topo_->relationship_from(link, to);
  // Across sibling links the organizational class is inherited; the
  // composite organization must obey Gao-Rexford toward the outside.
  route.effective_class =
      rel == Relationship::kSibling ? org_class : std::optional{rel};
  route.igp_cost = topo_->igp_cost_from(link, to);
  route.local_pref = policy_->local_pref(to, link, table_, path);
  if (slot != pa.rib_in.end()) {
    // Replacement keeps the original age when the path is unchanged in all
    // but attributes; a genuinely new path gets a fresh age.
    if (slot->path == path) route.received_at = slot->received_at;
    *slot = route;
  } else {
    pa.rib_in.push_back(route);
  }
  enqueue(st, to);
}

void BgpEngine::deliver_withdraw(PrefixState& st, Asn from, const Link& link) {
  ++messages_;
  const Asn to = topo_->other_end(link, from);
  PerAs& pa = st.per_as[to - 1];
  auto slot =
      std::find_if(pa.rib_in.begin(), pa.rib_in.end(),
                   [&](const RibRoute& r) { return r.via_link == link.id; });
  if (slot != pa.rib_in.end()) {
    pa.rib_in.erase(slot);
    enqueue(st, to);
  }
}

const BgpEngine::Selected* BgpEngine::best(Asn asn,
                                           const Ipv4Prefix& prefix) const {
  const PrefixState* st = find_state(prefix);
  if (st == nullptr) return nullptr;
  auto& sel = const_cast<PrefixState*>(st)->per_as[asn - 1].selected;
  if (!sel.has_value()) return nullptr;
  if (!sel->path_cached) {
    // Lazy materialization cache refresh; logically const. Not safe for
    // concurrent first access, but engines are never shared across threads
    // (build_corpus gives each job a private engine).
    table_.materialize_into(sel->path_id, sel->path);
    sel->path_cached = true;
  }
  return &*sel;
}

std::vector<Route> BgpEngine::routes_at(Asn asn,
                                        const Ipv4Prefix& prefix) const {
  const PrefixState* st = find_state(prefix);
  if (st == nullptr) return {};
  const auto& rib = st->per_as[asn - 1].rib_in;
  std::vector<Route> out;
  out.reserve(rib.size());
  for (const RibRoute& r : rib) {
    Route route;
    route.path = table_.materialize(r.path);
    route.via_link = r.via_link;
    route.from_asn = r.from_asn;
    route.received_at = r.received_at;
    route.org_class = r.org_class;
    out.push_back(std::move(route));
  }
  return out;
}

std::optional<Asn> BgpEngine::forward_next_hop(Asn asn,
                                               const Ipv4Prefix& prefix) const {
  const Selected* sel = best(asn, prefix);
  if (sel == nullptr || sel->self_originated) return std::nullopt;
  return sel->next_hop;
}

std::vector<FeedEntry> BgpEngine::feed(std::span<const Asn> peers) const {
  std::vector<FeedEntry> out;
  // Upper bound; prefixes unreachable from a peer are the exception.
  out.reserve(states_.size() * peers.size());
  for (const auto& stp : states_) {
    for (Asn peer : peers) {
      const auto& sel = stp->per_as[peer - 1].selected;
      if (!sel.has_value()) continue;
      FeedEntry e;
      e.peer = peer;
      e.prefix = stp->prefix;
      // Materialize "peer prepended" directly into the entry: one exact-size
      // allocation, no intermediate AsPath copy.
      e.path.hops.reserve(table_.num_hops(sel->path_id) + 1);
      e.path.hops.push_back(peer);
      table_.append_hops(sel->path_id, e.path.hops);
      e.path.poison_set = table_.poison_set(sel->path_id);
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::vector<Ipv4Prefix> BgpEngine::prefixes() const {
  std::vector<Ipv4Prefix> out;
  out.reserve(states_.size());
  for (const auto& stp : states_) out.push_back(stp->prefix);
  return out;
}

EngineCounters BgpEngine::counters() const {
  const PathTable::Stats& ps = table_.stats();
  EngineCounters c;
  c.paths_interned = ps.nodes;
  c.intern_hits = ps.hits;
  c.path_bytes_saved = ps.bytes_saved;
  c.selections_run = selections_;
  c.rib_routes_scanned = rib_scanned_;
  c.states_reused = states_reused_;
  return c;
}

}  // namespace irp
