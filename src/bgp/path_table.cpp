#include "bgp/path_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {
namespace {

std::uint64_t intern_key(Asn head, PathId tail) {
  return (std::uint64_t{head} << 32) | tail;
}

}  // namespace

PathTable::PathTable() {
  // A convergence over a realistic topology interns tens of thousands of
  // paths; pre-sizing the probe table avoids every rehash on that trajectory
  // for the cost of a ~1 MB bucket array (dwarfed by the engine's RIB state).
  intern_.reserve(1 << 17);
  nodes_.reserve(1 << 12);
  nodes_.push_back(Node{});  // kEmptyPathId: empty hops, empty poison set.
  poison_sets_.emplace_back();
  roots_[{}] = kEmptyPathId;
  stats_.nodes = 1;
}

PathId PathTable::root(std::span<const Asn> poison_set) {
  if (poison_set.empty()) return kEmptyPathId;
  std::vector<Asn> key{poison_set.begin(), poison_set.end()};
  auto it = roots_.find(key);
  if (it != roots_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const PathId id = static_cast<PathId>(nodes_.size());
  Node node;
  node.tail = id;
  node.poison = static_cast<std::uint32_t>(poison_sets_.size());
  poison_sets_.push_back(key);
  nodes_.push_back(node);
  roots_.emplace(std::move(key), id);
  ++stats_.nodes;
  ++stats_.poison_sets;
  return id;
}

PathId PathTable::prepend(PathId id, Asn head) {
  IRP_CHECK(head != 0, "cannot prepend ASN 0");
  auto [it, inserted] = intern_.try_emplace(intern_key(head, id), 0);
  if (!inserted) {
    ++stats_.hits;
    // The copy this hit avoided would have duplicated the whole hop vector.
    stats_.bytes_saved += (num_hops(it->second)) * sizeof(Asn);
    return it->second;
  }
  const PathId node_id = static_cast<PathId>(nodes_.size());
  Node node;
  node.head = head;
  node.tail = id;
  node.num_hops = nodes_[id].num_hops + 1;
  node.poison = nodes_[id].poison;
  nodes_.push_back(node);
  it->second = node_id;
  ++stats_.nodes;
  return node_id;
}

PathId PathTable::prepend_n(PathId id, Asn head, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) id = prepend(id, head);
  return id;
}

PathId PathTable::intern(const AsPath& path) {
  PathId id = root(path.poison_set);
  for (auto it = path.hops.rbegin(); it != path.hops.rend(); ++it)
    id = prepend(id, *it);
  return id;
}

bool PathTable::contains(PathId id, Asn asn) const {
  for (PathId cur = id; nodes_[cur].num_hops > 0; cur = nodes_[cur].tail)
    if (nodes_[cur].head == asn) return true;
  const auto& poison = poison_sets_[nodes_[id].poison];
  return std::find(poison.begin(), poison.end(), asn) != poison.end();
}

void PathTable::append_hops(PathId id, std::vector<Asn>& out) const {
  out.reserve(out.size() + num_hops(id));
  for_each_hop(id, [&](Asn asn) { out.push_back(asn); });
}

AsPath PathTable::materialize(PathId id) const {
  AsPath out;
  materialize_into(id, out);
  return out;
}

PathTable PathTable::from_flat(std::span<const FlatNode> nodes,
                               std::vector<std::vector<Asn>> poison_sets) {
  IRP_CHECK(!nodes.empty(), "flat path table has no nodes");
  IRP_CHECK(!poison_sets.empty() && poison_sets[0].empty(),
            "flat path table poison pool must start with the empty set");
  const FlatNode& root0 = nodes[0];
  IRP_CHECK(root0.head == 0 && root0.tail == 0 && root0.num_hops == 0 &&
                root0.poison == 0,
            "flat path table node 0 is not the empty root");

  PathTable table;
  table.nodes_.clear();
  table.nodes_.reserve(nodes.size());
  table.poison_sets_ = std::move(poison_sets);
  table.roots_.clear();
  table.roots_[{}] = kEmptyPathId;

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const FlatNode& fn = nodes[i];
    IRP_CHECK(fn.poison < table.poison_sets_.size(),
              "flat path table node references a missing poison set");
    if (fn.num_hops == 0) {
      // A root: self-referential tail, no head. Node 0 is the empty root;
      // every other root must carry a distinct non-empty poison set.
      IRP_CHECK(fn.head == 0 && fn.tail == i,
                "flat path table root node is malformed");
      if (i > 0) {
        IRP_CHECK(!table.poison_sets_[fn.poison].empty(),
                  "flat path table duplicates the empty root");
        const bool inserted =
            table.roots_
                .emplace(table.poison_sets_[fn.poison],
                         static_cast<PathId>(i))
                .second;
        IRP_CHECK(inserted, "flat path table has duplicate poison roots");
      }
    } else {
      IRP_CHECK(fn.head != 0, "flat path table hop node has no head");
      IRP_CHECK(fn.tail < i, "flat path table tail does not precede node");
      const FlatNode& tail = nodes[fn.tail];
      IRP_CHECK(fn.num_hops == tail.num_hops + 1,
                "flat path table hop count is inconsistent");
      IRP_CHECK(fn.poison == tail.poison,
                "flat path table poison id not inherited from tail");
      const bool inserted =
          table.intern_
              .try_emplace(intern_key(fn.head, fn.tail),
                           static_cast<PathId>(i))
              .second;
      IRP_CHECK(inserted, "flat path table has duplicate interned nodes");
    }
    Node node;
    node.head = fn.head;
    node.tail = fn.tail;
    node.num_hops = fn.num_hops;
    node.poison = fn.poison;
    table.nodes_.push_back(node);
  }

  table.stats_ = Stats{};
  table.stats_.nodes = table.nodes_.size();
  table.stats_.poison_sets = table.poison_sets_.size() - 1;
  return table;
}

void PathTable::materialize_into(PathId id, AsPath& out) const {
  out.hops.clear();
  out.hops.reserve(num_hops(id));
  for_each_hop(id, [&](Asn asn) { out.hops.push_back(asn); });
  out.poison_set = poison_set(id);
}

}  // namespace irp
