#include "bgp/path_table.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace irp {
namespace {

std::uint64_t intern_key(Asn head, PathId tail) {
  return (std::uint64_t{head} << 32) | tail;
}

}  // namespace

PathTable::PathTable() {
  // A convergence over a realistic topology interns tens of thousands of
  // paths; pre-sizing the probe table avoids every rehash on that trajectory
  // for the cost of a ~1 MB bucket array (dwarfed by the engine's RIB state).
  intern_.reserve(1 << 17);
  nodes_.reserve(1 << 12);
  nodes_.push_back(Node{});  // kEmptyPathId: empty hops, empty poison set.
  poison_sets_.emplace_back();
  roots_[{}] = kEmptyPathId;
  stats_.nodes = 1;
}

PathId PathTable::root(std::span<const Asn> poison_set) {
  if (poison_set.empty()) return kEmptyPathId;
  std::vector<Asn> key{poison_set.begin(), poison_set.end()};
  auto it = roots_.find(key);
  if (it != roots_.end()) {
    ++stats_.hits;
    return it->second;
  }
  const PathId id = static_cast<PathId>(nodes_.size());
  Node node;
  node.tail = id;
  node.poison = static_cast<std::uint32_t>(poison_sets_.size());
  poison_sets_.push_back(key);
  nodes_.push_back(node);
  roots_.emplace(std::move(key), id);
  ++stats_.nodes;
  ++stats_.poison_sets;
  return id;
}

PathId PathTable::prepend(PathId id, Asn head) {
  IRP_CHECK(head != 0, "cannot prepend ASN 0");
  auto [it, inserted] = intern_.try_emplace(intern_key(head, id), 0);
  if (!inserted) {
    ++stats_.hits;
    // The copy this hit avoided would have duplicated the whole hop vector.
    stats_.bytes_saved += (num_hops(it->second)) * sizeof(Asn);
    return it->second;
  }
  const PathId node_id = static_cast<PathId>(nodes_.size());
  Node node;
  node.head = head;
  node.tail = id;
  node.num_hops = nodes_[id].num_hops + 1;
  node.poison = nodes_[id].poison;
  nodes_.push_back(node);
  it->second = node_id;
  ++stats_.nodes;
  return node_id;
}

PathId PathTable::prepend_n(PathId id, Asn head, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) id = prepend(id, head);
  return id;
}

PathId PathTable::intern(const AsPath& path) {
  PathId id = root(path.poison_set);
  for (auto it = path.hops.rbegin(); it != path.hops.rend(); ++it)
    id = prepend(id, *it);
  return id;
}

bool PathTable::contains(PathId id, Asn asn) const {
  for (PathId cur = id; nodes_[cur].num_hops > 0; cur = nodes_[cur].tail)
    if (nodes_[cur].head == asn) return true;
  const auto& poison = poison_sets_[nodes_[id].poison];
  return std::find(poison.begin(), poison.end(), asn) != poison.end();
}

void PathTable::append_hops(PathId id, std::vector<Asn>& out) const {
  out.reserve(out.size() + num_hops(id));
  for_each_hop(id, [&](Asn asn) { out.push_back(asn); });
}

AsPath PathTable::materialize(PathId id) const {
  AsPath out;
  materialize_into(id, out);
  return out;
}

void PathTable::materialize_into(PathId id, AsPath& out) const {
  out.hops.clear();
  out.hops.reserve(num_hops(id));
  for_each_hop(id, [&](Asn asn) { out.hops.push_back(asn); });
  out.poison_set = poison_set(id);
}

}  // namespace irp
