// Ground-truth routing policy: import preference and export filtering.
//
// This is the policy the *real* (simulated) Internet runs, deliberately
// richer than Gao-Rexford: sibling transparency, per-link local-pref deltas,
// flat-preference (shortest-path-first) ASes, domestic-path bonuses, and
// partial-transit export restrictions. The analyses later compare measured
// behaviour against the plain GR model, so every knob here is a potential
// source of the paper's "unexpected routing decisions".
#pragma once

#include <optional>

#include "bgp/path_table.hpp"
#include "bgp/route.hpp"
#include "topo/topology.hpp"

namespace irp {

/// Tunable constants of the ground-truth policy.
struct PolicyConfig {
  int lp_customer = 300;
  /// Organizations keep traffic in-org when possible: sibling routes beat
  /// even customer routes. This is what makes multi-ASN organizations
  /// deviate from the per-ASN GR model (§4.2).
  int lp_sibling = 350;
  int lp_peer = 200;
  int lp_provider = 100;
  /// Base used by flat-local-pref (shortest-path-first) ASes for all classes.
  int lp_flat = 200;
  /// Bonus for routes whose whole AS path stays in the AS's home country,
  /// applied only by ASes with `prefers_domestic`.
  int domestic_bonus = 150;
};

/// Computes import local-pref and export permission against a topology.
class GroundTruthPolicy {
 public:
  GroundTruthPolicy(const Topology* topo, PolicyConfig config = {});

  /// Local preference `self` assigns to a route learned over `link`.
  int local_pref(Asn self, const Link& link, const AsPath& path) const;

  /// Interned-path overload used by the engine hot path: identical result,
  /// but walks the path tree instead of requiring a materialized AsPath.
  int local_pref(Asn self, const Link& link, const PathTable& table,
                 PathId path) const;

  /// True if every AS on `path` (and `self`) is registered in the same
  /// country as `self`.
  bool path_is_domestic(Asn self, const AsPath& path) const;

  /// Interned-path overload of path_is_domestic.
  bool path_is_domestic(Asn self, const PathTable& table, PathId path) const;

  /// May `self` export a route to the neighbor over `out_link`?
  /// `learned_rel` is the relationship class the route was learned from
  /// (nullopt for self-originated prefixes).
  bool export_ok(Asn self, std::optional<Relationship> learned_rel,
                 const Link& out_link, const Ipv4Prefix& prefix) const;

  /// Partial-transit prefix selection: whether a partial-transit provider
  /// serves `prefix` over `link` (deterministic hash; roughly half).
  static bool partial_transit_serves(const Ipv4Prefix& prefix,
                                     const Link& link);

  const PolicyConfig& config() const { return config_; }

 private:
  /// Relationship/TE part of local-pref, shared by both overloads.
  int local_pref_base(Asn self, const Link& link) const;

  const Topology* topo_;
  PolicyConfig config_;
};

}  // namespace irp
