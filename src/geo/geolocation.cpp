#include "geo/geolocation.hpp"

#include "util/check.hpp"

namespace irp {

GeoDatabase::GeoDatabase(const World* world, double error_rate, Rng rng)
    : world_(world), error_rate_(error_rate), rng_(rng) {
  IRP_CHECK(world_ != nullptr, "GeoDatabase requires a world");
  IRP_CHECK(error_rate_ >= 0.0 && error_rate_ <= 1.0,
            "error rate must be a probability");
}

void GeoDatabase::register_prefix(const Ipv4Prefix& prefix, CityId true_city) {
  CityId recorded = true_city;
  if (rng_.chance(error_rate_)) {
    // Replace with a random city on the same continent — real geolocation is
    // usually continent-correct but city-wrong.
    const Continent continent = world_->continent_of_city(true_city);
    const auto& countries = world_->countries_in(continent);
    const CountryId country = rng_.pick(countries);
    recorded = rng_.pick(world_->cities_in(country));
    if (recorded != true_city) ++errors_;
  }
  trie_.insert(prefix, recorded);
}

std::optional<CityId> GeoDatabase::locate_city(Ipv4Addr addr) const {
  return trie_.lookup(addr);
}

std::optional<CountryId> GeoDatabase::locate_country(Ipv4Addr addr) const {
  const auto city = locate_city(addr);
  if (!city) return std::nullopt;
  return world_->city(*city).country;
}

std::optional<Continent> GeoDatabase::locate_continent(Ipv4Addr addr) const {
  const auto country = locate_country(addr);
  if (!country) return std::nullopt;
  return world_->continent_of_country(*country);
}

}  // namespace irp
