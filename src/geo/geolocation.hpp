// IP geolocation database (Alidade stand-in, §4.1 of the paper).
//
// The paper geolocates router IPs to cities in order to (a) scope hybrid
// relationships to the cities where they apply, (b) isolate continental
// traceroutes, and (c) detect domestic paths. Our database maps prefixes to
// the cities where the owning AS deployed them; a configurable error rate
// replaces the true city with a random same-continent city, modelling the
// imperfect accuracy of real geolocation services.
#pragma once

#include <optional>

#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"

namespace irp {

/// Prefix-to-city geolocation with injected, deterministic error.
class GeoDatabase {
 public:
  /// `error_rate` is the probability that a registered prefix is recorded
  /// at a wrong (same-continent) city.
  GeoDatabase(const World* world, double error_rate, Rng rng);

  /// Registers a prefix at its true city; error injection happens here so
  /// that lookups are pure.
  void register_prefix(const Ipv4Prefix& prefix, CityId true_city);

  /// City for an address, by longest-prefix match.
  std::optional<CityId> locate_city(Ipv4Addr addr) const;

  /// Country for an address.
  std::optional<CountryId> locate_country(Ipv4Addr addr) const;

  /// Continent for an address.
  std::optional<Continent> locate_continent(Ipv4Addr addr) const;

  /// Number of registered prefixes.
  std::size_t size() const { return trie_.size(); }

  /// Number of prefixes whose recorded city differs from the truth.
  std::size_t errors_injected() const { return errors_; }

 private:
  const World* world_;
  double error_rate_;
  Rng rng_;
  PrefixTrie<CityId> trie_;
  std::size_t errors_ = 0;
};

}  // namespace irp
