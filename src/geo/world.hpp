// Geographic model: continents, countries, and cities.
//
// Geography drives several of the paper's analyses: continental vs
// intercontinental traceroutes (Figure 3), domestic-path preference
// (Table 3), hybrid per-city relationships (§4.1), and undersea cables (§6).
// The world is synthetic but spatially coherent: countries live inside
// continent bounding boxes and cities inside country neighborhoods, so
// great-circle distances behave sensibly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace irp {

/// The six inhabited continents, matching the paper's Table 3 rows.
enum class Continent : std::uint8_t {
  kAfrica,
  kAsia,
  kEurope,
  kNorthAmerica,
  kOceania,
  kSouthAmerica,
};

inline constexpr int kNumContinents = 6;

/// Short code used in reports, e.g. "EU".
std::string_view continent_code(Continent c);

/// Full name, e.g. "Europe".
std::string_view continent_name(Continent c);

/// All continents in enum order.
std::vector<Continent> all_continents();

using CountryId = std::uint32_t;
using CityId = std::uint32_t;

/// A country: belongs to one continent; identified by a synthetic ISO-like
/// two-letter code used as the whois registration country.
struct Country {
  CountryId id = 0;
  std::string code;      ///< e.g. "E3" — synthetic two-character code.
  Continent continent = Continent::kEurope;
};

/// A city: a point location inside one country, used for link placement,
/// hybrid-relationship scoping, and geolocation.
struct City {
  CityId id = 0;
  std::string name;      ///< e.g. "e3-city2".
  CountryId country = 0;
  double latitude = 0.0;
  double longitude = 0.0;
};

/// Default per-continent country-count overrides: North America gets a few
/// large countries (US-like), which matters for the domestic-path analysis —
/// a dense national mesh keeps model-preferred paths domestic.
/// (A function rather than an NSDMI initializer list: GCC 12 emits a
/// spurious -Wmaybe-uninitialized for the latter.)
inline std::vector<std::pair<Continent, int>> default_country_overrides() {
  std::vector<std::pair<Continent, int>> overrides;
  overrides.emplace_back(Continent::kNorthAmerica, 4);
  return overrides;
}

/// Parameters for synthetic world generation.
struct WorldConfig {
  int countries_per_continent = 8;
  int cities_per_country = 3;
  /// Per-continent country-count overrides; see default_country_overrides().
  std::vector<std::pair<Continent, int>> country_overrides =
      default_country_overrides();
};

/// The immutable geographic universe a study runs in.
class World {
 public:
  /// Generates a world deterministically from `rng`.
  static World generate(const WorldConfig& config, Rng& rng);

  const std::vector<Country>& countries() const { return countries_; }
  const std::vector<City>& cities() const { return cities_; }

  const Country& country(CountryId id) const;
  const City& city(CityId id) const;

  Continent continent_of_city(CityId id) const;
  Continent continent_of_country(CountryId id) const;

  /// All cities of a country.
  const std::vector<CityId>& cities_in(CountryId id) const;

  /// All countries of a continent.
  const std::vector<CountryId>& countries_in(Continent c) const;

  /// Great-circle distance between two cities in kilometers.
  double distance_km(CityId a, CityId b) const;

 private:
  std::vector<Country> countries_;
  std::vector<City> cities_;
  std::vector<std::vector<CityId>> cities_by_country_;
  std::vector<std::vector<CountryId>> countries_by_continent_;
};

/// Great-circle distance between two lat/lon points in kilometers.
double great_circle_km(double lat1, double lon1, double lat2, double lon2);

}  // namespace irp
