#include "geo/world.hpp"

#include <cmath>

#include "util/check.hpp"

namespace irp {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;

/// Rough bounding boxes (lat_min, lat_max, lon_min, lon_max) per continent.
struct Box {
  double lat_min, lat_max, lon_min, lon_max;
};

Box continent_box(Continent c) {
  switch (c) {
    case Continent::kAfrica:       return {-30.0, 30.0, -15.0, 45.0};
    case Continent::kAsia:         return {5.0, 55.0, 60.0, 140.0};
    case Continent::kEurope:       return {38.0, 60.0, -8.0, 30.0};
    case Continent::kNorthAmerica: return {25.0, 50.0, -120.0, -70.0};
    case Continent::kOceania:      return {-40.0, -12.0, 115.0, 175.0};
    case Continent::kSouthAmerica: return {-35.0, 5.0, -75.0, -40.0};
  }
  IRP_UNREACHABLE("unknown continent");
}

char continent_letter(Continent c) {
  switch (c) {
    case Continent::kAfrica:       return 'f';
    case Continent::kAsia:         return 'a';
    case Continent::kEurope:       return 'e';
    case Continent::kNorthAmerica: return 'n';
    case Continent::kOceania:      return 'o';
    case Continent::kSouthAmerica: return 's';
  }
  IRP_UNREACHABLE("unknown continent");
}

}  // namespace

std::string_view continent_code(Continent c) {
  switch (c) {
    case Continent::kAfrica:       return "AF";
    case Continent::kAsia:         return "AS";
    case Continent::kEurope:       return "EU";
    case Continent::kNorthAmerica: return "NA";
    case Continent::kOceania:      return "OC";
    case Continent::kSouthAmerica: return "SA";
  }
  IRP_UNREACHABLE("unknown continent");
}

std::string_view continent_name(Continent c) {
  switch (c) {
    case Continent::kAfrica:       return "Africa";
    case Continent::kAsia:         return "Asia";
    case Continent::kEurope:       return "Europe";
    case Continent::kNorthAmerica: return "N. America";
    case Continent::kOceania:      return "Oceania";
    case Continent::kSouthAmerica: return "S. America";
  }
  IRP_UNREACHABLE("unknown continent");
}

std::vector<Continent> all_continents() {
  return {Continent::kAfrica,       Continent::kAsia,
          Continent::kEurope,       Continent::kNorthAmerica,
          Continent::kOceania,      Continent::kSouthAmerica};
}

World World::generate(const WorldConfig& config, Rng& rng) {
  IRP_CHECK(config.countries_per_continent > 0, "need at least one country");
  IRP_CHECK(config.cities_per_country > 0, "need at least one city");

  World world;
  world.countries_by_continent_.resize(kNumContinents);
  for (Continent continent : all_continents()) {
    const Box box = continent_box(continent);
    int countries = config.countries_per_continent;
    for (const auto& [c, n] : config.country_overrides)
      if (c == continent) countries = n;
    for (int i = 0; i < countries; ++i) {
      Country country;
      country.id = static_cast<CountryId>(world.countries_.size());
      country.code = std::string{continent_letter(continent)} +
                     std::to_string(i);
      country.continent = continent;

      // Country anchor point inside the continent box; cities cluster near it.
      const double anchor_lat = rng.uniform(box.lat_min, box.lat_max);
      const double anchor_lon = rng.uniform(box.lon_min, box.lon_max);

      world.cities_by_country_.emplace_back();
      for (int j = 0; j < config.cities_per_country; ++j) {
        City city;
        city.id = static_cast<CityId>(world.cities_.size());
        city.name = country.code + "-city" + std::to_string(j);
        city.country = country.id;
        city.latitude = anchor_lat + rng.uniform(-2.0, 2.0);
        city.longitude = anchor_lon + rng.uniform(-2.0, 2.0);
        world.cities_by_country_.back().push_back(city.id);
        world.cities_.push_back(std::move(city));
      }
      world.countries_by_continent_[static_cast<int>(continent)].push_back(
          country.id);
      world.countries_.push_back(std::move(country));
    }
  }
  return world;
}

const Country& World::country(CountryId id) const {
  IRP_CHECK(id < countries_.size(), "country id out of range");
  return countries_[id];
}

const City& World::city(CityId id) const {
  IRP_CHECK(id < cities_.size(), "city id out of range");
  return cities_[id];
}

Continent World::continent_of_city(CityId id) const {
  return country(city(id).country).continent;
}

Continent World::continent_of_country(CountryId id) const {
  return country(id).continent;
}

const std::vector<CityId>& World::cities_in(CountryId id) const {
  IRP_CHECK(id < cities_by_country_.size(), "country id out of range");
  return cities_by_country_[id];
}

const std::vector<CountryId>& World::countries_in(Continent c) const {
  return countries_by_continent_[static_cast<int>(c)];
}

double World::distance_km(CityId a, CityId b) const {
  const City& ca = city(a);
  const City& cb = city(b);
  return great_circle_km(ca.latitude, ca.longitude, cb.latitude, cb.longitude);
}

double great_circle_km(double lat1, double lon1, double lat2, double lon2) {
  const double phi1 = lat1 * kPi / 180.0;
  const double phi2 = lat2 * kPi / 180.0;
  const double dphi = (lat2 - lat1) * kPi / 180.0;
  const double dlambda = (lon2 - lon1) * kPi / 180.0;
  const double a = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlambda / 2) *
                       std::sin(dlambda / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(a)));
}

}  // namespace irp
