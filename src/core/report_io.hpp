// CSV export of every report, so figures can be re-plotted externally.
//
// Each function returns RFC-4180-ish CSV text (header row + data rows,
// fields quoted only when needed). write_all_reports() drops one file per
// table/figure into a directory.
#pragma once

#include <string>

#include "core/reports.hpp"
#include "core/study.hpp"

namespace irp {

std::string table1_csv(const Table1Report& r);
std::string figure1_csv(const Figure1Report& r);
std::string figure2_csv(const SkewReport& r);
std::string figure3_csv(const Figure3Report& r);
std::string table2_csv(const Table2Report& r);
std::string table3_csv(const Table3Report& r);
std::string table4_csv(const Table4Report& r);
std::string alternate_csv(const AlternateRouteReport& r);
std::string psp_csv(const PspValidationReport& r);

/// Writes every report of a study into `directory` (created, including
/// parents, if missing) as <name>.csv files. Returns the number of files
/// written. Throws CheckError with the failing path when the directory
/// cannot be created or a file cannot be written (e.g. unwritable target).
int write_all_reports(const StudyResults& results,
                      const std::string& directory);

}  // namespace irp
