// Gao-Rexford path computation over an inferred topology (§3.3).
//
// For a destination AS d, computes for every AS x the set of GR-valid
// (valley-free, export-policy respecting) routes available, summarized as:
//   * the shortest path length whose first hop is a customer / peer /
//     provider of x, and
//   * witness paths for those lengths.
// "Best" relationship class at x is the cheapest class with any GR-valid
// route; "Short" is the overall shortest GR-valid length (§3.3's two
// properties). An optional first-hop filter into the destination models
// prefix-specific policies: edge N->d is only usable if the origin was seen
// announcing the prefix to N (§4.3 criteria).
//
// Implementation: the classic three-stage relaxation —
//   customer routes by BFS from d along provider edges (all-down paths),
//   peer routes as one peer hop onto a customer route,
//   provider routes by a Dijkstra-style descent (up*; the suffix after the
//   first down/flat step must itself be valley-free).
//
// Approximation note (standard in GR simulators): the per-class lengths of
// length_via() may count valley-free walks whose continuation passes back
// through the source AS — routes BGP loop prevention would reject. Because
// any such walk has a strictly shorter simple suffix starting at the source,
// best_class() and shortest_length() (the only quantities the decision
// classifier consumes) are exact; only a class-specific length can be
// optimistic when that class has no simple route at all.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "inference/relationships.hpp"
#include "topo/types.hpp"

namespace irp {

inline constexpr std::size_t kUnreachable =
    std::numeric_limits<std::size_t>::max();

/// Per-destination GR route summary for every AS.
class GrPathSet {
 public:
  /// Shortest GR path length from `asn` whose first hop has the given
  /// relationship class; kUnreachable if no such route exists.
  std::size_t length_via(Asn asn, Relationship first_hop_class) const;

  /// Cheapest relationship class with any GR route at `asn`.
  std::optional<Relationship> best_class(Asn asn) const;

  /// Shortest GR path length at `asn` over all classes.
  std::size_t shortest_length(Asn asn) const;

  /// A witness shortest GR path from `asn` to the destination (excluding
  /// `asn` itself, ending at the destination); empty if unreachable.
  std::vector<Asn> witness_shortest(Asn asn) const;

  Asn destination() const { return dest_; }

 private:
  friend class GrModel;
  Asn dest_ = 0;
  // Index 0 unused; sized num_ases + 1.
  std::vector<std::size_t> cust_, peer_, prov_;
  std::vector<Asn> cust_parent_, peer_parent_, prov_parent_;
};

/// First-hop admission filter: may the edge (neighbor -> destination) be
/// used for this computation? (Prefix-specific policy restriction.)
using OriginEdgeFilter = std::function<bool(Asn neighbor)>;

/// Computes GrPathSets over a fixed inferred topology.
class GrModel {
 public:
  /// `num_ases` bounds the dense ASN space (ASNs are 1..num_ases).
  GrModel(const InferredTopology* topo, std::size_t num_ases);

  /// Computes the GR route summary toward `dest`. If `filter` is provided,
  /// only neighbors passing it may use their direct edge to `dest`.
  GrPathSet compute(Asn dest, const OriginEdgeFilter& filter = nullptr) const;

  std::size_t num_ases() const { return num_ases_; }

 private:
  struct Edge {
    Asn neighbor;
    Relationship rel;  ///< Role of `neighbor` from the local AS.
  };

  const InferredTopology* topo_;
  std::size_t num_ases_;
  std::vector<std::vector<Edge>> adj_;  ///< Dense adjacency, index = ASN.
};

}  // namespace irp
