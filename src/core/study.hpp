// Full-study orchestration: one call reproduces every experiment.
#pragma once

#include <memory>

#include "core/active_study.hpp"
#include "core/analysis.hpp"
#include "core/extended_model.hpp"
#include "core/looking_glass.hpp"
#include "core/passive_study.hpp"
#include "core/reports.hpp"
#include "topo/generator.hpp"

namespace irp {

/// End-to-end study configuration.
struct StudyConfig {
  GeneratorConfig generator;
  PassiveStudyConfig passive;
  ActiveConfig active;
  bool run_active = true;
};

/// Everything the study produced: the simulated Internet, the passive
/// dataset, and one report per paper table/figure.
struct StudyResults {
  std::unique_ptr<GeneratedInternet> net;
  PassiveDataset passive;

  Table1Report table1;
  Figure1Report figure1;
  SkewReport skew;                 // Figure 2.
  Figure3Report figure3;
  Table3Report table3;
  Table4Report table4;
  AlternateRouteReport alternate;  // §3.2/§4.4.
  Table2Report table2;
  PspValidationReport psp;         // §4.3 validation.
  ExtendedModelReport extended;    // §7 future work, implemented.

  StudyResults() = default;
  StudyResults(const StudyResults&) = delete;
  StudyResults& operator=(const StudyResults&) = delete;
  StudyResults(StudyResults&&) = default;
  StudyResults& operator=(StudyResults&&) = default;
};

/// Runs the whole study (generation, passive campaign, all analyses, and —
/// unless disabled — the active experiments).
StudyResults run_full_study(const StudyConfig& config);

}  // namespace irp
