#include "core/decisions.hpp"

#include "util/check.hpp"

namespace irp {

std::string_view decision_category_name(DecisionCategory c) {
  switch (c) {
    case DecisionCategory::kBestShort:    return "Best/Short";
    case DecisionCategory::kNonBestShort: return "NonBest/Short";
    case DecisionCategory::kBestLong:     return "Best/Long";
    case DecisionCategory::kNonBestLong:  return "NonBest/Long";
  }
  IRP_UNREACHABLE("unknown category");
}

}  // namespace irp
