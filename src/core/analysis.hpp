// The paper's passive-measurement analyses (§4, §5, §6): refinement ladder,
// skew by source/destination, and geography.
#pragma once

#include <memory>
#include <optional>

#include "core/classify.hpp"
#include "core/passive_study.hpp"
#include "core/reports.hpp"
#include "topo/generator.hpp"

namespace irp {

/// Builds a classifier over the dataset's inferred topology and refinement
/// datasets; the classifier borrows the dataset (keep `ds` alive).
DecisionClassifier make_classifier(const PassiveDataset& ds);

/// Per-traceroute geographic summary, resolved through the (imperfect)
/// geolocation database — never through ground truth.
struct TracerouteGeo {
  std::optional<Continent> single_continent;  ///< Set when all hops agree.
  std::optional<CountryId> single_country;    ///< Set when all hops agree.
};

/// Geolocates every traceroute of the dataset.
std::vector<TracerouteGeo> geolocate_traceroutes(const PassiveDataset& ds,
                                                 const GeneratedInternet& net);

/// Table 1 — probe distribution by AS type.
Table1Report compute_table1(const PassiveDataset& ds,
                            const GeneratedInternet& net);

/// Figure 1 — decision breakdown per refinement scenario.
Figure1Report compute_figure1(const PassiveDataset& ds,
                              const DecisionClassifier& classifier);

/// Figure 2 — violation skew across source and destination ASes (§5).
SkewReport compute_skew(const PassiveDataset& ds, const GeneratedInternet& net,
                        const DecisionClassifier& classifier);

/// Figure 3 — continental vs intercontinental breakdown (§6).
Figure3Report compute_figure3(const PassiveDataset& ds,
                              const GeneratedInternet& net,
                              const DecisionClassifier& classifier);

/// Table 3 — domestic-path preference (§6).
Table3Report compute_table3(const PassiveDataset& ds,
                            const GeneratedInternet& net,
                            const DecisionClassifier& classifier);

/// Table 4 — undersea-cable attribution (§6).
Table4Report compute_table4(const PassiveDataset& ds,
                            const GeneratedInternet& net,
                            const DecisionClassifier& classifier);

/// Removes pairs whose adjacency is stale (last seen before `epoch`)
/// according to the neighbor-history service. Used to quantify how many
/// violations stale links cause (§5's Netflix/AS3549 case).
InferredTopology prune_stale_links(const InferredTopology& topo,
                                   const NeighborHistoryDb& history,
                                   int epoch);

}  // namespace irp
