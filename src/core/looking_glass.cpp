#include "core/looking_glass.hpp"

#include <set>

namespace irp {

PspValidationReport validate_psp(const PassiveDataset& ds,
                                 const GeneratedInternet& net,
                                 const DecisionClassifier& classifier) {
  const ScenarioOptions simple;
  const ScenarioOptions psp1{.psp = PspMode::kCriteria1};

  // PSP cases: violations the criteria-1 restriction explains.
  std::set<std::pair<Asn, Ipv4Prefix>> cases;
  for (const RouteDecision& d : ds.decisions) {
    if (!is_violation(classifier.classify(d, simple))) continue;
    if (is_violation(classifier.classify(d, psp1))) continue;
    cases.insert({d.dest_asn, d.dst_prefix});
  }

  PspValidationReport report;
  report.psp_cases = cases.size();

  std::set<Asn> neighbors_seen;
  std::set<Asn> neighbors_lg;
  for (const auto& [origin, prefix] : cases) {
    for (Asn n : ds.inferred.neighbors(origin)) {
      // Criteria 1 removed the edge n->origin for this prefix iff the feeds
      // never showed origin announcing the prefix to n.
      if (ds.observations.announced(origin, n, prefix)) continue;
      neighbors_seen.insert(n);
      if (!net.topology.as_node(n).has_looking_glass) continue;
      neighbors_lg.insert(n);

      // Looking-glass query: does n hold a route for the prefix learned
      // directly from origin?
      bool has_route_from_origin = false;
      for (const Route& r : ds.engine->routes_at(n, prefix))
        if (r.from_asn == origin) has_route_from_origin = true;
      ++report.checked;
      if (!has_route_from_origin) ++report.correct;
    }
  }
  report.unique_neighbors = neighbors_seen.size();
  report.neighbors_with_lg = neighbors_lg.size();
  return report;
}

}  // namespace irp
