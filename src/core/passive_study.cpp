#include "core/passive_study.hpp"

#include <algorithm>
#include <map>

#include "dataplane/dns.hpp"
#include "util/check.hpp"

namespace irp {
namespace {

/// Collects the ASes whose prefixes must be live in the measurement engine:
/// content origins (and their sibling ASNs) plus every cache host.
std::vector<Asn> content_related_ases(const GeneratedInternet& net) {
  std::set<Asn> ases;
  for (const auto& service : net.content.services()) {
    ases.insert(service.origin_asn);
    for (const auto& cache : service.caches) ases.insert(cache.host_asn);
  }
  for (Asn asn : net.content_asns) ases.insert(asn);
  return {ases.begin(), ases.end()};
}

/// Runs per-epoch chunked convergences announcing one prefix per AS and
/// feeds the corpus — the route-collector view of each monthly snapshot.
///
/// Each (epoch, batch) convergence owns a private BgpEngine over the shared
/// immutable topology/policy, so batches run concurrently on `pool`; feeds
/// are merged in deterministic (epoch, batch-index) order afterwards, which
/// keeps the corpus byte-identical to a serial run.
void build_corpus(const GeneratedInternet& net, const GroundTruthPolicy& policy,
                  int batch, ThreadPool& pool, PathCorpus& corpus) {
  const Topology& topo = net.topology;
  std::vector<std::pair<Ipv4Prefix, Asn>> origins;
  topo.for_each_as([&](const AsNode& node) {
    if (!node.prefixes.empty())
      origins.emplace_back(node.prefixes.front().prefix, node.asn);
  });

  struct Job {
    int epoch;
    std::size_t start;
  };
  std::vector<Job> jobs;
  for (int epoch = 0; epoch <= net.measurement_epoch; ++epoch)
    for (std::size_t start = 0; start < origins.size();
         start += static_cast<std::size_t>(batch))
      jobs.push_back({epoch, start});

  // Engines are short-lived (one per job) but their per-prefix state is
  // O(num_ases · batch); the shared pool recycles it across jobs instead of
  // re-mallocing it for every (epoch, batch).
  BgpEngine::StatePool state_pool;
  const std::vector<std::vector<FeedEntry>> feeds =
      pool.parallel_map(jobs.size(), [&](std::size_t j) {
        const Job& job = jobs[j];
        BgpEngine engine{&topo, &policy, job.epoch, &state_pool};
        const std::size_t end = std::min(
            origins.size(), job.start + static_cast<std::size_t>(batch));
        for (std::size_t i = job.start; i < end; ++i)
          engine.announce(origins[i].first, origins[i].second);
        engine.run();
        return engine.feed(net.collector_peers);
      });

  for (std::size_t j = 0; j < jobs.size(); ++j)
    for (const FeedEntry& e : feeds[j]) corpus.add_feed(jobs[j].epoch, e);
}

}  // namespace

void announce_all(BgpEngine& engine, const Topology& topo,
                  const std::vector<Asn>& origins) {
  for (Asn asn : origins) {
    const AsNode& node = topo.as_node(asn);
    for (const auto& op : node.prefixes) {
      AnnounceOptions options;
      options.only_links = op.announce_only_on;
      options.prepend_on = op.prepend_on;
      engine.announce(op.prefix, asn, std::move(options));
    }
  }
  engine.run();
}

PassiveDataset run_passive_study(const GeneratedInternet& net,
                                 const PassiveStudyConfig& config) {
  PassiveDataset ds;
  Rng rng{config.seed};
  const Topology& topo = net.topology;
  ThreadPool pool{config.parallel.threads};

  ds.policy = std::make_unique<GroundTruthPolicy>(&topo);

  // -- 1. Inference corpus across all snapshots.
  build_corpus(net, *ds.policy, config.snapshot_batch, pool, ds.corpus);

  // -- 2. Measurement-epoch engine with all content-related prefixes.
  ds.engine = std::make_unique<BgpEngine>(&topo, ds.policy.get(),
                                          net.measurement_epoch);
  announce_all(*ds.engine, topo, content_related_ases(net));

  // -- 3. Probes and traceroutes.
  ProbeSampler sampler{&topo, &net.world, config.probes, rng.fork()};
  const auto population = sampler.platform_population();
  ds.probes = sampler.sample(population);

  ds.ip_to_as = IpToAsMap::from_topology(topo);
  ContentResolver resolver{&topo, &net.world, &net.content};
  TracerouteSim tracer{&topo, ds.engine.get()};

  // Hostname list, shuffled once; each probe measures a rotating window so
  // every hostname is covered while respecting the probing budget.
  std::vector<std::string> hostnames;
  for (const auto& service : net.content.services())
    for (const auto& h : service.hostnames) {
      hostnames.push_back(h.name);
      // The wide deployers are the traffic heavyweights (the study selected
      // its targets by downstream bytes): weight their hostnames double.
      if (service.wide_deployment) hostnames.push_back(h.name);
    }
  rng.shuffle(hostnames);
  IRP_CHECK(!hostnames.empty(), "no content hostnames to measure");
  const int per_probe =
      std::min<int>(config.hostnames_per_probe, int(hostnames.size()));

  for (std::size_t pi = 0; pi < ds.probes.size(); ++pi) {
    const Probe& probe = ds.probes[pi];
    for (int h = 0; h < per_probe; ++h) {
      const std::string& hostname =
          hostnames[(pi * per_probe + h) % hostnames.size()];
      const auto answer = resolver.resolve(hostname, probe.asn);
      IRP_CHECK(answer.has_value(), "catalog hostname failed to resolve");
      auto tr = tracer.run(probe.asn, probe.address, answer->address,
                           answer->prefix);
      if (!tr) continue;  // Probe's AS has no route at all.
      tr->hostname = hostname;
      ds.traceroutes.push_back(std::move(*tr));
    }
  }

  // -- 4. Convert to AS paths and extract decisions.
  std::set<Asn> dest_ases;
  std::set<Asn> decider_ases;
  for (std::size_t ti = 0; ti < ds.traceroutes.size(); ++ti) {
    const Traceroute& tr = ds.traceroutes[ti];
    if (!tr.reached) continue;
    std::vector<Ipv4Addr> ips{tr.src_address};
    for (const auto& hop : tr.hops) ips.push_back(hop.address);
    const std::vector<Asn> as_path = ds.ip_to_as.as_path_of(ips);
    if (as_path.size() < 2) continue;
    dest_ases.insert(as_path.back());

    // City where each AS was entered (first hop mapping to that AS),
    // resolved through the (imperfect) geolocation database.
    std::map<Asn, CityId> entry_city;
    for (const auto& hop : tr.hops) {
      const auto asn = ds.ip_to_as.lookup(hop.address);
      if (!asn || entry_city.count(*asn)) continue;
      const auto city = net.geo->locate_city(hop.address);
      if (city) entry_city[*asn] = *city;
    }

    for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
      RouteDecision d;
      d.decider = as_path[i];
      d.next_hop = as_path[i + 1];
      d.dest_asn = as_path.back();
      d.src_asn = as_path.front();
      d.remaining_len = as_path.size() - 1 - i;
      d.dst_prefix = tr.dst_prefix;
      d.origin_asn = as_path.back();
      auto city = entry_city.find(d.next_hop);
      if (city != entry_city.end()) d.interconnect_city = city->second;
      d.measured_remaining.assign(as_path.begin() + long(i), as_path.end());
      d.traceroute_index = ti;
      decider_ases.insert(d.decider);
      ds.decisions.push_back(std::move(d));
    }
  }
  ds.num_destination_ases = dest_ases.size();
  ds.num_observed_decider_ases = decider_ases.size();

  // -- 5. Inference products.
  ds.measurement_feed = ds.engine->feed(net.collector_peers);
  for (const FeedEntry& e : ds.measurement_feed)
    ds.corpus.add_feed(net.measurement_epoch, e);

  // Per-snapshot inference is a pure function of the (now frozen) corpus;
  // parallel_map returns the snapshots in ascending epoch order regardless
  // of which thread computed which epoch.
  ds.snapshots = pool.parallel_map(
      static_cast<std::size_t>(net.measurement_epoch + 1),
      [&](std::size_t epoch) {
        return infer_snapshot(ds.corpus.paths(static_cast<int>(epoch)),
                              config.inference);
      });
  ds.inferred = aggregate_snapshots(ds.snapshots);

  ds.siblings = infer_siblings(net.whois, net.soa);
  Rng hybrid_rng = rng.fork();
  ds.hybrid = build_hybrid_dataset(topo, config.hybrid_coverage, hybrid_rng);
  ds.observations.ingest(ds.measurement_feed);

  return ds;
}

}  // namespace irp
