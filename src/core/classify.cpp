#include "core/classify.hpp"

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace irp {

std::vector<NamedScenario> figure1_scenarios() {
  return {
      {"Simple", {}},
      {"Complex", {.use_hybrid = true}},
      {"Sibs", {.use_siblings = true}},
      {"PSP-1", {.psp = PspMode::kCriteria1}},
      {"PSP-2", {.psp = PspMode::kCriteria2}},
      {"All-1",
       {.use_hybrid = true, .use_siblings = true, .psp = PspMode::kCriteria1}},
      {"All-2",
       {.use_hybrid = true, .use_siblings = true, .psp = PspMode::kCriteria2}},
  };
}

DecisionClassifier::DecisionClassifier(const InferredTopology* topo,
                                       std::size_t num_ases,
                                       const HybridDataset* hybrid,
                                       const SiblingGroups* siblings,
                                       const BgpObservations* observations)
    : topo_(topo),
      model_(topo, num_ases),
      hybrid_(hybrid),
      siblings_(siblings),
      observations_(observations) {
  IRP_CHECK(topo_ != nullptr, "classifier requires an inferred topology");
}

DecisionClassifier::CacheKey DecisionClassifier::cache_key(
    const RouteDecision& d, const ScenarioOptions& opts) const {
  // The PSP filter only constrains edges incident to the destination, and
  // depends on (origin, prefix); scenarios without PSP share one entry, and
  // under PSP each destination prefix gets its own entry.
  const bool psp_active =
      opts.psp != PspMode::kNone && observations_ != nullptr;
  return CacheKey{d.dest_asn, psp_active ? int(opts.psp) : 0,
                  psp_active ? d.dst_prefix : Ipv4Prefix{}};
}

const GrPathSet& DecisionClassifier::path_set(
    const RouteDecision& d, const ScenarioOptions& opts) const {
  CacheEntry* entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    std::unique_ptr<CacheEntry>& slot = cache_[cache_key(d, opts)];
    if (!slot) slot = std::make_unique<CacheEntry>();
    entry = slot.get();
  }

  // Compute outside the map lock (other keys proceed concurrently) but
  // exactly once per key: losers of the race block until the winner's
  // result is visible, never recompute.
  std::call_once(entry->once, [&] {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);

    OriginEdgeFilter filter;
    const bool psp_active =
        opts.psp != PspMode::kNone && observations_ != nullptr;
    if (psp_active) {
      const Asn origin = d.dest_asn;
      const Ipv4Prefix prefix = d.dst_prefix;
      const BgpObservations* obs = observations_;
      if (opts.psp == PspMode::kCriteria1) {
        // Criteria 1: the edge N->O exists for P only if O was seen
        // announcing P to N.
        filter = [obs, origin, prefix](Asn neighbor) {
          return obs->announced(origin, neighbor, prefix);
        };
      } else {
        // Criteria 2: apply criteria 1 only when O->N was observed for at
        // least one prefix (otherwise the silence may be poor visibility).
        filter = [obs, origin, prefix](Asn neighbor) {
          if (!obs->announced_any(origin, neighbor)) return true;
          return obs->announced(origin, neighbor, prefix);
        };
      }
    }
    entry->set = model_.compute(d.dest_asn, filter);
  });
  return entry->set;
}

void DecisionClassifier::precompute(
    const std::vector<RouteDecision>& decisions, int threads) const {
  // Deduplicate up front so the pool sees one job per distinct cache key;
  // keep a representative decision (+ scenario) per key to rebuild the
  // filter. All Figure 1 scenarios map onto the three PSP modes.
  std::map<CacheKey, std::pair<const RouteDecision*, ScenarioOptions>> work;
  for (const NamedScenario& scenario : figure1_scenarios())
    for (const RouteDecision& d : decisions)
      work.emplace(cache_key(d, scenario.options),
                   std::make_pair(&d, scenario.options));

  std::vector<std::pair<const RouteDecision*, ScenarioOptions>> jobs;
  jobs.reserve(work.size());
  for (const auto& [key, job] : work) jobs.push_back(job);

  ThreadPool pool{threads};
  pool.parallel_for(0, jobs.size(), [&](std::size_t i) {
    path_set(*jobs[i].first, jobs[i].second);
  });
}

std::optional<Relationship> DecisionClassifier::effective_relationship(
    const RouteDecision& d, const ScenarioOptions& opts) const {
  std::optional<Relationship> rel =
      topo_->relationship(d.decider, d.next_hop);
  if (opts.use_hybrid && hybrid_ != nullptr && d.interconnect_city) {
    const auto h = hybrid_->relationship_at(d.decider, d.next_hop,
                                            *d.interconnect_city);
    if (h) rel = h;
  }
  return rel;
}

bool DecisionClassifier::is_best(const RouteDecision& d,
                                 const ScenarioOptions& opts) const {
  // Sibling refinement (§4.2): routing into a sibling AS is internal to the
  // organization and marked as satisfying Best.
  if (opts.use_siblings && siblings_ != nullptr &&
      siblings_->same_group(d.decider, d.next_hop))
    return true;

  const auto rel = effective_relationship(d, opts);
  if (!rel) return false;  // Link not in the inferred topology.

  const GrPathSet& ps = path_set(d, opts);
  const auto best = ps.best_class(d.decider);
  if (!best) return false;  // Model sees no GR route at all.
  return preference_class(*rel) <= preference_class(*best);
}

bool DecisionClassifier::is_short(const RouteDecision& d,
                                  const ScenarioOptions& opts) const {
  const GrPathSet& ps = path_set(d, opts);
  const std::size_t shortest = ps.shortest_length(d.decider);
  if (shortest == kUnreachable) return false;
  // "Short" means not longer than the model's shortest GR path; a measured
  // path *shorter* than the model (missing links in the inferred topology)
  // is not penalized as Long.
  return d.remaining_len <= shortest;
}

DecisionCategory DecisionClassifier::classify(
    const RouteDecision& d, const ScenarioOptions& opts) const {
  const bool best = is_best(d, opts);
  const bool shrt = is_short(d, opts);
  if (best && shrt) return DecisionCategory::kBestShort;
  if (!best && shrt) return DecisionCategory::kNonBestShort;
  if (best) return DecisionCategory::kBestLong;
  return DecisionCategory::kNonBestLong;
}

}  // namespace irp
