#include "core/active_study.hpp"

#include <algorithm>

#include "dataplane/traceroute.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

std::pair<Asn, Asn> unordered(Asn a, Asn b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

/// Preference class with "unknown link" ranked below provider: if the
/// model does not even know the link, the decision cannot look Best.
int class_or_worst(const InferredTopology& inferred, Asn a, Asn b) {
  const auto rel = inferred.relationship(a, b);
  return rel ? preference_class(*rel) : 3;
}

}  // namespace

DecisionTrigger infer_trigger(const InferredTopology& inferred, Asn asn,
                              Asn chosen_next_hop, std::size_t chosen_len,
                              const std::vector<Route>& alternatives,
                              bool kept_oldest, const SiblingGroups* siblings) {
  IRP_CHECK(!alternatives.empty(), "trigger inference needs alternatives");
  // A chosen sibling route is internal to the organization; the model has
  // no opinion about it, so the choice always satisfies Best (§4.2).
  if (siblings != nullptr && siblings->same_group(asn, chosen_next_hop))
    return DecisionTrigger::kBestRelationship;
  const int chosen_class = class_or_worst(inferred, asn, chosen_next_hop);

  bool any_cheaper = false;
  bool any_same_class = false;
  bool any_same_class_shorter = false;
  bool all_same_class_longer = true;
  for (const Route& alt : alternatives) {
    // Sibling alternatives are likewise model-silent: skip them.
    if (siblings != nullptr && siblings->same_group(asn, alt.from_asn))
      continue;
    const int cls = class_or_worst(inferred, asn, alt.from_asn);
    const std::size_t len = alt.path.length();
    if (cls < chosen_class) any_cheaper = true;
    if (cls == chosen_class) {
      any_same_class = true;
      if (len < chosen_len) any_same_class_shorter = true;
      if (len <= chosen_len) all_same_class_longer = false;
    }
  }

  // A strictly cheaper (or equally cheap but shorter) alternative that was
  // not chosen contradicts the model outright.
  if (any_cheaper || any_same_class_shorter) return DecisionTrigger::kViolation;
  if (!any_same_class) return DecisionTrigger::kBestRelationship;
  if (all_same_class_longer) return DecisionTrigger::kShorterPath;
  // Tied on relationship and length: the last observable tie-breakers.
  return kept_oldest ? DecisionTrigger::kOldestRoute
                     : DecisionTrigger::kIntradomain;
}

ActiveExperiment::ActiveExperiment(const GeneratedInternet* net,
                                   const GroundTruthPolicy* policy,
                                   const InferredTopology* inferred,
                                   std::vector<Asn> vantage_ases,
                                   ActiveConfig config,
                                   const SiblingGroups* siblings)
    : net_(net),
      policy_(policy),
      inferred_(inferred),
      vantages_(std::move(vantage_ases)),
      config_(config),
      siblings_(siblings) {
  IRP_CHECK(net_ && policy_ && inferred_, "active experiment inputs missing");
}

std::set<std::vector<Asn>> ActiveExperiment::observe(
    const BgpEngine& engine) const {
  std::set<std::vector<Asn>> paths;
  const Ipv4Prefix prefix = net_->testbed_prefixes[0];
  TracerouteSim tracer{&net_->topology, &engine};
  for (Asn v : vantages_) {
    auto path = tracer.forwarding_path(v, prefix);
    if (path.size() >= 2) paths.insert(std::move(path));
  }
  for (const FeedEntry& e : engine.feed(net_->collector_peers)) {
    if (e.prefix != prefix) continue;
    if (e.path.hops.size() >= 2) paths.insert(e.path.hops);
  }
  return paths;
}

std::vector<Asn> ActiveExperiment::select_vantages(
    const GeneratedInternet& net, const GroundTruthPolicy& policy,
    const std::vector<Asn>& candidates, int count) {
  BgpEngine engine{&net.topology, &policy, net.measurement_epoch};
  engine.announce(net.testbed_prefixes[0], net.testbed_asn);
  engine.run();
  TracerouteSim tracer{&net.topology, &engine};

  std::vector<std::pair<Asn, std::vector<Asn>>> paths;
  for (Asn c : candidates) {
    auto p = tracer.forwarding_path(c, net.testbed_prefixes[0]);
    if (!p.empty()) paths.emplace_back(c, std::move(p));
  }

  // Greedy max-coverage of traversed ASes (§3.2's heuristic).
  std::set<Asn> covered;
  std::vector<Asn> chosen;
  std::vector<bool> used(paths.size(), false);
  while (int(chosen.size()) < count) {
    std::size_t best = paths.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (used[i]) continue;
      std::size_t gain = 0;
      for (Asn asn : paths[i].second)
        if (!covered.count(asn)) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == paths.size()) {
      // No remaining gain: fill with unused candidates in order.
      for (std::size_t i = 0; i < paths.size() && int(chosen.size()) < count;
           ++i)
        if (!used[i]) {
          used[i] = true;
          chosen.push_back(paths[i].first);
        }
      break;
    }
    used[best] = true;
    chosen.push_back(paths[best].first);
    for (Asn asn : paths[best].second) covered.insert(asn);
  }
  return chosen;
}

AlternateRouteReport ActiveExperiment::discover_alternate_routes() {
  const Ipv4Prefix prefix = net_->testbed_prefixes[0];
  const Asn testbed = net_->testbed_asn;
  BgpEngine engine{&net_->topology, policy_, net_->measurement_epoch};

  AlternateRouteReport report;
  std::set<std::pair<Asn, Asn>> links_all;
  std::set<std::pair<Asn, Asn>> links_unpoisoned;
  auto record = [&](const std::set<std::vector<Asn>>& paths, bool poisoned) {
    for (const auto& p : paths)
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        const auto key = unordered(p[i], p[i + 1]);
        links_all.insert(key);
        if (!poisoned) links_unpoisoned.insert(key);
      }
  };

  engine.announce(prefix, testbed);
  engine.run();
  const auto baseline = observe(engine);
  record(baseline, false);

  std::set<Asn> targets;
  for (const auto& p : baseline)
    for (Asn asn : p)
      if (asn != testbed) targets.insert(asn);

  struct Choice {
    Asn next_hop;
    std::size_t len;
  };

  Rng rng{config_.seed};
  std::vector<Asn> target_list{targets.begin(), targets.end()};
  rng.shuffle(target_list);
  if (config_.max_targets > 0 &&
      target_list.size() > static_cast<std::size_t>(config_.max_targets))
    target_list.resize(config_.max_targets);

  for (Asn target : target_list) {
    // Fresh unpoisoned announcement for each target's run.
    engine.announce(prefix, testbed);
    engine.run();
    record(observe(engine), false);

    std::vector<Choice> sequence;
    std::vector<Asn> poison;
    for (int round = 0; round < config_.max_rounds; ++round) {
      const BgpEngine::Selected* sel = engine.best(target, prefix);
      if (sel == nullptr || sel->self_originated) break;
      // The origin itself cannot be poisoned (its own announcement would
      // carry its ASN anyway); a target adjacent to the testbed has
      // exhausted its alternatives at this point.
      if (sel->next_hop == testbed) break;
      sequence.push_back({sel->next_hop, sel->path.length()});
      poison.push_back(sel->next_hop);
      AnnounceOptions options;
      options.poison_set = poison;
      engine.announce(prefix, testbed, std::move(options));
      engine.run();
      ++report.poisoned_announcements;
      record(observe(engine), true);
    }
    if (sequence.size() < 2) continue;  // No alternate route revealed.
    ++report.targets;

    bool best_ok = true;
    bool short_ok = true;
    std::string first_violation;
    for (std::size_t i = 0; i + 1 < sequence.size(); ++i) {
      // A pair with an unknown link cannot confirm or refute the Best
      // ordering — the relationship database simply has no opinion.
      const auto r1 = inferred_->relationship(target, sequence[i].next_hop);
      const auto r2 =
          inferred_->relationship(target, sequence[i + 1].next_hop);
      const bool sib1 = siblings_ != nullptr &&
                        siblings_->same_group(target, sequence[i].next_hop);
      const bool sib2 =
          siblings_ != nullptr &&
          siblings_->same_group(target, sequence[i + 1].next_hop);
      // Sibling hops are internal to the organization and the unknown-link
      // case gives the relationship database no opinion: neither can
      // confirm or refute the Best ordering.
      if (!r1 || !r2 || sib1 || sib2) {
        if (sequence[i].len > sequence[i + 1].len) short_ok = false;
        continue;
      }
      const int c1 = preference_class(*r1);
      const int c2 = preference_class(*r2);
      if (c1 > c2) {
        best_ok = false;
        if (first_violation.empty())
          first_violation =
              "AS" + std::to_string(target) + " preferred AS" +
              std::to_string(sequence[i].next_hop) + " (class " +
              std::to_string(c1) + ") over AS" +
              std::to_string(sequence[i + 1].next_hop) + " (class " +
              std::to_string(c2) + "), contradicting inferred relationships";
      }
      if (sequence[i].len > sequence[i + 1].len) short_ok = false;
    }
    if (best_ok && short_ok)
      ++report.both;
    else if (best_ok)
      ++report.best_only;
    else if (short_ok)
      ++report.short_only;
    else
      ++report.neither;
    if (!best_ok && !short_ok && report.violation_notes.size() < 8)
      report.violation_notes.push_back(first_violation);
  }

  report.links_observed = links_all.size();
  for (const auto& [a, b] : links_all) {
    if (inferred_->has_link(a, b)) continue;
    ++report.links_not_in_db;
    if (!links_unpoisoned.count({a, b})) ++report.links_poison_only;
  }
  return report;
}

Table2Report ActiveExperiment::magnet_experiment() {
  const Ipv4Prefix prefix = net_->testbed_prefixes[0];
  const Asn testbed = net_->testbed_asn;
  BgpEngine engine{&net_->topology, policy_, net_->measurement_epoch};
  TracerouteSim tracer{&net_->topology, &engine};

  Table2Report report;
  const std::set<Asn> feed_ases{net_->collector_peers.begin(),
                                net_->collector_peers.end()};

  for (LinkId magnet_link : net_->testbed_mux_links) {
    // Stage 1: announce only at the magnet and converge.
    engine.withdraw(prefix);
    engine.run();
    AnnounceOptions magnet_opts;
    magnet_opts.only_links = {magnet_link};
    engine.announce(prefix, testbed, std::move(magnet_opts));
    engine.run();

    std::map<Asn, AsPath> before;
    net_->topology.for_each_as([&](const AsNode& node) {
      const auto* sel = engine.best(node.asn, prefix);
      if (sel != nullptr && !sel->self_originated)
        before[node.asn] = sel->path;
    });
    std::set<Asn> traceroute_ases;
    for (Asn v : vantages_)
      for (Asn asn : tracer.forwarding_path(v, prefix))
        if (asn != testbed) traceroute_ases.insert(asn);

    // Stage 2: anycast from every mux.
    engine.announce(prefix, testbed, AnnounceOptions{});
    engine.run();
    for (Asn v : vantages_)
      for (Asn asn : tracer.forwarding_path(v, prefix))
        if (asn != testbed) traceroute_ases.insert(asn);

    auto analyze = [&](Asn x, TriggerCounts& counts) {
      auto it = before.find(x);
      if (it == before.end()) return;  // Never saw the magnet route.
      const auto* sel = engine.best(x, prefix);
      if (sel == nullptr || sel->self_originated) return;
      const auto routes = engine.routes_at(x, prefix);
      if (routes.size() < 2) return;  // No decision to explain.

      const bool kept = sel->path == it->second;
      if (!kept) {
        // If the magnet route vanished from x's Adj-RIB-In, a downstream AS
        // made the interesting decision; skip x (the downstream AS is
        // analyzed on its own).
        const bool magnet_still_offered =
            std::any_of(routes.begin(), routes.end(), [&](const Route& r) {
              return r.path == it->second;
            });
        if (!magnet_still_offered) return;
      }

      std::vector<Route> alternatives;
      for (const Route& r : routes)
        if (r.via_link != sel->via_link) alternatives.push_back(r);
      if (alternatives.empty()) return;

      switch (infer_trigger(*inferred_, x, sel->next_hop, sel->path.length(),
                            alternatives, kept, siblings_)) {
        case DecisionTrigger::kBestRelationship: ++counts.best_relationship; break;
        case DecisionTrigger::kShorterPath:      ++counts.shorter_path; break;
        case DecisionTrigger::kIntradomain:      ++counts.intradomain; break;
        case DecisionTrigger::kOldestRoute:      ++counts.oldest_route; break;
        case DecisionTrigger::kViolation:        ++counts.violation; break;
      }
    };

    for (Asn x : feed_ases) analyze(x, report.feeds);
    for (Asn x : traceroute_ases) analyze(x, report.traceroutes);
  }
  return report;
}

}  // namespace irp
