// The paper's §7 future work, implemented: an extended routing model that
// folds the study's findings back into the topology before classification.
//
// Corrections applied on top of the aggregated inferred topology:
//   * stale-link pruning using the neighbor-history service (§5);
//   * undersea-cable correction using the cable registry (§6): a listed
//     cable-operator AS sells point-to-point transit, so every link incident
//     to it is relabeled with the cable as the provider side;
//   * the full refinement ladder (hybrid relationships, siblings, PSP
//     criteria) during classification.
//
// compute_extended_model() reports how much of the model/reality gap the
// corrections close relative to the Simple model.
#pragma once

#include "core/analysis.hpp"
#include "topo/registry.hpp"

namespace irp {

/// Relabels links incident to registry-listed cable operators: the cable AS
/// is the provider of each attached AS (point-to-point transit), undoing
/// the customer-of-everyone misinference.
InferredTopology apply_cable_correction(const InferredTopology& topo,
                                        const CableRegistry& cables);

/// Results of the extended-model evaluation.
struct ExtendedModelReport {
  CategoryBreakdown simple;       ///< Plain GR on the raw inferred topology.
  CategoryBreakdown all_refinements;  ///< All-1 ladder, raw topology.
  CategoryBreakdown extended;     ///< All-1 + stale pruning + cable fix.
  /// Violations attributable to each correction (share of all decisions).
  double stale_gain = 0.0;
  double cable_gain = 0.0;
};

/// Evaluates Simple vs All-1 vs the extended model on a passive dataset.
ExtendedModelReport compute_extended_model(const PassiveDataset& ds,
                                           const GeneratedInternet& net);

}  // namespace irp
