// The passive measurement campaign (§3.1) and its observable products.
//
// Runs the whole pipeline the paper runs against the live Internet, against
// the simulated one instead:
//   1. converge the ground-truth BGP system for five monthly snapshots and
//      collect route-collector feeds (the inference corpus);
//   2. converge the measurement-epoch system for all content-related
//      prefixes;
//   3. sample RIPE-style probes (continent round-robin), resolve the content
//      hostnames per probe, traceroute to the resolved addresses;
//   4. convert IP paths to AS paths and extract per-AS routing decisions;
//   5. run relationship inference (per-snapshot + §3.3 aggregation),
//      sibling inference, and collect the per-prefix BGP observations the
//      PSP criteria need.
//
// Everything downstream (Figure 1, 2, 3, Tables 3, 4) consumes the returned
// PassiveDataset, which contains only analyst-observable artifacts plus the
// live engine handle for the active experiments.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "bgp/engine.hpp"
#include "core/decisions.hpp"
#include "dataplane/ip_to_as.hpp"
#include "dataplane/probes.hpp"
#include "dataplane/traceroute.hpp"
#include "inference/bgp_observations.hpp"
#include "inference/hybrid_dataset.hpp"
#include "inference/path_corpus.hpp"
#include "inference/relationships.hpp"
#include "inference/siblings.hpp"
#include "topo/generator.hpp"
#include "util/thread_pool.hpp"

namespace irp {

/// Campaign parameters.
struct PassiveStudyConfig {
  ProbeSamplerConfig probes;
  /// Hostnames each probe measures per campaign (the paper's probing budget
  /// kept the traceroute count below probes x hostnames).
  int hostnames_per_probe = 14;
  /// Coverage of the Giotsas-style complex-relationships dataset.
  double hybrid_coverage = 0.85;
  InferenceConfig inference;
  /// Engine batching for the snapshot runs (memory control).
  int snapshot_batch = 64;
  /// Thread count for the embarrassingly parallel phases (corpus
  /// convergences, per-snapshot inference). All randomness stays in the
  /// serial orchestration, so any thread count produces byte-identical
  /// results; 1 (the default) is the classic serial path.
  ParallelConfig parallel;
  std::uint64_t seed = 7;
};

/// Everything the passive campaign produced.
struct PassiveDataset {
  // Observables.
  std::vector<Probe> probes;
  std::vector<Traceroute> traceroutes;
  std::vector<RouteDecision> decisions;
  std::vector<FeedEntry> measurement_feed;
  PathCorpus corpus;
  std::vector<InferredTopology> snapshots;  ///< Per epoch, ascending.
  InferredTopology inferred;                ///< §3.3 aggregation.
  SiblingGroups siblings;
  HybridDataset hybrid;
  BgpObservations observations;
  IpToAsMap ip_to_as;

  // Live simulation handles (measurement epoch; content prefixes announced).
  std::unique_ptr<GroundTruthPolicy> policy;
  std::unique_ptr<BgpEngine> engine;

  // Summary statistics.
  std::size_t num_destination_ases = 0;
  std::size_t num_observed_decider_ases = 0;

  PassiveDataset() = default;
  PassiveDataset(const PassiveDataset&) = delete;
  PassiveDataset& operator=(const PassiveDataset&) = delete;
  PassiveDataset(PassiveDataset&&) = default;
  PassiveDataset& operator=(PassiveDataset&&) = default;
};

/// Runs the passive campaign over a generated Internet.
PassiveDataset run_passive_study(const GeneratedInternet& net,
                                 const PassiveStudyConfig& config);

/// Announces every originated prefix of the given ASes on `engine`
/// (honoring selective-announcement restrictions) and converges.
void announce_all(BgpEngine& engine, const Topology& topo,
                  const std::vector<Asn>& origins);

}  // namespace irp
