#include "core/gr_model.hpp"

#include <deque>
#include <queue>

#include "util/check.hpp"

namespace irp {

std::size_t GrPathSet::length_via(Asn asn, Relationship first_hop_class) const {
  IRP_CHECK(asn < cust_.size(), "ASN out of range");
  switch (first_hop_class) {
    case Relationship::kCustomer:
    case Relationship::kSibling:
      return cust_[asn];
    case Relationship::kPeer:
      return peer_[asn];
    case Relationship::kProvider:
      return prov_[asn];
  }
  IRP_UNREACHABLE("unknown relationship class");
}

std::optional<Relationship> GrPathSet::best_class(Asn asn) const {
  IRP_CHECK(asn < cust_.size(), "ASN out of range");
  if (cust_[asn] != kUnreachable) return Relationship::kCustomer;
  if (peer_[asn] != kUnreachable) return Relationship::kPeer;
  if (prov_[asn] != kUnreachable) return Relationship::kProvider;
  return std::nullopt;
}

std::size_t GrPathSet::shortest_length(Asn asn) const {
  IRP_CHECK(asn < cust_.size(), "ASN out of range");
  return std::min({cust_[asn], peer_[asn], prov_[asn]});
}

std::vector<Asn> GrPathSet::witness_shortest(Asn asn) const {
  if (asn == dest_) return {};
  if (shortest_length(asn) == kUnreachable) return {};
  std::vector<Asn> path;
  Asn cur = asn;
  bool customer_only = false;
  while (cur != dest_) {
    Asn next = 0;
    if (customer_only) {
      next = cust_parent_[cur];
    } else {
      const std::size_t c = cust_[cur], p = peer_[cur], v = prov_[cur];
      const std::size_t m = std::min({c, p, v});
      IRP_CHECK(m != kUnreachable, "witness walk hit unreachable node");
      if (c == m) {
        next = cust_parent_[cur];
        customer_only = true;
      } else if (p == m) {
        next = peer_parent_[cur];
        customer_only = true;
      } else {
        next = prov_parent_[cur];
        // After an up hop, any class is allowed again at the provider.
      }
    }
    IRP_CHECK(next != 0, "missing witness parent");
    path.push_back(next);
    IRP_CHECK(path.size() <= cust_.size(), "witness walk does not terminate");
    cur = next;
  }
  return path;
}

GrModel::GrModel(const InferredTopology* topo, std::size_t num_ases)
    : topo_(topo), num_ases_(num_ases) {
  IRP_CHECK(topo_ != nullptr, "GrModel requires a topology");
  adj_.resize(num_ases_ + 1);
  for (const auto& [pair, rel] : topo_->links()) {
    const auto [a, b] = pair;
    if (a > num_ases_ || b > num_ases_ || a == 0 || b == 0) continue;
    const Relationship from_a = *topo_->relationship(a, b);
    adj_[a].push_back({b, from_a});
    adj_[b].push_back({a, reverse(from_a)});
  }
}

GrPathSet GrModel::compute(Asn dest, const OriginEdgeFilter& filter) const {
  IRP_CHECK(dest >= 1 && dest <= num_ases_, "destination out of range");
  GrPathSet out;
  out.dest_ = dest;
  out.cust_.assign(num_ases_ + 1, kUnreachable);
  out.peer_.assign(num_ases_ + 1, kUnreachable);
  out.prov_.assign(num_ases_ + 1, kUnreachable);
  out.cust_parent_.assign(num_ases_ + 1, 0);
  out.peer_parent_.assign(num_ases_ + 1, 0);
  out.prov_parent_.assign(num_ases_ + 1, 0);

  auto edge_allowed = [&](Asn from_neighbor, Asn to) {
    return to != dest || !filter || filter(from_neighbor);
  };

  // Stage 1 — customer routes: all-down paths, BFS from the destination
  // along provider edges (from c to its providers p, p reaches dest via its
  // customer c).
  out.cust_[dest] = 0;
  std::deque<Asn> queue{dest};
  while (!queue.empty()) {
    const Asn c = queue.front();
    queue.pop_front();
    const std::size_t k = out.cust_[c];
    for (const Edge& e : adj_[c]) {
      if (e.rel != Relationship::kProvider) continue;  // p is c's provider.
      const Asn p = e.neighbor;
      if (!edge_allowed(p, c)) continue;
      if (out.cust_[p] != kUnreachable) continue;
      out.cust_[p] = k + 1;
      out.cust_parent_[p] = c;
      queue.push_back(p);
    }
  }

  // Stage 2 — peer routes: one flat hop onto a customer route.
  for (Asn x = 1; x <= num_ases_; ++x) {
    for (const Edge& e : adj_[x]) {
      if (e.rel != Relationship::kPeer) continue;
      const Asn y = e.neighbor;
      if (out.cust_[y] == kUnreachable) continue;
      if (!edge_allowed(x, y)) continue;
      const std::size_t cand = 1 + out.cust_[y];
      if (cand < out.peer_[x]) {
        out.peer_[x] = cand;
        out.peer_parent_[x] = y;
      }
    }
  }

  // Stage 3 — provider routes: Dijkstra on g(x) = min over all classes,
  // propagating down customer edges (x learns from its provider y).
  std::vector<std::size_t> g(num_ases_ + 1, kUnreachable);
  using Item = std::pair<std::size_t, Asn>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (Asn x = 1; x <= num_ases_; ++x) {
    g[x] = std::min(out.cust_[x], out.peer_[x]);
    if (g[x] != kUnreachable) pq.push({g[x], x});
  }
  while (!pq.empty()) {
    const auto [val, y] = pq.top();
    pq.pop();
    if (val > g[y]) continue;  // Stale entry.
    for (const Edge& e : adj_[y]) {
      if (e.rel != Relationship::kCustomer) continue;  // x is y's customer.
      const Asn x = e.neighbor;
      if (!edge_allowed(x, y)) continue;
      const std::size_t cand = val + 1;
      if (cand < out.prov_[x]) {
        out.prov_[x] = cand;
        out.prov_parent_[x] = y;
        if (cand < g[x]) {
          g[x] = cand;
          pq.push({cand, x});
        }
      }
    }
  }

  return out;
}

}  // namespace irp
