#include "core/study.hpp"

#include <set>

namespace irp {

StudyResults run_full_study(const StudyConfig& config) {
  StudyResults results;
  results.net = generate_internet(config.generator);
  const GeneratedInternet& net = *results.net;

  results.passive = run_passive_study(net, config.passive);
  const PassiveDataset& ds = results.passive;

  const DecisionClassifier classifier = make_classifier(ds);
  // Warm the GR path-set cache in parallel; every analysis below then hits
  // the cache. A no-op for results — purely a wall-clock optimization.
  classifier.precompute(ds.decisions, config.passive.parallel.threads);
  results.table1 = compute_table1(ds, net);
  results.figure1 = compute_figure1(ds, classifier);
  results.skew = compute_skew(ds, net, classifier);
  results.figure3 = compute_figure3(ds, net, classifier);
  results.table3 = compute_table3(ds, net, classifier);
  results.table4 = compute_table4(ds, net, classifier);
  results.psp = validate_psp(ds, net, classifier);
  results.extended = compute_extended_model(ds, net);

  if (config.run_active) {
    // Vantage candidates: the distinct probe ASes of the passive campaign.
    std::set<Asn> candidate_set;
    for (const Probe& p : ds.probes) candidate_set.insert(p.asn);
    const std::vector<Asn> candidates{candidate_set.begin(),
                                      candidate_set.end()};
    const std::vector<Asn> vantages = ActiveExperiment::select_vantages(
        net, *ds.policy, candidates, config.active.traceroute_vantages);
    ActiveExperiment active{&net, ds.policy.get(), &ds.inferred, vantages,
                            config.active, &ds.siblings};
    results.alternate = active.discover_alternate_routes();
    results.table2 = active.magnet_experiment();
  }
  return results;
}

}  // namespace irp
