#include "core/reports.hpp"

#include "util/strings.hpp"

namespace irp {

TextTable render_table1(const Table1Report& r) {
  TextTable t{{"AS type", "Probes", "Distinct ASes", "Distinct Countries"}};
  for (const auto& row : r.rows)
    t.add_row({row.as_type, std::to_string(row.probes),
               std::to_string(row.distinct_ases),
               std::to_string(row.distinct_countries)});
  t.add_row({"Total", std::to_string(r.total_probes),
             std::to_string(r.total_ases), std::to_string(r.total_countries)});
  return t;
}

TextTable render_figure1(const Figure1Report& r) {
  TextTable t{{"Scenario", "Best/Short", "NonBest/Short", "Best/Long",
               "NonBest/Long"}};
  for (const auto& [name, b] : r.scenarios)
    t.add_row({name, percent(b.share(DecisionCategory::kBestShort)),
               percent(b.share(DecisionCategory::kNonBestShort)),
               percent(b.share(DecisionCategory::kBestLong)),
               percent(b.share(DecisionCategory::kNonBestLong))});
  return t;
}

TextTable render_figure3(const Figure3Report& r) {
  TextTable t{{"Scope", "Best/Short", "NonBest/Short", "Best/Long",
               "NonBest/Long", "Decisions"}};
  auto row = [&](const std::string& name, const CategoryBreakdown& b) {
    t.add_row({name, percent(b.share(DecisionCategory::kBestShort)),
               percent(b.share(DecisionCategory::kNonBestShort)),
               percent(b.share(DecisionCategory::kBestLong)),
               percent(b.share(DecisionCategory::kNonBestLong)),
               std::to_string(b.total())});
  };
  for (const auto& [continent, b] : r.per_continent)
    row(std::string(continent_code(continent)), b);
  row("Cont", r.continental_all);
  row("Non Cont", r.intercontinental);
  return t;
}

TextTable render_table3(const Table3Report& r, const World&) {
  TextTable t{{"Continent", "Non-Best/Short Decisions explained"}};
  for (const auto& row : r.rows) {
    const double frac = row.domestic_violations == 0
                            ? 0.0
                            : double(row.explained) /
                                  double(row.domestic_violations);
    t.add_row({std::string(continent_name(row.continent)), percent(frac)});
  }
  return t;
}

TextTable render_table4(const Table4Report& r) {
  TextTable t{{"Violation type", "Pct. of decisions explained"}};
  t.add_row({"Non-Best & Short", percent(r.nonbest_short)});
  t.add_row({"Best & Long", percent(r.best_long)});
  t.add_row({"Non-Best & Long", percent(r.nonbest_long)});
  return t;
}

}  // namespace irp
