// Report structures for every table and figure of the paper, plus helpers
// to render them as text tables.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/decisions.hpp"
#include "geo/world.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace irp {

/// Counts per decision category with share accessors.
struct CategoryBreakdown {
  std::array<std::size_t, 4> counts{};

  void add(DecisionCategory c) { ++counts[static_cast<std::size_t>(c)]; }
  std::size_t count(DecisionCategory c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  std::size_t total() const {
    return counts[0] + counts[1] + counts[2] + counts[3];
  }
  double share(DecisionCategory c) const {
    const std::size_t t = total();
    return t == 0 ? 0.0 : double(count(c)) / double(t);
  }
  /// Share of decisions violating either property (not Best/Short).
  double violation_share() const {
    return 1.0 - share(DecisionCategory::kBestShort);
  }
};

/// Table 1: probe distribution by AS type.
struct Table1Report {
  struct Row {
    std::string as_type;
    std::size_t probes = 0;
    std::size_t distinct_ases = 0;
    std::size_t distinct_countries = 0;
  };
  std::vector<Row> rows;
  std::size_t total_probes = 0;
  std::size_t total_ases = 0;
  std::size_t total_countries = 0;
};

/// Figure 1: decision breakdown per refinement scenario.
struct Figure1Report {
  std::vector<std::pair<std::string, CategoryBreakdown>> scenarios;
};

/// Figure 2: skew of violations across source/destination ASes.
struct SkewReport {
  struct TypeCurves {
    std::vector<CdfPoint> by_source;
    std::vector<CdfPoint> by_dest;
  };
  /// Keyed by the three violation categories.
  std::map<DecisionCategory, TypeCurves> curves;
  /// Share of all violations by destination content service, descending.
  std::vector<std::pair<std::string, double>> top_dest_services;
  /// Share of all violations by source AS, descending (top entries).
  std::vector<std::pair<Asn, double>> top_sources;
  /// Of the violations toward the second wide-deployment service, the
  /// fraction attributable to stale links in the aggregated topology.
  double stale_fraction_second_service = 0.0;
  std::string second_service_name;
  /// Gini coefficients summarizing the skew (tests + rendering).
  double gini_sources = 0.0;
  double gini_dests = 0.0;
};

/// Figure 3: continental vs intercontinental decision breakdowns.
struct Figure3Report {
  std::map<Continent, CategoryBreakdown> per_continent;
  CategoryBreakdown continental_all;
  CategoryBreakdown intercontinental;
  double continental_traceroute_fraction = 0.0;
};

/// Table 3: Non-Best/Short decisions explained by domestic-path preference.
struct Table3Report {
  struct Row {
    Continent continent = Continent::kEurope;
    std::size_t domestic_violations = 0;  ///< On single-country traceroutes.
    std::size_t explained = 0;            ///< Better multinational path exists.
  };
  std::vector<Row> rows;
  double overall_explained_fraction = 0.0;
};

/// Table 4: decisions attributable to undersea-cable ASes.
struct Table4Report {
  /// Fraction of decisions of each violation type involving a cable AS.
  double nonbest_short = 0.0;
  double best_long = 0.0;
  double nonbest_long = 0.0;
  /// Fraction of AS-level paths traversing a cable AS (paper: <2%).
  double paths_with_cable = 0.0;
  /// Of decisions involving cable ASes, the deviating fraction (51.2%).
  double cable_decision_deviation = 0.0;
  std::size_t cable_decisions = 0;
};

// ---- rendering -----------------------------------------------------------

TextTable render_table1(const Table1Report& r);
TextTable render_figure1(const Figure1Report& r);
TextTable render_figure3(const Figure3Report& r);
TextTable render_table3(const Table3Report& r, const World& world);
TextTable render_table4(const Table4Report& r);

}  // namespace irp
