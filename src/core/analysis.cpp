#include "core/analysis.hpp"

#include <algorithm>
#include <set>

#include "dataplane/as_type.hpp"
#include "util/check.hpp"

namespace irp {
namespace {

/// Destination content service of a traceroute (by its target hostname).
const ContentService* service_of(const PassiveDataset& ds,
                                 const GeneratedInternet& net,
                                 std::size_t traceroute_index) {
  const auto& tr = ds.traceroutes[traceroute_index];
  return net.content.service_for(tr.hostname);
}

}  // namespace

DecisionClassifier make_classifier(const PassiveDataset& ds) {
  return DecisionClassifier{&ds.inferred, ds.engine->topology().num_ases(),
                            &ds.hybrid, &ds.siblings, &ds.observations};
}

std::vector<TracerouteGeo> geolocate_traceroutes(
    const PassiveDataset& ds, const GeneratedInternet& net) {
  std::vector<TracerouteGeo> out;
  out.reserve(ds.traceroutes.size());
  for (const Traceroute& tr : ds.traceroutes) {
    TracerouteGeo geo;
    std::set<Continent> continents;
    std::set<CountryId> countries;
    bool complete = true;
    std::vector<Ipv4Addr> addresses{tr.src_address};
    for (const auto& hop : tr.hops) addresses.push_back(hop.address);
    for (Ipv4Addr addr : addresses) {
      const auto city = net.geo->locate_city(addr);
      if (!city) {
        complete = false;
        continue;
      }
      countries.insert(net.world.city(*city).country);
      continents.insert(net.world.continent_of_city(*city));
    }
    if (complete && continents.size() == 1)
      geo.single_continent = *continents.begin();
    if (complete && countries.size() == 1)
      geo.single_country = *countries.begin();
    out.push_back(geo);
  }
  return out;
}

Table1Report compute_table1(const PassiveDataset& ds,
                            const GeneratedInternet& net) {
  AsTypeClassifier types{&net.topology, net.measurement_epoch};
  struct Agg {
    std::size_t probes = 0;
    std::set<Asn> ases;
    std::set<CountryId> countries;
  };
  std::map<AsCategory, Agg> agg;
  std::set<Asn> all_ases;
  std::set<CountryId> all_countries;
  for (const Probe& p : ds.probes) {
    Agg& a = agg[types.classify(p.asn)];
    ++a.probes;
    a.ases.insert(p.asn);
    a.countries.insert(p.country);
    all_ases.insert(p.asn);
    all_countries.insert(p.country);
  }
  Table1Report report;
  for (AsCategory c : {AsCategory::kStub, AsCategory::kSmallIsp,
                       AsCategory::kLargeIsp, AsCategory::kTier1}) {
    const Agg& a = agg[c];
    report.rows.push_back({std::string(as_category_name(c)), a.probes,
                           a.ases.size(), a.countries.size()});
  }
  report.total_probes = ds.probes.size();
  report.total_ases = all_ases.size();
  report.total_countries = all_countries.size();
  return report;
}

Figure1Report compute_figure1(const PassiveDataset& ds,
                              const DecisionClassifier& classifier) {
  Figure1Report report;
  for (const NamedScenario& scenario : figure1_scenarios()) {
    CategoryBreakdown breakdown;
    for (const RouteDecision& d : ds.decisions)
      breakdown.add(classifier.classify(d, scenario.options));
    report.scenarios.emplace_back(scenario.name, breakdown);
  }
  return report;
}

InferredTopology prune_stale_links(const InferredTopology& topo,
                                   const NeighborHistoryDb& history,
                                   int epoch) {
  InferredTopology out;
  for (const auto& [pair, rel] : topo.links()) {
    if (history.is_stale(pair.first, pair.second, epoch)) continue;
    out.set(pair.first, pair.second, rel);
  }
  return out;
}

SkewReport compute_skew(const PassiveDataset& ds, const GeneratedInternet& net,
                        const DecisionClassifier& classifier) {
  const ScenarioOptions simple;
  SkewReport report;

  // Violations per (violation type, source AS) and (type, dest AS).
  std::map<DecisionCategory, Counter<Asn>> by_source, by_dest;
  Counter<Asn> all_by_source;
  Counter<std::string> by_service;
  std::size_t violations = 0;

  std::vector<std::size_t> violation_indices;
  std::vector<DecisionCategory> categories(ds.decisions.size());
  for (std::size_t i = 0; i < ds.decisions.size(); ++i) {
    const RouteDecision& d = ds.decisions[i];
    const DecisionCategory c = classifier.classify(d, simple);
    categories[i] = c;
    if (!is_violation(c)) continue;
    ++violations;
    violation_indices.push_back(i);
    by_source[c].add(d.src_asn);
    by_dest[c].add(d.dest_asn);
    all_by_source.add(d.src_asn);
    const ContentService* svc = service_of(ds, net, d.traceroute_index);
    by_service.add(svc != nullptr ? svc->org_name : "(unknown)");
  }

  for (auto& [cat, counter] : by_source) {
    std::vector<std::size_t> counts;
    for (const auto& [asn, n] : counter.raw()) counts.push_back(n);
    report.curves[cat].by_source = ranked_cdf(counts);
  }
  for (auto& [cat, counter] : by_dest) {
    std::vector<std::size_t> counts;
    for (const auto& [asn, n] : counter.raw()) counts.push_back(n);
    report.curves[cat].by_dest = ranked_cdf(counts);
  }

  for (const auto& [name, n] : by_service.sorted_desc())
    report.top_dest_services.emplace_back(
        name, violations == 0 ? 0.0 : double(n) / double(violations));
  for (const auto& [asn, n] : all_by_source.sorted_desc()) {
    report.top_sources.emplace_back(
        asn, violations == 0 ? 0.0 : double(n) / double(violations));
    if (report.top_sources.size() >= 10) break;
  }

  {
    std::vector<double> src_counts, dst_counts;
    Counter<Asn> all_by_dest;
    for (const auto& [cat, counter] : by_dest)
      for (const auto& [asn, n] : counter.raw()) all_by_dest.add(asn, n);
    for (const auto& [asn, n] : all_by_source.raw())
      src_counts.push_back(double(n));
    for (const auto& [asn, n] : all_by_dest.raw())
      dst_counts.push_back(double(n));
    report.gini_sources = gini(std::move(src_counts));
    report.gini_dests = gini(std::move(dst_counts));
  }

  // Stale-link attribution for the second wide-deployment service: how many
  // of its violations disappear once stale links are pruned from the
  // aggregated topology.
  const auto& services = net.content.services();
  const ContentService* second = nullptr;
  int wide_seen = 0;
  for (const auto& svc : services) {
    if (!svc.wide_deployment) continue;
    if (++wide_seen == 2) {
      second = &svc;
      break;
    }
  }
  if (second != nullptr) {
    report.second_service_name = second->org_name;
    const InferredTopology pruned = prune_stale_links(
        ds.inferred, net.neighbor_history, net.measurement_epoch);
    DecisionClassifier pruned_classifier{
        &pruned, ds.engine->topology().num_ases(), &ds.hybrid, &ds.siblings,
        &ds.observations};
    std::size_t total = 0, explained = 0;
    for (std::size_t i : violation_indices) {
      const RouteDecision& d = ds.decisions[i];
      // The paper counts violations whose *destination AS* is the provider's
      // own network (Netflix's AS), not its off-net caches.
      if (d.dest_asn != second->origin_asn) continue;
      ++total;
      if (!is_violation(pruned_classifier.classify(d, simple))) ++explained;
    }
    report.stale_fraction_second_service =
        total == 0 ? 0.0 : double(explained) / double(total);
  }

  return report;
}

Figure3Report compute_figure3(const PassiveDataset& ds,
                              const GeneratedInternet& net,
                              const DecisionClassifier& classifier) {
  const ScenarioOptions simple;
  const auto geos = geolocate_traceroutes(ds, net);
  Figure3Report report;
  std::size_t continental_traceroutes = 0;
  for (const auto& g : geos)
    if (g.single_continent) ++continental_traceroutes;
  report.continental_traceroute_fraction =
      geos.empty() ? 0.0
                   : double(continental_traceroutes) / double(geos.size());

  for (const RouteDecision& d : ds.decisions) {
    const DecisionCategory c = classifier.classify(d, simple);
    const auto& g = geos[d.traceroute_index];
    if (g.single_continent) {
      report.per_continent[*g.single_continent].add(c);
      report.continental_all.add(c);
    } else {
      report.intercontinental.add(c);
    }
  }
  return report;
}

Table3Report compute_table3(const PassiveDataset& ds,
                            const GeneratedInternet& net,
                            const DecisionClassifier& classifier) {
  const ScenarioOptions simple;
  const auto geos = geolocate_traceroutes(ds, net);

  std::map<Continent, Table3Report::Row> rows;
  std::size_t total = 0, explained_total = 0;

  for (const RouteDecision& d : ds.decisions) {
    const auto& g = geos[d.traceroute_index];
    if (!g.single_country) continue;  // Not a domestic traceroute.
    const DecisionCategory c = classifier.classify(d, simple);
    if (!is_violation(c)) continue;

    const Continent continent =
        net.world.continent_of_country(*g.single_country);
    Table3Report::Row& row = rows[continent];
    row.continent = continent;
    ++row.domestic_violations;
    ++total;

    // Is the model's preferred (shortest GR) path multinational? Countries
    // come from whois, which registers one country per AS — the limitation
    // the paper notes for multinational networks.
    const GrPathSet& ps = classifier.path_set(d, simple);
    const std::vector<Asn> witness = ps.witness_shortest(d.decider);
    if (witness.empty()) continue;
    const std::string src_country =
        net.whois.record(d.src_asn).country_code;
    const std::string dst_country =
        net.whois.record(d.dest_asn).country_code;
    bool multinational = false;
    for (Asn asn : witness) {
      const std::string& cc = net.whois.record(asn).country_code;
      if (cc != src_country && cc != dst_country) {
        multinational = true;
        break;
      }
    }
    if (multinational) {
      ++row.explained;
      ++explained_total;
    }
  }

  Table3Report report;
  for (auto& [continent, row] : rows) report.rows.push_back(row);
  report.overall_explained_fraction =
      total == 0 ? 0.0 : double(explained_total) / double(total);
  return report;
}

Table4Report compute_table4(const PassiveDataset& ds,
                            const GeneratedInternet& net,
                            const DecisionClassifier& classifier) {
  const ScenarioOptions simple;
  const auto cable_asns = net.cable_registry.operator_asns();
  auto is_cable = [&](Asn asn) {
    return std::binary_search(cable_asns.begin(), cable_asns.end(), asn);
  };

  CategoryBreakdown all;
  CategoryBreakdown involving;
  for (const RouteDecision& d : ds.decisions) {
    const DecisionCategory c = classifier.classify(d, simple);
    all.add(c);
    const bool involves = std::any_of(d.measured_remaining.begin(),
                                      d.measured_remaining.end(), is_cable);
    if (involves) involving.add(c);
  }

  Table4Report report;
  auto frac = [&](DecisionCategory c) {
    const std::size_t denom = all.count(c);
    return denom == 0 ? 0.0 : double(involving.count(c)) / double(denom);
  };
  report.nonbest_short = frac(DecisionCategory::kNonBestShort);
  report.best_long = frac(DecisionCategory::kBestLong);
  report.nonbest_long = frac(DecisionCategory::kNonBestLong);
  report.cable_decisions = involving.total();
  report.cable_decision_deviation = involving.violation_share();

  std::size_t paths_with_cable = 0;
  std::size_t paths_total = 0;
  std::set<std::size_t> seen;
  for (const RouteDecision& d : ds.decisions) {
    if (!seen.insert(d.traceroute_index).second) continue;
    ++paths_total;
    // The full AS path is the source plus the first decision's remainder;
    // decisions are emitted in path order so the first one we meet for a
    // traceroute covers the whole path.
    if (std::any_of(d.measured_remaining.begin(), d.measured_remaining.end(),
                    is_cable))
      ++paths_with_cable;
  }
  report.paths_with_cable =
      paths_total == 0 ? 0.0 : double(paths_with_cable) / double(paths_total);
  return report;
}

}  // namespace irp
