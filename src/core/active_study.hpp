// Active control-plane experiments (§3.2), PEERING-style.
//
// The testbed AS announces an experiment prefix through its university
// muxes. Two experiments:
//
//   * Alternate-route discovery: per target AS T, repeatedly poison the
//     next-hop neighbor T currently uses (insert its ASN into the announced
//     AS-set, triggering BGP loop prevention there) until T runs out of
//     routes. The sequence of choices reveals T's relative preferences and
//     exposes links invisible to passive measurement.
//
//   * Magnet/anycast: announce from a single mux (the magnet), converge,
//     then anycast from every mux. Whether an AS keeps the (older) magnet
//     route or switches — and whether relationship/length explain the
//     choice — reverse-engineers which BGP decision step drove it (Table 2).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bgp/engine.hpp"
#include "core/reports.hpp"
#include "inference/relationships.hpp"
#include "inference/siblings.hpp"
#include "topo/generator.hpp"

namespace irp {

/// Parameters of the active campaign.
struct ActiveConfig {
  /// Upper bound on poisoning rounds per target (route-flap hygiene).
  int max_rounds = 12;
  /// Upper bound on targeted ASes (the paper targeted 360).
  int max_targets = 360;
  /// Vantage ASes used for traceroute observation toward the prefix.
  int traceroute_vantages = 96;
  std::uint64_t seed = 11;
};

/// §3.2/§4.4 results of the alternate-route discovery.
struct AlternateRouteReport {
  std::size_t targets = 0;
  std::size_t both = 0;        ///< Chose routes following Best and Shortest.
  std::size_t best_only = 0;
  std::size_t short_only = 0;
  std::size_t neither = 0;
  std::size_t poisoned_announcements = 0;
  std::size_t links_observed = 0;
  std::size_t links_not_in_db = 0;
  std::size_t links_poison_only = 0;  ///< Of the new links, poisoning-only.
  std::vector<std::string> violation_notes;  ///< §4.4-style case studies.
};

/// Row counts of Table 2.
struct TriggerCounts {
  std::size_t best_relationship = 0;
  std::size_t shorter_path = 0;
  std::size_t intradomain = 0;
  std::size_t oldest_route = 0;
  std::size_t violation = 0;
  std::size_t total() const {
    return best_relationship + shorter_path + intradomain + oldest_route +
           violation;
  }
};

/// Table 2: decision triggers per observation channel.
struct Table2Report {
  TriggerCounts feeds;
  TriggerCounts traceroutes;
};

/// The BGP decision step inferred for one observation.
enum class DecisionTrigger {
  kBestRelationship,
  kShorterPath,
  kIntradomain,
  kOldestRoute,
  kViolation,
};

/// Infers the decision trigger for a chosen route against the set of
/// alternatives the AS had, using the *inferred* relationships (the model's
/// view, as in the paper). `kept_oldest` marks that the chosen route is the
/// pre-anycast (magnet) route. When `siblings` is given, a next hop in the
/// subject's inferred sibling group ranks with customers (the paper's
/// sibling refinement, applied to the active analysis as well).
DecisionTrigger infer_trigger(const InferredTopology& inferred, Asn asn,
                              Asn chosen_next_hop, std::size_t chosen_len,
                              const std::vector<Route>& alternatives,
                              bool kept_oldest,
                              const SiblingGroups* siblings = nullptr);

/// Drives the active experiments on a dedicated engine.
class ActiveExperiment {
 public:
  /// `vantage_ases` are the probe ASes used for traceroute observation;
  /// `inferred` is the analyst's relationship database.
  ActiveExperiment(const GeneratedInternet* net,
                   const GroundTruthPolicy* policy,
                   const InferredTopology* inferred,
                   std::vector<Asn> vantage_ases, ActiveConfig config,
                   const SiblingGroups* siblings = nullptr);

  /// Runs the poisoning-based discovery over all reachable targets.
  AlternateRouteReport discover_alternate_routes();

  /// Runs the magnet/anycast experiment across all mux sites.
  Table2Report magnet_experiment();

  /// Greedy vantage selection: picks probe ASes maximizing the number of
  /// distinct ASes traversed on default paths toward the testbed (§3.2).
  static std::vector<Asn> select_vantages(const GeneratedInternet& net,
                                          const GroundTruthPolicy& policy,
                                          const std::vector<Asn>& candidates,
                                          int count);

 private:
  /// AS-level paths toward the prefix currently observable: forwarding
  /// paths from the vantage ASes plus collector feed paths.
  std::set<std::vector<Asn>> observe(const BgpEngine& engine) const;

  const GeneratedInternet* net_;
  const GroundTruthPolicy* policy_;
  const InferredTopology* inferred_;
  std::vector<Asn> vantages_;
  ActiveConfig config_;
  const SiblingGroups* siblings_ = nullptr;
};

}  // namespace irp
