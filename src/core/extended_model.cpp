#include "core/extended_model.hpp"

namespace irp {

InferredTopology apply_cable_correction(const InferredTopology& topo,
                                        const CableRegistry& cables) {
  InferredTopology out;
  for (const auto& [pair, rel] : topo.links()) {
    const auto [a, b] = pair;
    const bool a_cable = cables.is_cable_operator(a);
    const bool b_cable = cables.is_cable_operator(b);
    if (a_cable && !b_cable)
      out.set(a, b, InferredRel::kAProviderOfB);
    else if (b_cable && !a_cable)
      out.set(a, b, InferredRel::kBProviderOfA);
    else
      out.set(a, b, rel);
  }
  return out;
}

ExtendedModelReport compute_extended_model(const PassiveDataset& ds,
                                           const GeneratedInternet& net) {
  ExtendedModelReport report;
  const std::size_t num_ases = ds.engine->topology().num_ases();
  const ScenarioOptions simple;
  const ScenarioOptions all1{.use_hybrid = true,
                             .use_siblings = true,
                             .psp = PspMode::kCriteria1};

  // Baselines on the raw aggregated topology.
  {
    const DecisionClassifier classifier{&ds.inferred, num_ases, &ds.hybrid,
                                        &ds.siblings, &ds.observations};
    for (const RouteDecision& d : ds.decisions) {
      report.simple.add(classifier.classify(d, simple));
      report.all_refinements.add(classifier.classify(d, all1));
    }
  }

  // Extended: prune stale links, correct cable relationships, re-run All-1.
  const InferredTopology pruned = prune_stale_links(
      ds.inferred, net.neighbor_history, net.measurement_epoch);
  const InferredTopology corrected =
      apply_cable_correction(pruned, net.cable_registry);
  {
    const DecisionClassifier classifier{&corrected, num_ases, &ds.hybrid,
                                        &ds.siblings, &ds.observations};
    for (const RouteDecision& d : ds.decisions)
      report.extended.add(classifier.classify(d, all1));
  }

  // Attribute the gain of each correction in isolation.
  {
    const DecisionClassifier stale_only{&pruned, num_ases, &ds.hybrid,
                                        &ds.siblings, &ds.observations};
    const InferredTopology cable_only_topo =
        apply_cable_correction(ds.inferred, net.cable_registry);
    const DecisionClassifier cable_only{&cable_only_topo, num_ases,
                                        &ds.hybrid, &ds.siblings,
                                        &ds.observations};
    CategoryBreakdown stale_b, cable_b;
    for (const RouteDecision& d : ds.decisions) {
      stale_b.add(stale_only.classify(d, all1));
      cable_b.add(cable_only.classify(d, all1));
    }
    const double base =
        report.all_refinements.share(DecisionCategory::kBestShort);
    report.stale_gain =
        stale_b.share(DecisionCategory::kBestShort) - base;
    report.cable_gain =
        cable_b.share(DecisionCategory::kBestShort) - base;
  }
  return report;
}

}  // namespace irp
