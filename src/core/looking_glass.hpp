// Looking-glass validation of prefix-specific policies (§4.3).
//
// For every PSP case — a decision that is a violation under the Simple model
// but becomes Best/Short once criteria-1 drops unobserved origin edges — the
// paper queried looking-glass servers in the origin's neighbors to verify
// that the neighbor really lacked a route for the prefix from the origin.
// Here a "looking-glass query" inspects the neighbor's ground-truth
// Adj-RIB-In, which is exactly what a real LG exposes.
#pragma once

#include "core/analysis.hpp"

namespace irp {

/// §4.3 validation summary.
struct PspValidationReport {
  std::size_t psp_cases = 0;           ///< (origin, prefix) cases found.
  std::size_t unique_neighbors = 0;    ///< Distinct removed origin-neighbors.
  std::size_t neighbors_with_lg = 0;   ///< Of those, hosting a looking glass.
  std::size_t checked = 0;             ///< Edge removals verified via an LG.
  std::size_t correct = 0;             ///< Removals the LG confirmed.

  double precision() const {
    return checked == 0 ? 0.0 : double(correct) / double(checked);
  }
};

/// Runs the validation over the passive dataset.
PspValidationReport validate_psp(const PassiveDataset& ds,
                                 const GeneratedInternet& net,
                                 const DecisionClassifier& classifier);

}  // namespace irp
