// Decision classification against the GR model, with the paper's
// refinement ladder (§4.1-§4.3).
//
// A scenario controls which auxiliary datasets refine the raw inferred
// topology:
//   * Complex  — hybrid per-city relationships from the Giotsas-style
//                dataset override the inferred label at matching cities;
//   * Sibs     — a decision whose next hop is an inferred sibling satisfies
//                Best by definition (organizations route freely internally);
//   * PSP-1/2  — the GR path computation drops origin edges over which the
//                destination prefix was never seen announced (criteria 1),
//                or only when the neighbor was seen receiving some prefix
//                from the origin (criteria 2).
#pragma once

#include <map>
#include <memory>
#include <tuple>

#include "core/decisions.hpp"
#include "core/gr_model.hpp"
#include "inference/bgp_observations.hpp"
#include "inference/hybrid_dataset.hpp"
#include "inference/relationships.hpp"
#include "inference/siblings.hpp"

namespace irp {

/// Prefix-specific-policy handling mode (§4.3).
enum class PspMode : std::uint8_t { kNone, kCriteria1, kCriteria2 };

/// One scenario of the Figure 1 ladder.
struct ScenarioOptions {
  bool use_hybrid = false;
  bool use_siblings = false;
  PspMode psp = PspMode::kNone;
};

/// Named standard scenarios in Figure 1 order.
struct NamedScenario {
  std::string name;
  ScenarioOptions options;
};
std::vector<NamedScenario> figure1_scenarios();

/// Classifies decisions against the GR model over an inferred topology.
///
/// GrPathSets are cached per (destination, PSP mode, prefix); the classifier
/// is therefore cheap to call per decision after warm-up.
class DecisionClassifier {
 public:
  DecisionClassifier(const InferredTopology* topo, std::size_t num_ases,
                     const HybridDataset* hybrid,
                     const SiblingGroups* siblings,
                     const BgpObservations* observations);

  DecisionCategory classify(const RouteDecision& d,
                            const ScenarioOptions& opts) const;

  /// Property (1) of §3.3: is the decision via the best-available
  /// relationship class?
  bool is_best(const RouteDecision& d, const ScenarioOptions& opts) const;

  /// Property (2) of §3.3: is the measured remaining path no longer than
  /// the shortest GR path?
  bool is_short(const RouteDecision& d, const ScenarioOptions& opts) const;

  /// The (cached) GR path summary used for a decision under a scenario;
  /// exposed for the geography analyses (witness paths).
  const GrPathSet& path_set(const RouteDecision& d,
                            const ScenarioOptions& opts) const;

  const InferredTopology& topology() const { return *topo_; }
  std::size_t num_ases() const { return model_.num_ases(); }

 private:
  /// Relationship of next_hop from decider's perspective under a scenario.
  std::optional<Relationship> effective_relationship(
      const RouteDecision& d, const ScenarioOptions& opts) const;

  const InferredTopology* topo_;
  GrModel model_;
  const HybridDataset* hybrid_;
  const SiblingGroups* siblings_;
  const BgpObservations* observations_;

  using CacheKey = std::tuple<Asn, int, Ipv4Prefix>;
  mutable std::map<CacheKey, std::unique_ptr<GrPathSet>> cache_;
};

}  // namespace irp
