// Decision classification against the GR model, with the paper's
// refinement ladder (§4.1-§4.3).
//
// A scenario controls which auxiliary datasets refine the raw inferred
// topology:
//   * Complex  — hybrid per-city relationships from the Giotsas-style
//                dataset override the inferred label at matching cities;
//   * Sibs     — a decision whose next hop is an inferred sibling satisfies
//                Best by definition (organizations route freely internally);
//   * PSP-1/2  — the GR path computation drops origin edges over which the
//                destination prefix was never seen announced (criteria 1),
//                or only when the neighbor was seen receiving some prefix
//                from the origin (criteria 2).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/decisions.hpp"
#include "core/gr_model.hpp"
#include "inference/bgp_observations.hpp"
#include "inference/hybrid_dataset.hpp"
#include "inference/relationships.hpp"
#include "inference/siblings.hpp"

namespace irp {

/// Prefix-specific-policy handling mode (§4.3).
enum class PspMode : std::uint8_t { kNone, kCriteria1, kCriteria2 };

/// One scenario of the Figure 1 ladder.
struct ScenarioOptions {
  bool use_hybrid = false;
  bool use_siblings = false;
  PspMode psp = PspMode::kNone;
};

/// Named standard scenarios in Figure 1 order.
struct NamedScenario {
  std::string name;
  ScenarioOptions options;
};
std::vector<NamedScenario> figure1_scenarios();

/// Classifies decisions against the GR model over an inferred topology.
///
/// GrPathSets are cached per (destination, PSP mode, prefix); the classifier
/// is therefore cheap to call per decision after warm-up. The cache is
/// thread-safe: concurrent calls may classify in parallel, and two threads
/// asking for the same key never duplicate a GrModel computation (per-entry
/// once semantics). References returned by path_set stay valid for the
/// classifier's lifetime.
class DecisionClassifier {
 public:
  DecisionClassifier(const InferredTopology* topo, std::size_t num_ases,
                     const HybridDataset* hybrid,
                     const SiblingGroups* siblings,
                     const BgpObservations* observations);

  DecisionClassifier(const DecisionClassifier&) = delete;
  DecisionClassifier& operator=(const DecisionClassifier&) = delete;

  DecisionCategory classify(const RouteDecision& d,
                            const ScenarioOptions& opts) const;

  /// Property (1) of §3.3: is the decision via the best-available
  /// relationship class?
  bool is_best(const RouteDecision& d, const ScenarioOptions& opts) const;

  /// Property (2) of §3.3: is the measured remaining path no longer than
  /// the shortest GR path?
  bool is_short(const RouteDecision& d, const ScenarioOptions& opts) const;

  /// The (cached) GR path summary used for a decision under a scenario;
  /// exposed for the geography analyses (witness paths).
  const GrPathSet& path_set(const RouteDecision& d,
                            const ScenarioOptions& opts) const;

  /// Warms the GrPathSet cache for every distinct (destination, PSP mode,
  /// prefix) key the given decisions touch under the standard Figure 1
  /// scenarios, fanning GrModel::compute out over `threads` workers
  /// (ParallelConfig semantics: 0 = hardware, 1 = inline). Purely a
  /// performance hint — classification results are identical without it.
  void precompute(const std::vector<RouteDecision>& decisions,
                  int threads) const;

  /// Number of GrPathSet computations performed so far — one per distinct
  /// cache key ever requested, regardless of thread count (concurrent
  /// requests for one key compute it exactly once).
  std::size_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  const InferredTopology& topology() const { return *topo_; }
  std::size_t num_ases() const { return model_.num_ases(); }

 private:
  /// Relationship of next_hop from decider's perspective under a scenario.
  std::optional<Relationship> effective_relationship(
      const RouteDecision& d, const ScenarioOptions& opts) const;

  /// The cache key of a decision under a scenario: destination AS, PSP
  /// criteria actually in effect (kNone when no observations are wired in),
  /// and — only when PSP is active — the destination prefix. Scenarios
  /// without PSP share one entry per destination.
  using CacheKey = std::tuple<Asn, int, Ipv4Prefix>;
  CacheKey cache_key(const RouteDecision& d, const ScenarioOptions& opts) const;

  const InferredTopology* topo_;
  GrModel model_;
  const HybridDataset* hybrid_;
  const SiblingGroups* siblings_;
  const BgpObservations* observations_;

  /// One cache slot; `once` guarantees a single computation per key even
  /// under concurrent lookups. Entries are heap-allocated so references
  /// handed out stay stable while the map grows.
  struct CacheEntry {
    std::once_flag once;
    GrPathSet set;
  };
  mutable std::mutex cache_mu_;  ///< Guards the map, not the entries.
  mutable std::map<CacheKey, std::unique_ptr<CacheEntry>> cache_;
  mutable std::atomic<std::size_t> cache_misses_{0};
};

}  // namespace irp
