// Routing decisions extracted from measured paths, and their taxonomy.
//
// Interdomain routing is destination-based, so a traceroute whose AS path is
// a0 a1 ... ak exposes one routing decision per intermediate AS: ai chose
// a(i+1) as its next hop toward the destination (§3.1). Each decision is
// classified against the GR model into the four categories of Figure 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/world.hpp"
#include "net/ipv4.hpp"
#include "topo/types.hpp"

namespace irp {

/// One observed routing decision.
struct RouteDecision {
  Asn decider = 0;
  Asn next_hop = 0;
  Asn dest_asn = 0;                 ///< Last AS of the measured path.
  Asn src_asn = 0;                  ///< First AS of the measured path.
  std::size_t remaining_len = 0;    ///< AS hops from decider to destination.
  Ipv4Prefix dst_prefix;            ///< Destination prefix of the traceroute.
  Asn origin_asn = 0;               ///< Origin of dst_prefix (== dest_asn
                                    ///< unless conversion artifacts differ).
  /// Geolocated city where the path enters next_hop (for hybrid
  /// relationships); absent when geolocation failed.
  std::optional<CityId> interconnect_city;
  /// The measured AS path suffix decider..dest (inclusive).
  std::vector<Asn> measured_remaining;
  /// Index of the traceroute this decision came from.
  std::size_t traceroute_index = 0;
};

/// Figure 1's four decision categories.
enum class DecisionCategory : std::uint8_t {
  kBestShort,
  kNonBestShort,
  kBestLong,
  kNonBestLong,
};

std::string_view decision_category_name(DecisionCategory c);

/// All categories in display order.
inline constexpr DecisionCategory kAllCategories[] = {
    DecisionCategory::kBestShort,
    DecisionCategory::kNonBestShort,
    DecisionCategory::kBestLong,
    DecisionCategory::kNonBestLong,
};

/// True for every category except Best/Short — the paper's "violations".
inline bool is_violation(DecisionCategory c) {
  return c != DecisionCategory::kBestShort;
}

}  // namespace irp
