#include "core/report_io.hpp"

#include <filesystem>
#include <sstream>
#include <system_error>

#include "core/looking_glass.hpp"
#include "util/check.hpp"
#include "util/file.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

/// Quotes a CSV field when it contains separators or quotes.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void category_columns(std::ostringstream& out, const CategoryBreakdown& b) {
  for (DecisionCategory c : kAllCategories)
    out << ',' << b.count(c) << ',' << fixed(b.share(c), 6);
}

constexpr const char* kCategoryHeader =
    "best_short,best_short_share,nonbest_short,nonbest_short_share,"
    "best_long,best_long_share,nonbest_long,nonbest_long_share";

}  // namespace

std::string table1_csv(const Table1Report& r) {
  std::ostringstream out;
  out << "as_type,probes,distinct_ases,distinct_countries\n";
  for (const auto& row : r.rows)
    out << csv_field(row.as_type) << ',' << row.probes << ','
        << row.distinct_ases << ',' << row.distinct_countries << "\n";
  out << "Total," << r.total_probes << ',' << r.total_ases << ','
      << r.total_countries << "\n";
  return out.str();
}

std::string figure1_csv(const Figure1Report& r) {
  std::ostringstream out;
  out << "scenario," << kCategoryHeader << "\n";
  for (const auto& [name, b] : r.scenarios) {
    out << csv_field(name);
    category_columns(out, b);
    out << "\n";
  }
  return out.str();
}

std::string figure2_csv(const SkewReport& r) {
  std::ostringstream out;
  out << "violation_type,axis,rank,cumulative\n";
  for (const auto& [cat, curves] : r.curves) {
    for (const auto& p : curves.by_source)
      out << decision_category_name(cat) << ",source," << p.rank << ','
          << fixed(p.cumulative, 6) << "\n";
    for (const auto& p : curves.by_dest)
      out << decision_category_name(cat) << ",dest," << p.rank << ','
          << fixed(p.cumulative, 6) << "\n";
  }
  return out.str();
}

std::string figure3_csv(const Figure3Report& r) {
  std::ostringstream out;
  out << "scope," << kCategoryHeader << "\n";
  for (const auto& [continent, b] : r.per_continent) {
    out << continent_code(continent);
    category_columns(out, b);
    out << "\n";
  }
  out << "continental";
  category_columns(out, r.continental_all);
  out << "\nintercontinental";
  category_columns(out, r.intercontinental);
  out << "\n";
  return out.str();
}

std::string table2_csv(const Table2Report& r) {
  std::ostringstream out;
  out << "channel,best_relationship,shorter_path,intradomain,oldest_route,"
         "violation,total\n";
  const auto row = [&](const char* name, const TriggerCounts& c) {
    out << name << ',' << c.best_relationship << ',' << c.shorter_path << ','
        << c.intradomain << ',' << c.oldest_route << ',' << c.violation << ','
        << c.total() << "\n";
  };
  row("feeds", r.feeds);
  row("traceroutes", r.traceroutes);
  return out.str();
}

std::string table3_csv(const Table3Report& r) {
  std::ostringstream out;
  out << "continent,domestic_violations,explained,fraction\n";
  for (const auto& row : r.rows) {
    const double f = row.domestic_violations == 0
                         ? 0.0
                         : double(row.explained) /
                               double(row.domestic_violations);
    out << continent_code(row.continent) << ',' << row.domestic_violations
        << ',' << row.explained << ',' << fixed(f, 6) << "\n";
  }
  out << "overall,,," << fixed(r.overall_explained_fraction, 6) << "\n";
  return out.str();
}

std::string table4_csv(const Table4Report& r) {
  std::ostringstream out;
  out << "metric,value\n";
  out << "nonbest_short_explained," << fixed(r.nonbest_short, 6) << "\n";
  out << "best_long_explained," << fixed(r.best_long, 6) << "\n";
  out << "nonbest_long_explained," << fixed(r.nonbest_long, 6) << "\n";
  out << "paths_with_cable," << fixed(r.paths_with_cable, 6) << "\n";
  out << "cable_decision_deviation," << fixed(r.cable_decision_deviation, 6)
      << "\n";
  out << "cable_decisions," << r.cable_decisions << "\n";
  return out.str();
}

std::string alternate_csv(const AlternateRouteReport& r) {
  std::ostringstream out;
  out << "metric,value\n";
  out << "targets," << r.targets << "\n";
  out << "both," << r.both << "\n";
  out << "best_only," << r.best_only << "\n";
  out << "short_only," << r.short_only << "\n";
  out << "neither," << r.neither << "\n";
  out << "poisoned_announcements," << r.poisoned_announcements << "\n";
  out << "links_observed," << r.links_observed << "\n";
  out << "links_not_in_db," << r.links_not_in_db << "\n";
  out << "links_poison_only," << r.links_poison_only << "\n";
  return out.str();
}

std::string psp_csv(const PspValidationReport& r) {
  std::ostringstream out;
  out << "metric,value\n";
  out << "psp_cases," << r.psp_cases << "\n";
  out << "unique_neighbors," << r.unique_neighbors << "\n";
  out << "neighbors_with_lg," << r.neighbors_with_lg << "\n";
  out << "checked," << r.checked << "\n";
  out << "correct," << r.correct << "\n";
  out << "precision," << fixed(r.precision(), 6) << "\n";
  return out.str();
}

int write_all_reports(const StudyResults& results,
                      const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  IRP_CHECK(!ec, "cannot create report directory " + directory + ": " +
                     ec.message());
  IRP_CHECK(std::filesystem::is_directory(directory, ec),
            "report path is not a directory: " + directory);
  const auto path = [&](const char* name) {
    return directory + "/" + name + ".csv";
  };
  write_file(path("table1"), table1_csv(results.table1));
  write_file(path("figure1"), figure1_csv(results.figure1));
  write_file(path("figure2"), figure2_csv(results.skew));
  write_file(path("figure3"), figure3_csv(results.figure3));
  write_file(path("table2"), table2_csv(results.table2));
  write_file(path("table3"), table3_csv(results.table3));
  write_file(path("table4"), table4_csv(results.table4));
  write_file(path("alternate_routes"), alternate_csv(results.alternate));
  write_file(path("psp_validation"), psp_csv(results.psp));
  return 9;
}

}  // namespace irp
