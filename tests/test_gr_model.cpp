// Tests for the Gao-Rexford path model, including a brute-force
// equivalence property on random small topologies.
#include <gtest/gtest.h>

#include <functional>

#include "core/gr_model.hpp"
#include "util/rng.hpp"

namespace irp {
namespace {

InferredTopology chain_topology() {
  // 1 <-provider- 2 <-provider- 3 ; 3 -peer- 4 ; 4 -provider-> 5
  // (2 buys from 1; 3 buys from 2; 3 peers 4; 5 buys from 4).
  InferredTopology t;
  t.set(1, 2, InferredRel::kAProviderOfB);
  t.set(2, 3, InferredRel::kAProviderOfB);
  t.set(3, 4, InferredRel::kPeer);
  t.set(4, 5, InferredRel::kAProviderOfB);
  return t;
}

TEST(GrModel, ClassLengthsOnChain) {
  const auto topo = chain_topology();
  GrModel model{&topo, 5};
  const auto ps = model.compute(3);  // Destination: AS 3.

  // AS 2 is 3's provider: customer route of length 1.
  EXPECT_EQ(ps.length_via(2, Relationship::kCustomer), 1u);
  EXPECT_EQ(ps.best_class(2), Relationship::kCustomer);
  // AS 1 reaches 3 down through 2.
  EXPECT_EQ(ps.length_via(1, Relationship::kCustomer), 2u);
  // AS 4 peers with 3.
  EXPECT_EQ(ps.length_via(4, Relationship::kPeer), 1u);
  EXPECT_EQ(ps.best_class(4), Relationship::kPeer);
  // AS 5 goes up through its provider 4.
  EXPECT_EQ(ps.length_via(5, Relationship::kProvider), 2u);
  EXPECT_EQ(ps.best_class(5), Relationship::kProvider);
  EXPECT_EQ(ps.shortest_length(5), 2u);
  EXPECT_EQ(ps.shortest_length(3), 0u);
}

TEST(GrModel, ValleyFreeBlocksPeerPeerAndPeerUp) {
  // 1 -peer- 2 -peer- 3: 1 cannot reach 3 (two flat hops).
  InferredTopology t;
  t.set(1, 2, InferredRel::kPeer);
  t.set(2, 3, InferredRel::kPeer);
  GrModel model{&t, 3};
  const auto ps = model.compute(3);
  EXPECT_EQ(ps.best_class(1), std::nullopt);
  EXPECT_EQ(ps.shortest_length(1), kUnreachable);
  EXPECT_EQ(ps.best_class(2), Relationship::kPeer);
}

TEST(GrModel, ProviderRouteAllowsFullValley) {
  // 1 buys from 2; 2 peers 3; 3 is provider of 4 (4 buys from 3):
  // path 1 -(up)- 2 -(flat)- 3 -(down)- 4 is valley-free, length 3.
  InferredTopology t;
  t.set(2, 1, InferredRel::kAProviderOfB);  // 2 provider of 1.
  t.set(2, 3, InferredRel::kPeer);
  t.set(3, 4, InferredRel::kAProviderOfB);  // 3 provider of 4.
  GrModel model{&t, 4};
  const auto ps = model.compute(4);
  EXPECT_EQ(ps.best_class(1), Relationship::kProvider);
  EXPECT_EQ(ps.shortest_length(1), 3u);
  EXPECT_EQ(ps.witness_shortest(1), (std::vector<Asn>{2, 3, 4}));
}

TEST(GrModel, OriginEdgeFilterRemovesPaths) {
  // Destination 3 is reachable via neighbors 1 and 2.
  InferredTopology t;
  t.set(1, 3, InferredRel::kAProviderOfB);  // 1 provider of 3.
  t.set(2, 3, InferredRel::kAProviderOfB);  // 2 provider of 3.
  t.set(1, 2, InferredRel::kPeer);
  GrModel model{&t, 3};

  const auto unfiltered = model.compute(3);
  EXPECT_EQ(unfiltered.length_via(1, Relationship::kCustomer), 1u);
  EXPECT_EQ(unfiltered.length_via(2, Relationship::kCustomer), 1u);

  // Only neighbor 1 may use its direct edge (selective announcement).
  const auto filtered =
      model.compute(3, [](Asn neighbor) { return neighbor == 1; });
  EXPECT_EQ(filtered.length_via(1, Relationship::kCustomer), 1u);
  EXPECT_EQ(filtered.length_via(2, Relationship::kCustomer), kUnreachable);
  // 2 can still reach 3 via its peer 1 (peer-of-customer is not valid —
  // 1's route to 3 is a customer route, exportable to peer 2).
  EXPECT_EQ(filtered.length_via(2, Relationship::kPeer), 2u);
}

TEST(GrModel, WitnessPathsMatchReportedLengths) {
  const auto topo = chain_topology();
  GrModel model{&topo, 5};
  const auto ps = model.compute(3);
  for (Asn asn = 1; asn <= 5; ++asn) {
    const auto witness = ps.witness_shortest(asn);
    if (ps.shortest_length(asn) == kUnreachable || asn == 3) {
      EXPECT_TRUE(witness.empty());
      continue;
    }
    EXPECT_EQ(witness.size(), ps.shortest_length(asn));
    EXPECT_EQ(witness.back(), 3u);
  }
}

// ---------------------------------------------------------------------------
// Brute-force equivalence: on random small topologies, GrModel must agree
// with exhaustive enumeration of valley-free paths.

/// All valley-free path lengths from src to dst, bucketed by first-hop
/// class; returns shortest length per class (kUnreachable if none).
struct BruteResult {
  std::size_t cust = kUnreachable, peer = kUnreachable, prov = kUnreachable;
};

BruteResult brute_force(const InferredTopology& topo, std::size_t n, Asn src,
                        Asn dst) {
  BruteResult out;
  std::vector<Asn> path{src};
  std::vector<bool> used(n + 1, false);
  used[src] = true;

  // state: 0 = still climbing (up ok), 1 = after flat, 2 = descending.
  std::function<void(Asn, int)> dfs = [&](Asn cur, int state) {
    if (cur == dst) {
      const std::size_t len = path.size() - 1;
      const Relationship first = *topo.relationship(src, path[1]);
      auto& slot = first == Relationship::kCustomer
                       ? out.cust
                       : (first == Relationship::kPeer ? out.peer : out.prov);
      slot = std::min(slot, len);
      return;
    }
    for (Asn next : topo.neighbors(cur)) {
      if (used[next]) continue;
      const Relationship rel = *topo.relationship(cur, next);
      int next_state;
      if (rel == Relationship::kProvider) {
        if (state != 0) continue;  // Up only while climbing.
        next_state = 0;
      } else if (rel == Relationship::kPeer) {
        if (state != 0) continue;  // One flat hop, only at the top.
        next_state = 2;
      } else {
        next_state = 2;  // Down is always allowed and locks descent.
      }
      used[next] = true;
      path.push_back(next);
      dfs(next, next_state);
      path.pop_back();
      used[next] = false;
    }
  };
  dfs(src, 0);
  return out;
}

TEST(GrModel, MatchesBruteForceOnRandomTopologies) {
  Rng rng{2024};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 7;
    InferredTopology topo;
    for (Asn a = 1; a <= n; ++a)
      for (Asn b = a + 1; b <= n; ++b) {
        if (!rng.chance(0.45)) continue;
        const int kind = rng.uniform_int(0, 2);
        topo.set(a, b,
                 kind == 0 ? InferredRel::kPeer
                           : (kind == 1 ? InferredRel::kAProviderOfB
                                        : InferredRel::kBProviderOfA));
      }
    GrModel model{&topo, n};
    for (Asn dst = 1; dst <= n; ++dst) {
      const auto ps = model.compute(dst);
      for (Asn src = 1; src <= n; ++src) {
        if (src == dst) continue;
        const auto brute = brute_force(topo, n, src, dst);
        const std::string ctx = "trial " + std::to_string(trial) + " src " +
                                std::to_string(src) + " dst " +
                                std::to_string(dst);
        // Customer routes are computed by simple-path BFS: exact.
        EXPECT_EQ(ps.length_via(src, Relationship::kCustomer), brute.cust)
            << ctx;
        // Peer/provider lengths may be optimistic when the only route of
        // that class loops through the source (see gr_model.hpp); they are
        // never longer than the simple-path optimum.
        EXPECT_LE(ps.length_via(src, Relationship::kPeer), brute.peer) << ctx;
        EXPECT_LE(ps.length_via(src, Relationship::kProvider), brute.prov)
            << ctx;

        // The quantities the classifier consumes are exact.
        const std::size_t brute_shortest =
            std::min({brute.cust, brute.peer, brute.prov});
        EXPECT_EQ(ps.shortest_length(src), brute_shortest) << ctx;
        std::optional<Relationship> brute_best;
        if (brute.cust != kUnreachable)
          brute_best = Relationship::kCustomer;
        else if (brute.peer != kUnreachable)
          brute_best = Relationship::kPeer;
        else if (brute.prov != kUnreachable)
          brute_best = Relationship::kProvider;
        EXPECT_EQ(ps.best_class(src), brute_best) << ctx;
      }
    }
  }
}

/// Witness property: on random topologies every witness path is valley-free
/// and exactly as long as the reported shortest length.
TEST(GrModel, WitnessesAreValleyFreeOnRandomTopologies) {
  Rng rng{4048};
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 8;
    InferredTopology topo;
    for (Asn a = 1; a <= n; ++a)
      for (Asn b = a + 1; b <= n; ++b) {
        if (!rng.chance(0.4)) continue;
        const int kind = rng.uniform_int(0, 2);
        topo.set(a, b,
                 kind == 0 ? InferredRel::kPeer
                           : (kind == 1 ? InferredRel::kAProviderOfB
                                        : InferredRel::kBProviderOfA));
      }
    GrModel model{&topo, n};
    for (Asn dst = 1; dst <= n; ++dst) {
      const auto ps = model.compute(dst);
      for (Asn src = 1; src <= n; ++src) {
        if (src == dst || ps.shortest_length(src) == kUnreachable) continue;
        const auto witness = ps.witness_shortest(src);
        ASSERT_EQ(witness.size(), ps.shortest_length(src));
        // Valley-free check along src -> witness...
        int state = 0;
        Asn prev = src;
        for (Asn next : witness) {
          const auto rel = topo.relationship(prev, next);
          ASSERT_TRUE(rel.has_value()) << "witness uses a non-edge";
          if (*rel == Relationship::kProvider)
            ASSERT_EQ(state, 0);
          else if (*rel == Relationship::kPeer) {
            ASSERT_EQ(state, 0);
            state = 2;
          } else {
            state = 2;
          }
          prev = next;
        }
        ASSERT_EQ(witness.back(), dst);
      }
    }
  }
}

}  // namespace
}  // namespace irp
