// OracleWire codec tests: every request/response variant round-trips
// bit-exactly through the frame layer, the incremental decoder handles
// arbitrary stream fragmentation, and the malformed-frame corpus — bad
// magic, wrong version, reserved flags, unknown type, oversized claims,
// corrupted payloads, truncations — is rejected with the precise
// WireFault. A golden-bytes test pins the exact encoding of the worked
// example in docs/PROTOCOL.md: if it fails, the encoding moved and the
// spec must be regenerated with build/examples/wire_dump.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "serve/byte_io.hpp"
#include "serve/wire.hpp"

namespace irp {
namespace {

// -- Example messages, one per variant, with every optional field exercised.

ClassifyRequest example_classify_request() {
  ClassifyRequest req;
  req.decision.decider = 11;
  req.decision.next_hop = 7;
  req.decision.dest_asn = 42;
  req.decision.src_asn = 2;
  req.decision.origin_asn = 42;
  req.decision.remaining_len = 3;
  req.decision.dst_prefix = *Ipv4Prefix::parse("10.42.0.0/16");
  req.decision.interconnect_city = 5;
  req.decision.measured_remaining = {11, 9, 42};
  req.decision.traceroute_index = 12345;
  req.scenario.use_hybrid = true;
  req.scenario.use_siblings = false;
  req.scenario.psp = PspMode::kCriteria2;
  return req;
}

AlternateRoutesResponse example_alternates_response() {
  AlternateRoutesResponse resp;
  resp.has_route = true;
  resp.self_originated = false;
  resp.next_hop = 7;
  resp.selected.hops = {7, 3, 42};
  AlternateRoutesResponse::Alternate alt;
  alt.from_asn = 9;
  alt.path.hops = {9, 4, 42};
  alt.path.poison_set = {13, 17};
  resp.alternates.push_back(alt);
  return resp;
}

std::string from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  int high = -1;
  for (char c : hex) {
    const int v = nibble(c);
    if (v < 0) continue;  // Whitespace/newlines in the literal.
    if (high < 0) {
      high = v;
    } else {
      out.push_back(static_cast<char>((high << 4) | v));
      high = -1;
    }
  }
  return out;
}

/// Decodes a single complete frame, asserting nothing is left over.
WireFrame decode_one(const std::string& bytes) {
  std::string buffer = bytes;
  auto frame = try_decode_frame(buffer);
  EXPECT_TRUE(frame.has_value());
  EXPECT_TRUE(buffer.empty());
  return std::move(*frame);
}

WireFault fault_of(const std::string& bytes) {
  std::string buffer = bytes;
  try {
    (void)try_decode_frame(buffer);
  } catch (const WireDecodeError& e) {
    return e.fault();
  }
  ADD_FAILURE() << "bytes decoded without a fault";
  return WireFault::kBadMagic;
}

// -- Round trips. Request/response structs do not all define operator==, so
// equality is proven the same way the snapshot tests do: decode, re-encode,
// compare bytes — which covers every field at once.

TEST(Wire, ClassifyRequestRoundTrip) {
  const ClassifyRequest req = example_classify_request();
  const std::string bytes = encode_request(77, OracleRequest{req});
  const WireFrame frame = decode_one(bytes);
  EXPECT_EQ(frame.type, FrameType::kClassifyRequest);
  EXPECT_EQ(frame.request_id, 77u);
  const OracleRequest decoded = decode_request(frame);
  const auto& d = std::get<ClassifyRequest>(decoded);
  EXPECT_EQ(d.decision.decider, 11u);
  EXPECT_EQ(d.decision.interconnect_city, std::optional<CityId>(5));
  EXPECT_EQ(d.decision.measured_remaining, (std::vector<Asn>{11, 9, 42}));
  EXPECT_EQ(d.decision.traceroute_index, 12345u);
  EXPECT_TRUE(d.scenario.use_hybrid);
  EXPECT_FALSE(d.scenario.use_siblings);
  EXPECT_EQ(d.scenario.psp, PspMode::kCriteria2);
  EXPECT_EQ(encode_request(77, decoded), bytes);
}

TEST(Wire, EveryRequestVariantRoundTrips) {
  const Ipv4Prefix prefix = *Ipv4Prefix::parse("192.0.2.0/24");
  const std::vector<OracleRequest> requests = {
      OracleRequest{example_classify_request()},
      OracleRequest{AlternateRoutesRequest{11, prefix}},
      OracleRequest{PspVisibilityRequest{42, 7, prefix}},
      OracleRequest{RelationshipLookupRequest{3, 9}},
  };
  std::uint64_t id = 1;
  for (const OracleRequest& request : requests) {
    const std::string bytes = encode_request(id, request);
    const WireFrame frame = decode_one(bytes);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(static_cast<std::size_t>(frame.type), request.index());
    EXPECT_EQ(encode_request(id, decode_request(frame)), bytes);
    ++id;
  }
}

TEST(Wire, EveryResponseVariantRoundTrips) {
  ClassifyResponse classify;
  classify.category = DecisionCategory::kNonBestLong;
  classify.best = false;
  classify.is_short = false;

  PspVisibilityResponse psp;
  psp.announced = true;
  psp.announced_any = true;
  psp.neighbors = {2, 5, 8};

  RelationshipLookupResponse rel;
  rel.has_link = true;
  rel.rel = Relationship::kProvider;
  rel.same_sibling_group = true;

  const std::vector<OracleResponse> responses = {
      OracleResponse{classify},
      OracleResponse{example_alternates_response()},
      OracleResponse{AlternateRoutesResponse{}},  // no-route: all defaults.
      OracleResponse{psp},
      OracleResponse{rel},
      OracleResponse{RelationshipLookupResponse{}},  // no link, no rel.
  };
  std::uint64_t id = 100;
  for (const OracleResponse& response : responses) {
    const std::string bytes = encode_response(id, response);
    const WireFrame frame = decode_one(bytes);
    EXPECT_EQ(frame.request_id, id);
    const auto reply = decode_reply(frame);
    const auto& decoded = std::get<OracleResponse>(reply);
    EXPECT_EQ(decoded.index(), response.index());
    EXPECT_EQ(encode_response(id, decoded), bytes);
    // The CLI's rendering is the byte-equality oracle of the end-to-end
    // tests; make sure the codec preserves it too.
    EXPECT_EQ(to_text(decoded), to_text(response));
    ++id;
  }
}

TEST(Wire, ErrorFrameRoundTrip) {
  const std::string bytes =
      encode_error(9, WireErrorCode::kOverloaded, "service queue full");
  const WireFrame frame = decode_one(bytes);
  EXPECT_EQ(frame.type, FrameType::kError);
  const auto reply = decode_reply(frame);
  const auto& err = std::get<WireError>(reply);
  EXPECT_EQ(err.code, WireErrorCode::kOverloaded);
  EXPECT_EQ(err.message, "service queue full");
}

// -- Stream behavior.

TEST(Wire, IncrementalDecodeAcrossArbitrarySplits) {
  const std::string a = encode_request(1, OracleRequest{example_classify_request()});
  const std::string b =
      encode_request(2, OracleRequest{RelationshipLookupRequest{3, 9}});
  const std::string stream = a + b;

  // Feed one byte at a time; frames must appear exactly at their
  // boundaries and consume exactly their own bytes.
  std::string buffer;
  std::vector<WireFrame> frames;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    buffer.push_back(stream[i]);
    while (auto frame = try_decode_frame(buffer)) frames.push_back(*frame);
    const bool past_first = i + 1 >= a.size();
    EXPECT_EQ(frames.size(), (past_first ? 1u : 0u) +
                                 (i + 1 == stream.size() ? 1u : 0u));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].request_id, 1u);
  EXPECT_EQ(frames[1].request_id, 2u);
  EXPECT_TRUE(buffer.empty());
}

TEST(Wire, IncompleteFrameIsNotAnError) {
  const std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::string buffer = bytes.substr(0, cut);
    EXPECT_FALSE(try_decode_frame(buffer).has_value()) << "cut=" << cut;
    EXPECT_EQ(buffer.size(), cut);  // Nothing consumed while incomplete.
  }
}

// -- Malformed corpus. Each fault is injected surgically into an otherwise
// valid frame so exactly one rule breaks at a time.

TEST(Wire, RejectsBadMagic) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[0] = 'X';
  EXPECT_EQ(fault_of(bytes), WireFault::kBadMagic);
}

TEST(Wire, RejectsWrongVersion) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[4] = 99;
  EXPECT_EQ(fault_of(bytes), WireFault::kBadVersion);
}

TEST(Wire, RejectsUnknownFrameType) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[6] = 0x7f;
  EXPECT_EQ(fault_of(bytes), WireFault::kBadType);
}

TEST(Wire, RejectsReservedFlags) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[7] = 1;
  EXPECT_EQ(fault_of(bytes), WireFault::kBadFlags);
}

TEST(Wire, RejectsOversizedPayloadFromHeaderAlone) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  // Claim a payload far over the bound; only the header is present, yet the
  // decoder must refuse instead of waiting to buffer it.
  const std::uint32_t huge = kMaxWirePayload + 1;
  std::memcpy(&bytes[16], &huge, sizeof huge);
  std::string buffer = bytes.substr(0, kWireHeaderBytes);
  try {
    (void)try_decode_frame(buffer);
    FAIL() << "oversized claim decoded";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kOversized);
  }
}

TEST(Wire, OversizedBoundIsConfigurable) {
  const std::string bytes =
      encode_request(1, OracleRequest{example_classify_request()});
  std::string buffer = bytes;
  try {
    (void)try_decode_frame(buffer, 8);  // Tighter receiver-side bound.
    FAIL() << "frame over the configured bound decoded";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kOversized);
  }
}

TEST(Wire, RejectsCorruptedPayload) {
  std::string bytes =
      encode_request(1, OracleRequest{example_classify_request()});
  bytes[kWireHeaderBytes + 3] ^= 0x40;  // Flip one payload bit.
  EXPECT_EQ(fault_of(bytes), WireFault::kChecksumMismatch);
}

TEST(Wire, RejectsTruncatedPayloadEncoding) {
  // A frame whose payload is well-checksummed but too short for its own
  // type: relationship lookup needs 8 bytes, give it 4.
  WireFrame frame;
  frame.type = FrameType::kRelationshipLookupRequest;
  frame.request_id = 1;
  frame.payload = std::string(4, '\0');
  const WireFrame decoded = decode_one(encode_frame(frame));
  try {
    (void)decode_request(decoded);
    FAIL() << "truncated payload decoded";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(Wire, RejectsTrailingPayloadBytes) {
  WireFrame frame;
  frame.type = FrameType::kRelationshipLookupRequest;
  frame.request_id = 1;
  frame.payload = std::string(12, '\0');  // 4 bytes too many.
  const WireFrame decoded = decode_one(encode_frame(frame));
  try {
    (void)decode_request(decoded);
    FAIL() << "trailing bytes decoded";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(Wire, RejectsReservedScenarioBits) {
  std::string bytes =
      encode_request(1, OracleRequest{example_classify_request()});
  // The scenario byte is the last payload byte; set a reserved bit and
  // re-checksum so only the payload rule fails.
  WireFrame frame = decode_one(bytes);
  frame.payload.back() = static_cast<char>(0x80);
  const WireFrame rewritten = decode_one(encode_frame(frame));
  try {
    (void)decode_request(rewritten);
    FAIL() << "reserved scenario bits decoded";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

TEST(Wire, RejectsRequestDecodeOfResponseFrame) {
  const std::string bytes = encode_response(1, OracleResponse{ClassifyResponse{}});
  const WireFrame frame = decode_one(bytes);
  try {
    (void)decode_request(frame);
    FAIL() << "response frame decoded as request";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kBadType);
  }
}

TEST(Wire, RejectsBadEnumValuesInReplies) {
  // Decision category 9 does not exist.
  WireFrame frame;
  frame.type = FrameType::kClassifyResponse;
  frame.request_id = 1;
  frame.payload = std::string{'\x09', '\x00', '\x00'};
  const WireFrame decoded = decode_one(encode_frame(frame));
  try {
    (void)decode_reply(decoded);
    FAIL() << "bad category decoded";
  } catch (const WireDecodeError& e) {
    EXPECT_EQ(e.fault(), WireFault::kMalformedPayload);
  }
}

// -- Study-tagged frames (wire version 2). A nonempty study id bumps the
// version and sets kWireFlagStudy; an empty one must encode exactly the
// version-1 bytes so pre-multi-study peers interoperate unchanged.

TEST(WireStudy, StudyRequestRoundTrips) {
  const OracleRequest request{example_classify_request()};
  const std::string plain = encode_request(7, request);
  const std::string tagged = encode_request(7, request, "epoch-b");

  // Header: version 2, study flag set; the study prefix rides in the
  // payload, so the frame is longer by str("epoch-b") = 4 + 7 bytes.
  EXPECT_EQ(static_cast<unsigned char>(tagged[4]), 2);
  EXPECT_EQ(static_cast<unsigned char>(tagged[7]), kWireFlagStudy);
  EXPECT_EQ(tagged.size(), plain.size() + 4 + 7);

  const WireFrame frame = decode_one(tagged);
  EXPECT_EQ(frame.study, "epoch-b");
  EXPECT_EQ(frame.request_id, 7u);
  // After the prefix is peeled, the payload is the version-1 payload and
  // decodes to the same request.
  EXPECT_EQ(encode_request(7, decode_request(frame)), plain);
  // Re-encoding the decoded frame (study and all) reproduces the bytes.
  EXPECT_EQ(encode_frame(frame), tagged);
}

TEST(WireStudy, EmptyStudyEncodesExactVersion1Bytes) {
  const OracleRequest request{RelationshipLookupRequest{3, 9}};
  EXPECT_EQ(encode_request(1, request, ""), encode_request(1, request));
  const std::string bytes = encode_request(1, request);
  EXPECT_EQ(static_cast<unsigned char>(bytes[4]), 1);
  EXPECT_EQ(static_cast<unsigned char>(bytes[7]), 0);
}

TEST(WireStudy, Version2WithoutStudyFlagDecodes) {
  // A v2 peer may emit flags == 0 (no study); the payload then has no
  // prefix. The checksum covers only the payload, so patching the version
  // byte alone yields a valid frame.
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[4] = 2;
  const WireFrame frame = decode_one(bytes);
  EXPECT_TRUE(frame.study.empty());
  (void)decode_request(frame);
}

TEST(WireStudy, RejectsReservedFlagBitsInVersion2) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[4] = 2;
  bytes[7] = 0x02;  // Not kWireFlagStudy; reserved even in v2.
  EXPECT_EQ(fault_of(bytes), WireFault::kBadFlags);
}

TEST(WireStudy, RejectsVersionJustAboveRange) {
  std::string bytes =
      encode_request(1, OracleRequest{RelationshipLookupRequest{3, 9}});
  bytes[4] = 3;  // The exact upper bound, not just 99.
  EXPECT_EQ(fault_of(bytes), WireFault::kBadVersion);
}

TEST(WireStudy, UnknownStudyErrorRoundTrips) {
  const std::string bytes =
      encode_error(9, WireErrorCode::kUnknownStudy, "unknown study 'x'");
  const WireFrame frame = decode_one(bytes);
  const auto reply = decode_reply(frame);
  const auto& err = std::get<WireError>(reply);
  EXPECT_EQ(err.code, WireErrorCode::kUnknownStudy);
  EXPECT_EQ(err.message, "unknown study 'x'");
  EXPECT_EQ(wire_error_code_name(err.code), "unknown_study");
}

TEST(WireStudy, RejectsUndecodableStudyPrefix) {
  // Flag claimed, but the prefix's length word runs past the payload: a
  // framing-level fault, not a per-request decode error.
  ByteWriter body;
  body.u32(1000);  // str() length far beyond the body.
  const std::string body_bytes = body.take();
  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(2);
  w.u8(0x03);  // relationship_request
  w.u8(kWireFlagStudy);
  w.u64(1);
  w.u32(static_cast<std::uint32_t>(body_bytes.size()));
  w.u64(fnv1a64(body_bytes));
  EXPECT_EQ(fault_of(w.take() + body_bytes), WireFault::kMalformedPayload);
}

// -- The golden bytes behind docs/PROTOCOL.md's worked example. If this
// test fails, the wire encoding changed: bump kWireVersion and regenerate
// the spec example with build/examples/wire_dump.

TEST(Wire, GoldenClassifyRoundTripMatchesProtocolDoc) {
  ClassifyRequest request;
  request.decision.decider = 11;
  request.decision.next_hop = 7;
  request.decision.dest_asn = 42;
  request.decision.src_asn = 2;
  request.decision.origin_asn = 42;
  request.decision.remaining_len = 3;
  request.decision.dst_prefix = *Ipv4Prefix::parse("10.42.0.0/16");
  request.decision.measured_remaining = {11, 9, 42};
  request.scenario.use_hybrid = true;
  request.scenario.use_siblings = true;
  request.scenario.psp = PspMode::kCriteria1;

  const std::string expected_request = from_hex(
      "49 52 50 57 01 00 00 00 07 00 00 00 00 00 00 00"
      "3b 00 00 00 38 b7 0d a0 db 63 22 d5 0b 00 00 00"
      "07 00 00 00 2a 00 00 00 02 00 00 00 2a 00 00 00"
      "03 00 00 00 00 00 2a 0a 10 00 00 00 00 00 00 00"
      "00 00 00 00 00 00 03 00 00 00 0b 00 00 00 09 00"
      "00 00 2a 00 00 00 07");
  EXPECT_EQ(encode_request(7, OracleRequest{request}), expected_request);

  ClassifyResponse response;
  response.category = DecisionCategory::kNonBestShort;
  response.best = false;
  response.is_short = true;

  const std::string expected_response = from_hex(
      "49 52 50 57 01 00 10 00 07 00 00 00 00 00 00 00"
      "03 00 00 00 bf 32 27 67 18 98 a3 d0 01 00 01");
  EXPECT_EQ(encode_response(7, OracleResponse{response}), expected_response);
}

}  // namespace
}  // namespace irp
