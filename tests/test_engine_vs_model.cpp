// Cross-validation: on *policy-pure* Gao-Rexford topologies (no TE deltas,
// no flat preferences, no siblings, no partial transit), the BGP engine and
// the analytical GR model must agree:
//   * reachability is identical (an AS has a route iff a GR path exists);
//   * the class of the chosen route equals the model's best class;
//   * the chosen path length is never shorter than the model's shortest.
//
// Note the length can legitimately be *longer*: BGP composes local
// selections (each AS exports only its own best route), while the model
// enumerates every valley-free path — one of the structural reasons even a
// GR-pure Internet produces "Best/Long" decisions under the paper's
// methodology.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "core/gr_model.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace irp {
namespace {

/// Builds a random policy-pure topology and its InferredTopology mirror.
struct PureGr {
  test::TinyTopo tiny;
  InferredTopology mirror;
};

PureGr random_pure_gr(Rng& rng, std::size_t n) {
  PureGr out;
  out.tiny.add(int(n));
  // A provider tree guarantees base connectivity: each AS i >= 2 buys from
  // a random earlier AS, so AS 1 is the root.
  for (Asn i = 2; i <= n; ++i) {
    const Asn provider = Asn(1 + rng.index(i - 1));
    out.tiny.link(provider, i, Relationship::kCustomer);
    out.mirror.set(provider, i, provider < i ? InferredRel::kAProviderOfB
                                             : InferredRel::kBProviderOfA);
  }
  // Sprinkle peer links between unrelated pairs.
  for (Asn a = 1; a <= n; ++a)
    for (Asn b = a + 1; b <= n; ++b) {
      if (!out.tiny.topo.links_between(a, b).empty()) continue;
      if (!rng.chance(0.15)) continue;
      out.tiny.link(a, b, Relationship::kPeer);
      out.mirror.set(a, b, InferredRel::kPeer);
    }
  return out;
}

TEST(EngineVsModel, AgreeOnPureGaoRexfordTopologies) {
  Rng rng{20240705};
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 12;
    PureGr gr = random_pure_gr(rng, n);
    GroundTruthPolicy policy{&gr.tiny.topo};
    GrModel model{&gr.mirror, n};

    for (Asn dest = 1; dest <= n; ++dest) {
      BgpEngine engine{&gr.tiny.topo, &policy, 0};
      const Ipv4Prefix pfx = gr.tiny.prefix_of(dest);
      engine.announce(pfx, dest);
      engine.run();
      ASSERT_TRUE(engine.converged());
      const GrPathSet ps = model.compute(dest);

      for (Asn x = 1; x <= n; ++x) {
        if (x == dest) continue;
        const auto* sel = engine.best(x, pfx);
        const auto best = ps.best_class(x);
        const std::string ctx = "trial " + std::to_string(trial) + " dest " +
                                std::to_string(dest) + " x " +
                                std::to_string(x);
        // Reachability equivalence.
        ASSERT_EQ(sel != nullptr, best.has_value()) << ctx;
        if (sel == nullptr) continue;
        // Class agreement.
        const Relationship chosen_rel = gr.tiny.topo.relationship_from(
            gr.tiny.topo.link(sel->via_link), x);
        EXPECT_EQ(preference_class(chosen_rel), preference_class(*best))
            << ctx;
        // The realized path is never shorter than the model's shortest.
        EXPECT_GE(sel->path.length(), ps.shortest_length(x)) << ctx;
        // And the realized path is itself valley-free.
        int state = 0;
        Asn prev = x;
        for (Asn hop : sel->path.hops) {
          const auto rel = gr.mirror.relationship(prev, hop);
          ASSERT_TRUE(rel.has_value()) << ctx;
          if (*rel == Relationship::kProvider) {
            ASSERT_EQ(state, 0) << ctx << ": up after flat/down";
          } else if (*rel == Relationship::kPeer) {
            ASSERT_EQ(state, 0) << ctx << ": second flat hop";
            state = 2;
          } else {
            state = 2;
          }
          prev = hop;
        }
      }
    }
  }
}

TEST(EngineVsModel, PoisoningNeverCreatesInvalidPaths) {
  Rng rng{777};
  PureGr gr = random_pure_gr(rng, 10);
  GroundTruthPolicy policy{&gr.tiny.topo};
  const Asn dest = 5;
  const Ipv4Prefix pfx = gr.tiny.prefix_of(dest);
  BgpEngine engine{&gr.tiny.topo, &policy, 0};
  engine.announce(pfx, dest);
  engine.run();

  // Poison progressively larger random sets; every surviving route must
  // avoid every poisoned AS and stay valley-free.
  std::vector<Asn> poison;
  for (int round = 0; round < 5; ++round) {
    const Asn victim = Asn(1 + rng.index(10));
    if (victim == dest) continue;
    poison.push_back(victim);
    engine.announce(pfx, dest, AnnounceOptions{.poison_set = poison});
    engine.run();
    for (Asn x = 1; x <= 10; ++x) {
      const auto* sel = engine.best(x, pfx);
      if (sel == nullptr || sel->self_originated) continue;
      for (Asn bad : poison) {
        EXPECT_NE(x, bad) << "poisoned AS kept a route";
        for (Asn hop : sel->path.hops) EXPECT_NE(hop, bad);
      }
    }
  }
}

}  // namespace
}  // namespace irp
