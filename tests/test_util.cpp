// Tests for strings, tables, and statistics helpers.
#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace irp {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ","), "a,b,c");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, CaseAndAffixes) {
  EXPECT_EQ(to_lower("RIR-EU"), "rir-eu");
  EXPECT_TRUE(starts_with("rir-eu.example", "rir-"));
  EXPECT_FALSE(starts_with("eu", "rir-"));
  EXPECT_TRUE(ends_with("dish.com", ".com"));
  EXPECT_FALSE(ends_with("c", ".com"));
}

TEST(Strings, PercentFormatting) {
  EXPECT_EQ(percent(0.343), "34.3%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t{{"Name", "Count"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t{{"A", "B"}};
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Counter, SharesAndOrdering) {
  Counter<std::string> c;
  c.add("x", 3);
  c.add("y");
  c.add("x");
  EXPECT_EQ(c.total(), 5u);
  EXPECT_EQ(c.count("x"), 4u);
  EXPECT_DOUBLE_EQ(c.share("x"), 0.8);
  EXPECT_DOUBLE_EQ(c.share("missing"), 0.0);
  const auto sorted = c.sorted_desc();
  EXPECT_EQ(sorted.front().first, "x");
}

TEST(Stats, RankedCdfIsMonotoneAndEndsAtOne) {
  const auto cdf = ranked_cdf({5, 1, 3, 1});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].cumulative, cdf[i - 1].cumulative);
    EXPECT_EQ(cdf[i].rank, i + 1);
  }
  // Largest contributor first: 5/10.
  EXPECT_DOUBLE_EQ(cdf.front().cumulative, 0.5);
}

TEST(Stats, RankedCdfEmptyInput) {
  EXPECT_TRUE(ranked_cdf({}).empty());
}

TEST(Stats, MeanAndPercentile) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
  EXPECT_THROW(percentile({}, 50), CheckError);
}

TEST(Stats, GiniExtremes) {
  // Perfectly even distribution -> 0.
  EXPECT_NEAR(gini({1, 1, 1, 1}), 0.0, 1e-9);
  // Fully concentrated -> (n-1)/n.
  EXPECT_NEAR(gini({0, 0, 0, 10}), 0.75, 1e-9);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  EXPECT_DOUBLE_EQ(gini({5}), 0.0);
  EXPECT_DOUBLE_EQ(gini({0, 0}), 0.0);
}

TEST(Stats, GiniRejectsNegative) {
  EXPECT_THROW(gini({1, -1}), CheckError);
}

}  // namespace
}  // namespace irp
