// Tests for the topology container and registries.
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topo/registry.hpp"
#include "topo/topology.hpp"

namespace irp {
namespace {

TEST(Relationship, ReverseIsInvolution) {
  for (Relationship r : {Relationship::kCustomer, Relationship::kPeer,
                         Relationship::kProvider, Relationship::kSibling})
    EXPECT_EQ(reverse(reverse(r)), r);
  EXPECT_EQ(reverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(reverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(Relationship, PreferenceClasses) {
  EXPECT_EQ(preference_class(Relationship::kCustomer), 0);
  EXPECT_EQ(preference_class(Relationship::kSibling), 0);
  EXPECT_EQ(preference_class(Relationship::kPeer), 1);
  EXPECT_EQ(preference_class(Relationship::kProvider), 2);
}

TEST(Topology, AdjacencyAndPerspective) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  const LinkId l = t.link(a, b, Relationship::kCustomer);  // b is a's customer.
  const Link& link = t.topo.link(l);
  EXPECT_EQ(t.topo.other_end(link, a), b);
  EXPECT_EQ(t.topo.other_end(link, b), a);
  EXPECT_EQ(t.topo.relationship_from(link, a), Relationship::kCustomer);
  EXPECT_EQ(t.topo.relationship_from(link, b), Relationship::kProvider);
  EXPECT_EQ(t.topo.links_of(a).size(), 1u);
  EXPECT_EQ(t.topo.links_of(b).size(), 1u);
}

TEST(Topology, RejectsSelfLinksAndBadAsns) {
  test::TinyTopo t;
  const Asn a = t.add();
  EXPECT_THROW(t.link(a, a, Relationship::kPeer), CheckError);
  Link bad;
  bad.a = a;
  bad.b = 99;
  EXPECT_THROW(t.topo.add_link(bad), CheckError);
  EXPECT_THROW(t.topo.as_node(0), CheckError);
  EXPECT_THROW(t.topo.as_node(99), CheckError);
}

TEST(Topology, LinksBetweenFindsParallelLinks) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  t.link(a, b, Relationship::kPeer);
  t.link(a, b, Relationship::kCustomer);  // Hybrid pair.
  EXPECT_EQ(t.topo.links_between(a, b).size(), 2u);
  EXPECT_EQ(t.topo.links_between(b, a).size(), 2u);
}

TEST(Topology, CustomerConeFollowsAliveLinks) {
  test::TinyTopo t;
  const Asn top = t.add();
  const Asn mid = t.add();
  const Asn leaf1 = t.add();
  const Asn leaf2 = t.add();
  t.link(top, mid, Relationship::kCustomer);
  t.link(mid, leaf1, Relationship::kCustomer);
  const LinkId dying = t.link(mid, leaf2, Relationship::kCustomer);
  t.topo.link_mutable(dying).died_epoch = 2;

  EXPECT_EQ(t.topo.customer_cone_size(top, 0), 4u);
  EXPECT_EQ(t.topo.customer_cone_size(top, 2), 3u);  // leaf2 link dead.
  EXPECT_EQ(t.topo.customer_cone_size(leaf1, 0), 1u);
}

TEST(Topology, OrgGrouping) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  t.topo.as_node_mutable(b).org = t.topo.as_node(a).org;
  // Orgs are registered at add time; rebuild a fresh topology instead.
  Topology topo;
  AsNode n1;
  n1.org = 7;
  n1.pops.push_back({});
  AsNode n2;
  n2.org = 7;
  n2.pops.push_back({});
  const Asn x = topo.add_as(std::move(n1));
  const Asn y = topo.add_as(std::move(n2));
  EXPECT_TRUE(topo.same_org(x, y));
  EXPECT_EQ(topo.ases_of_org(7).size(), 2u);
  EXPECT_TRUE(topo.ases_of_org(99).empty());
}

TEST(Registry, WhoisStoresAndThrowsOnMissing) {
  WhoisDb db;
  db.add({.asn = 5, .org_name = "five", .email_domain = "five.net",
          .country_code = "e0", .rir = "RIR-EU"});
  EXPECT_TRUE(db.has(5));
  EXPECT_EQ(db.record(5).org_name, "five");
  EXPECT_FALSE(db.has(6));
  EXPECT_THROW(db.record(6), CheckError);
  EXPECT_THROW(db.add(WhoisRecord{}), CheckError);  // ASN 0.
}

TEST(Registry, SoaDefaultsToIdentity) {
  DnsSoaDb soa;
  soa.add("dish.example", "dish-dns.example");
  EXPECT_EQ(soa.soa_of("dish.example"), "dish-dns.example");
  EXPECT_EQ(soa.soa_of("unknown.example"), "unknown.example");
}

TEST(Registry, CableRegistryOperators) {
  CableRegistry reg;
  reg.add({"cable-a", 10});
  reg.add({"cable-b", 0});  // Consortium cable, no dedicated ASN.
  reg.add({"cable-c", 10});  // Same operator twice.
  EXPECT_EQ(reg.operator_asns(), std::vector<Asn>{10});
  EXPECT_TRUE(reg.is_cable_operator(10));
  EXPECT_FALSE(reg.is_cable_operator(0));
  EXPECT_FALSE(reg.is_cable_operator(11));
}

TEST(Registry, NeighborHistoryStaleness) {
  NeighborHistoryDb db;
  db.record(1, 2, 0);
  db.record(2, 1, 2);  // Unordered: same pair, later epoch wins.
  EXPECT_EQ(db.last_seen(1, 2), 2);
  EXPECT_EQ(db.last_seen(2, 1), 2);
  EXPECT_FALSE(db.is_stale(1, 2, 2));
  EXPECT_TRUE(db.is_stale(1, 2, 4));
  EXPECT_FALSE(db.is_stale(3, 4, 4));  // Never seen: not "stale".
}

TEST(Registry, ContentCatalogLookup) {
  ContentCatalog catalog;
  ContentService svc;
  svc.org_name = "cdn";
  svc.origin_asn = 42;
  svc.hostnames.push_back({"www.cdn.example", {}, false});
  svc.hostnames.push_back({"video.cdn.example", {}, true});
  catalog.add(svc);
  EXPECT_EQ(catalog.num_hostnames(), 2u);
  ASSERT_NE(catalog.service_for("video.cdn.example"), nullptr);
  EXPECT_EQ(catalog.service_for("video.cdn.example")->origin_asn, 42u);
  EXPECT_EQ(catalog.service_for("nope.example"), nullptr);
}

}  // namespace
}  // namespace irp
