// Campaign-level details of the passive study: dataset invariants the
// integration suite does not cover.
#include <gtest/gtest.h>

#include <set>

#include "core/analysis.hpp"
#include "core/passive_study.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

class PassiveDetails : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = generate_internet(test::small_generator_config()).release();
    ds_ = new PassiveDataset(
        run_passive_study(*net_, test::small_passive_config()));
  }
  static void TearDownTestSuite() {
    delete ds_;
    delete net_;
    ds_ = nullptr;
    net_ = nullptr;
  }
  static const GeneratedInternet* net_;
  static const PassiveDataset* ds_;
};
const GeneratedInternet* PassiveDetails::net_ = nullptr;
const PassiveDataset* PassiveDetails::ds_ = nullptr;

TEST_F(PassiveDetails, DestinationAsesExceedContentProviders) {
  // Off-net caches inflate the destination set beyond the provider count —
  // the paper's 14 providers vs 218 destination ASes.
  EXPECT_GT(ds_->num_destination_ases, net_->content.services().size());
}

TEST_F(PassiveDetails, CorpusCoversAllSnapshots) {
  const auto epochs = ds_->corpus.epochs();
  ASSERT_EQ(epochs.size(), std::size_t(net_->measurement_epoch + 1));
  for (int e = 0; e <= net_->measurement_epoch; ++e) {
    EXPECT_EQ(epochs[std::size_t(e)], e);
    EXPECT_GT(ds_->corpus.paths(e).size(), 100u);
  }
}

TEST_F(PassiveDetails, ObservationsAgreeWithFeeds) {
  // Every (origin, neighbor, prefix) the observations report must appear as
  // the tail of some measurement feed path.
  std::set<std::tuple<Asn, Asn, Ipv4Prefix>> tails;
  for (const FeedEntry& e : ds_->measurement_feed) {
    if (e.path.hops.size() < 2) continue;
    tails.insert({e.path.hops.back(), e.path.hops[e.path.hops.size() - 2],
                  e.prefix});
  }
  for (const auto& [origin, neighbor, prefix] : tails)
    EXPECT_TRUE(ds_->observations.announced(origin, neighbor, prefix));
}

TEST_F(PassiveDetails, SelectivePrefixesAreSelectivelyVisible) {
  // For at least one selective prefix, the feeds must show strictly fewer
  // origin-neighbors than for the origin's ordinary prefixes.
  bool found_case = false;
  net_->topology.for_each_as([&](const AsNode& node) {
    const OriginatedPrefix* selective = nullptr;
    const OriginatedPrefix* ordinary = nullptr;
    for (const auto& op : node.prefixes) {
      if (!op.announce_only_on.empty())
        selective = &op;
      else if (op.prepend_on.empty())
        ordinary = &op;
    }
    if (selective == nullptr || ordinary == nullptr) return;
    const auto sel_nbrs =
        ds_->observations.neighbors_for(node.asn, selective->prefix);
    const auto ord_nbrs =
        ds_->observations.neighbors_for(node.asn, ordinary->prefix);
    if (ord_nbrs.empty()) return;  // Origin not visible at all.
    if (sel_nbrs.size() < ord_nbrs.size()) found_case = true;
  });
  EXPECT_TRUE(found_case);
}

TEST_F(PassiveDetails, InterconnectCitiesAreMostlyGeolocated) {
  std::size_t with_city = 0;
  for (const auto& d : ds_->decisions)
    if (d.interconnect_city.has_value()) ++with_city;
  EXPECT_GT(double(with_city) / double(ds_->decisions.size()), 0.7);
}

TEST_F(PassiveDetails, StudyIsDeterministic) {
  const auto net2 = generate_internet(test::small_generator_config());
  const auto ds2 = run_passive_study(*net2, test::small_passive_config());
  EXPECT_EQ(ds2.decisions.size(), ds_->decisions.size());
  EXPECT_EQ(ds2.traceroutes.size(), ds_->traceroutes.size());
  EXPECT_EQ(ds2.inferred.num_links(), ds_->inferred.num_links());
  EXPECT_EQ(ds2.num_destination_ases, ds_->num_destination_ases);
  // Spot-check decision equality.
  for (std::size_t i = 0; i < ds2.decisions.size(); i += 97) {
    EXPECT_EQ(ds2.decisions[i].decider, ds_->decisions[i].decider);
    EXPECT_EQ(ds2.decisions[i].next_hop, ds_->decisions[i].next_hop);
    EXPECT_EQ(ds2.decisions[i].dst_prefix, ds_->decisions[i].dst_prefix);
  }
}

TEST_F(PassiveDetails, HostnameRotationCoversCatalog) {
  std::set<std::string> measured;
  for (const auto& tr : ds_->traceroutes) measured.insert(tr.hostname);
  // Every hostname of the catalog is measured by someone.
  for (const auto& svc : net_->content.services())
    for (const auto& h : svc.hostnames)
      EXPECT_TRUE(measured.count(h.name)) << h.name;
}

TEST_F(PassiveDetails, TracerouteHopsHoldTruthAnnotations) {
  for (const auto& tr : ds_->traceroutes) {
    for (std::size_t i = 0; i + 1 < tr.hops.size(); ++i)
      EXPECT_NE(tr.hops[i].truth_asn, 0u);
    if (tr.reached) {
      ASSERT_FALSE(tr.hops.empty());
      EXPECT_EQ(tr.hops.back().address, tr.dst_address);
    }
  }
}

TEST_F(PassiveDetails, GeolocationOfTraceroutesIsConsistent) {
  const auto geos = geolocate_traceroutes(*ds_, *net_);
  ASSERT_EQ(geos.size(), ds_->traceroutes.size());
  for (const auto& g : geos) {
    if (!g.single_country) continue;
    // A single-country traceroute is necessarily single-continent.
    ASSERT_TRUE(g.single_continent.has_value());
    EXPECT_EQ(*g.single_continent,
              net_->world.continent_of_country(*g.single_country));
  }
}

}  // namespace
}  // namespace irp
