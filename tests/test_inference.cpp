// Tests for the relationship-inference pipeline, sibling inference, and
// auxiliary datasets.
#include <gtest/gtest.h>

#include "core/passive_study.hpp"
#include "inference/bgp_observations.hpp"
#include "inference/hybrid_dataset.hpp"
#include "inference/path_corpus.hpp"
#include "inference/relationships.hpp"
#include "inference/siblings.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

TEST(PathCorpus, DeduplicatesAndCollapses) {
  PathCorpus corpus;
  corpus.add(0, {1, 1, 2, 3});
  corpus.add(0, {1, 2, 3});
  corpus.add(0, {4});     // Too short: dropped.
  corpus.add(0, {5, 5});  // Collapses to one hop: dropped.
  EXPECT_EQ(corpus.paths(0).size(), 1u);
  EXPECT_EQ(corpus.total_paths(), 1u);
  const auto adj = corpus.adjacencies(0);
  EXPECT_EQ(adj.size(), 2u);
  EXPECT_TRUE(adj.count({1, 2}));
  EXPECT_TRUE(adj.count({2, 3}));
}

TEST(PathCorpus, SkipsPoisonedFeeds) {
  PathCorpus corpus;
  FeedEntry poisoned;
  poisoned.peer = 1;
  poisoned.path.hops = {1, 2};
  poisoned.path.poison_set = {9};
  corpus.add_feed(0, poisoned);
  EXPECT_EQ(corpus.total_paths(), 0u);

  FeedEntry clean = poisoned;
  clean.path.poison_set.clear();
  corpus.add_feed(1, clean);
  EXPECT_EQ(corpus.paths(1).size(), 1u);
  EXPECT_EQ(corpus.epochs(), std::vector<int>{1});
}

TEST(InferredTopology, OrientationIsPerspectiveCorrect) {
  InferredTopology topo;
  // set(5, 2, kAProviderOfB): the first argument (5) is the provider of the
  // second (2), whatever the normalized storage key ends up being.
  topo.set(5, 2, InferredRel::kAProviderOfB);
  EXPECT_EQ(topo.relationship(2, 5), Relationship::kProvider);  // 5 provides 2.
  EXPECT_EQ(topo.relationship(5, 2), Relationship::kCustomer);
  EXPECT_TRUE(topo.has_link(2, 5));
  EXPECT_FALSE(topo.has_link(2, 6));
  EXPECT_EQ(topo.relationship(2, 6), std::nullopt);
  EXPECT_EQ(topo.neighbors(5), std::vector<Asn>{2});
}

TEST(Inference, SimpleChainInfersTransit) {
  // Star-free chain: collector at 1 sees paths through a hierarchy where 2
  // transits for many, so 2 is the apex.
  std::set<std::vector<Asn>> paths;
  for (Asn leaf = 10; leaf < 30; ++leaf) {
    paths.insert({1, 2, leaf});
    paths.insert({leaf, 2, 1});
  }
  const auto topo = infer_snapshot(paths);
  for (Asn leaf = 10; leaf < 30; ++leaf)
    EXPECT_EQ(topo.relationship(leaf, 2), Relationship::kProvider)
        << "leaf " << leaf;
}

TEST(Inference, PeerAtApexWithComparableDegrees) {
  // Two regional hubs exchange their customer cones: hub links are flat.
  std::set<std::vector<Asn>> paths;
  for (Asn a = 10; a < 25; ++a)
    for (Asn b = 30; b < 45; ++b) {
      paths.insert({a, 2, 3, b});
      paths.insert({b, 3, 2, a});
    }
  const auto topo = infer_snapshot(paths);
  EXPECT_EQ(topo.relationship(2, 3), Relationship::kPeer);
  EXPECT_EQ(topo.relationship(10, 2), Relationship::kProvider);
  EXPECT_EQ(topo.relationship(30, 3), Relationship::kProvider);
}

TEST(Inference, CliqueDetectedAndFullyMeshed) {
  // A 4-clique (1..4) with distinct customer trees; paths cross the core.
  std::set<std::vector<Asn>> paths;
  const auto customers_of = [](Asn t) {
    return std::vector<Asn>{t * 10, t * 10 + 1, t * 10 + 2};
  };
  for (Asn t1 = 1; t1 <= 4; ++t1)
    for (Asn t2 = 1; t2 <= 4; ++t2) {
      if (t1 == t2) continue;
      for (Asn c1 : customers_of(t1))
        for (Asn c2 : customers_of(t2)) paths.insert({c1, t1, t2, c2});
    }
  std::set<Asn> clique;
  const auto topo = infer_snapshot(paths, {}, &clique);
  EXPECT_EQ(clique, (std::set<Asn>{1, 2, 3, 4}));
  for (Asn t1 = 1; t1 <= 4; ++t1)
    for (Asn t2 = t1 + 1; t2 <= 4; ++t2)
      EXPECT_EQ(topo.relationship(t1, t2), Relationship::kPeer);
  // Clique members are providers of their adjacent customers.
  EXPECT_EQ(topo.relationship(10, 1), Relationship::kProvider);
}

TEST(Aggregation, LatestTwoMonthsOverrideHistory) {
  InferredTopology old1, old2, old3, new1, new2;
  for (auto* t : {&old1, &old2, &old3})
    t->set(1, 2, InferredRel::kAProviderOfB);
  new1.set(1, 2, InferredRel::kPeer);
  new2.set(1, 2, InferredRel::kPeer);
  const auto agg = aggregate_snapshots({old1, old2, old3, new1, new2});
  EXPECT_EQ(agg.relationship(1, 2), Relationship::kPeer);
}

TEST(Aggregation, WeightedMajorityWhenLatestDisagree) {
  InferredTopology s0, s1, s2, s3, s4;
  s0.set(1, 2, InferredRel::kPeer);
  s1.set(1, 2, InferredRel::kPeer);
  s2.set(1, 2, InferredRel::kPeer);
  s3.set(1, 2, InferredRel::kAProviderOfB);
  s4.set(1, 2, InferredRel::kPeer);
  // Latest two disagree; weights: peer = 1+2+3+5 = 11 vs 4.
  const auto agg = aggregate_snapshots({s0, s1, s2, s3, s4});
  EXPECT_EQ(agg.relationship(1, 2), Relationship::kPeer);
}

TEST(Aggregation, UnionKeepsStaleLinks) {
  InferredTopology s0, s1;
  s0.set(1, 2, InferredRel::kPeer);  // Link only in the old snapshot.
  s1.set(3, 4, InferredRel::kPeer);
  const auto agg = aggregate_snapshots({s0, s1});
  EXPECT_TRUE(agg.has_link(1, 2));  // Stale link survives aggregation.
  EXPECT_TRUE(agg.has_link(3, 4));
}

TEST(Siblings, GroupsByEmailAndSoa) {
  WhoisDb whois;
  whois.add({1, "dish", "dish.example", "n0", "RIR-NA"});
  whois.add({2, "dish tv", "dishaccess.example", "n0", "RIR-NA"});
  whois.add({3, "other", "other.example", "n0", "RIR-NA"});
  DnsSoaDb soa;
  soa.add("dish.example", "dishdns.example");
  soa.add("dishaccess.example", "dishdns.example");
  const auto groups = infer_siblings(whois, soa);
  EXPECT_EQ(groups.num_groups(), 1u);
  EXPECT_TRUE(groups.same_group(1, 2));
  EXPECT_FALSE(groups.same_group(1, 3));
}

TEST(Siblings, FiltersPopularAndRirDomains) {
  WhoisDb whois;
  whois.add({1, "a", "mail-a.example", "n0", "RIR-NA"});
  whois.add({2, "b", "mail-a.example", "n0", "RIR-NA"});
  whois.add({3, "c", "rir-eu.example", "e0", "RIR-EU"});
  whois.add({4, "d", "rir-eu.example", "e1", "RIR-EU"});
  DnsSoaDb soa;
  const auto groups = infer_siblings(whois, soa);
  EXPECT_EQ(groups.num_groups(), 0u);
  EXPECT_FALSE(groups.same_group(1, 2));
  EXPECT_FALSE(groups.same_group(3, 4));
}

TEST(HybridDataset, FindsDifferingParallelLinks) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  const LinkId l1 = t.link(a, b, Relationship::kPeer);
  const LinkId l2 = t.link(a, b, Relationship::kCustomer);
  t.topo.link_mutable(l1).city = 1;
  t.topo.link_mutable(l2).city = 2;
  Rng rng{3};
  const auto ds = build_hybrid_dataset(t.topo, 1.0, rng);
  EXPECT_TRUE(ds.covers_pair(a, b));
  EXPECT_EQ(ds.relationship_at(a, b, 1), Relationship::kPeer);
  EXPECT_EQ(ds.relationship_at(a, b, 2), Relationship::kCustomer);
  EXPECT_EQ(ds.relationship_at(b, a, 2), Relationship::kProvider);
  EXPECT_EQ(ds.relationship_at(a, b, 9), std::nullopt);
}

TEST(HybridDataset, RecordsPartialTransit) {
  test::TinyTopo t;
  const Asn prov = t.add();
  const Asn cust = t.add();
  const LinkId l = t.link(prov, cust, Relationship::kCustomer);
  t.topo.link_mutable(l).partial_transit = true;
  Rng rng{4};
  const auto ds = build_hybrid_dataset(t.topo, 1.0, rng);
  EXPECT_TRUE(ds.is_partial_transit(prov, cust));
  EXPECT_FALSE(ds.is_partial_transit(cust, prov));
}

TEST(HybridDataset, CoverageZeroIsEmpty) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  t.link(a, b, Relationship::kPeer);
  t.link(a, b, Relationship::kCustomer);
  Rng rng{5};
  const auto ds = build_hybrid_dataset(t.topo, 0.0, rng);
  EXPECT_FALSE(ds.covers_pair(a, b));
  EXPECT_TRUE(ds.entries().empty());
}

TEST(BgpObservations, TracksOriginNeighborPerPrefix) {
  BgpObservations obs;
  const auto p1 = *Ipv4Prefix::parse("10.0.0.0/24");
  const auto p2 = *Ipv4Prefix::parse("10.0.1.0/24");
  std::vector<FeedEntry> feed;
  feed.push_back({7, p1, AsPath{{7, 5, 3}, {}}});  // 3 announced p1 to 5.
  feed.push_back({7, p2, AsPath{{7, 3}, {}}});     // 3 announced p2 to 7.
  obs.ingest(feed);
  EXPECT_TRUE(obs.announced(3, 5, p1));
  EXPECT_FALSE(obs.announced(3, 5, p2));
  EXPECT_TRUE(obs.announced(3, 7, p2));
  EXPECT_TRUE(obs.announced_any(3, 5));
  EXPECT_FALSE(obs.announced_any(5, 3));
  EXPECT_EQ(obs.neighbors_for(3, p1), std::set<Asn>{5});
}

/// Regression bound: end-to-end inference accuracy on the generated
/// Internet must stay high — every analysis depends on it.
TEST(Inference, EndToEndAccuracyBound) {
  const auto net = generate_internet(test::small_generator_config());
  const auto ds = run_passive_study(*net, test::small_passive_config());

  std::map<std::pair<Asn, Asn>, std::set<Relationship>> truth;
  net->topology.for_each_link([&](const Link& l) {
    if (!net->topology.link_alive(l, net->measurement_epoch)) return;
    const Asn a = std::min(l.a, l.b), b = std::max(l.a, l.b);
    truth[{a, b}].insert(l.a == a ? l.rel_of_b_from_a
                                  : reverse(l.rel_of_b_from_a));
  });
  std::size_t comparable = 0, correct = 0;
  for (const auto& [pair, rel] : ds.inferred.links()) {
    auto it = truth.find(pair);
    if (it == truth.end() || it->second.size() != 1) continue;
    const Relationship t = *it->second.begin();
    if (t == Relationship::kSibling) continue;
    ++comparable;
    if (*ds.inferred.relationship(pair.first, pair.second) == t) ++correct;
  }
  ASSERT_GT(comparable, 100u);
  EXPECT_GT(double(correct) / double(comparable), 0.80)
      << correct << "/" << comparable;
}

}  // namespace
}  // namespace irp
