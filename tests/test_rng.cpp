#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace irp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a{7};
  const auto first = a.next();
  a.reseed(7);
  EXPECT_EQ(first, a.next());
}

TEST(Rng, UniformIntHonorsBounds) {
  Rng rng{11};
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // All values hit.
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng{11};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng{11};
  EXPECT_THROW(rng.uniform_int(2, 1), CheckError);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng{13};
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanIsCentered) {
  Rng rng{17};
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{19};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{23};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng{29};
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng{31};
  double sum = 0, sq = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{37};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng{41};
  const auto sample = rng.sample_indices(50, 20);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng{43};
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng{43};
  EXPECT_THROW(rng.sample_indices(3, 4), CheckError);
}

TEST(Rng, ZipfRankZeroMostPopular) {
  Rng rng{47};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  for (const auto& [rank, _] : counts) EXPECT_LT(rank, 10u);
}

TEST(Rng, ZipfZeroExponentIsUniformish) {
  Rng rng{53};
  std::map<std::size_t, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(5, 0.0)];
  for (int r = 0; r < 5; ++r)
    EXPECT_NEAR(double(counts[r]) / n, 0.2, 0.03);
}

TEST(Rng, ForkIndependence) {
  Rng parent{59};
  Rng child = parent.fork();
  // The child's stream must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next() == child.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng{61};
  const std::vector<int> v{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.pick(v));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng{61};
  const std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), CheckError);
}

/// Property sweep: uniform_u64 respects arbitrary bounds.
class RngBoundsTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {};

TEST_P(RngBoundsTest, InclusiveBoundsHold) {
  const auto [lo, hi] = GetParam();
  Rng rng{lo ^ (hi << 1) ^ 0xabcdef};
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_u64(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RngBoundsTest,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 0},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{5, 7},
                      std::pair<std::uint64_t, std::uint64_t>{0, 1000000},
                      std::pair<std::uint64_t, std::uint64_t>{1ull << 62,
                                                              (1ull << 62) + 9},
                      std::pair<std::uint64_t, std::uint64_t>{
                          0, ~std::uint64_t{0}}));

}  // namespace
}  // namespace irp
