// Direct unit tests for BgpObservations: the (origin, neighbor, prefix)
// visibility set behind the PSP criteria (§4.3), including the
// poisoned-path-skip rule of the feed ingest and the sorted export the
// oracle snapshot freezes.
#include <gtest/gtest.h>

#include "inference/bgp_observations.hpp"

namespace irp {
namespace {

Ipv4Prefix pfx(std::uint8_t third) {
  return Ipv4Prefix{Ipv4Addr{10, 0, third, 0}, 24};
}

FeedEntry entry(Asn peer, const Ipv4Prefix& prefix, std::vector<Asn> hops,
                std::vector<Asn> poison = {}) {
  FeedEntry e;
  e.peer = peer;
  e.prefix = prefix;
  e.path.hops = std::move(hops);
  e.path.poison_set = std::move(poison);
  return e;
}

TEST(BgpObservations, RecordsOriginToNeighborAnnouncements) {
  BgpObservations obs;
  // Collector path 40 30 20 10: origin 10 announced to neighbor 20.
  const std::vector<FeedEntry> feed = {entry(40, pfx(1), {40, 30, 20, 10})};
  obs.ingest(feed);

  EXPECT_TRUE(obs.announced(10, 20, pfx(1)));
  EXPECT_TRUE(obs.announced_any(10, 20));
  // Only the origin-adjacent pair is recorded, not transit hops.
  EXPECT_FALSE(obs.announced(20, 30, pfx(1)));
  EXPECT_FALSE(obs.announced(10, 30, pfx(1)));
  // Direction matters: 20 did not announce to 10.
  EXPECT_FALSE(obs.announced(20, 10, pfx(1)));
  EXPECT_FALSE(obs.announced_any(20, 10));
  // Other prefixes are not implied.
  EXPECT_FALSE(obs.announced(10, 20, pfx(2)));
}

TEST(BgpObservations, PoisonedPathsAreSkipped) {
  BgpObservations obs;
  const std::vector<FeedEntry> feed = {
      entry(40, pfx(1), {40, 30, 10}, /*poison=*/{30}),
      entry(40, pfx(2), {40, 30, 10}),
  };
  obs.ingest(feed);

  // The poisoned announcement must not contribute visibility: it exists to
  // probe alternate routes, not to witness normal export policy.
  EXPECT_FALSE(obs.announced(10, 30, pfx(1)));
  EXPECT_TRUE(obs.announced(10, 30, pfx(2)));
  // announced_any only reflects the clean entry.
  EXPECT_TRUE(obs.announced_any(10, 30));
  EXPECT_EQ(obs.size(), 1u);  // Only pfx(2) has observations.
}

TEST(BgpObservations, SingleHopPathsCarryNoPair) {
  BgpObservations obs;
  const std::vector<FeedEntry> feed = {entry(10, pfx(1), {10})};
  obs.ingest(feed);
  EXPECT_EQ(obs.size(), 0u);
  EXPECT_FALSE(obs.announced_any(10, 10));
}

TEST(BgpObservations, NeighborsForCollectsAllNeighborsOfOrigin) {
  BgpObservations obs;
  obs.add(10, 20, pfx(1));
  obs.add(10, 30, pfx(1));
  obs.add(10, 40, pfx(2));   // Different prefix: excluded.
  obs.add(99, 50, pfx(1));   // Different origin: excluded.

  const std::set<Asn> neighbors = obs.neighbors_for(10, pfx(1));
  EXPECT_EQ(neighbors, (std::set<Asn>{20, 30}));
  EXPECT_TRUE(obs.neighbors_for(10, pfx(3)).empty());
  EXPECT_TRUE(obs.neighbors_for(77, pfx(1)).empty());
}

TEST(BgpObservations, DuplicatesCollapse) {
  BgpObservations obs;
  obs.add(10, 20, pfx(1));
  obs.add(10, 20, pfx(1));
  EXPECT_EQ(obs.size(), 1u);
  const auto exported = obs.export_sorted();
  ASSERT_EQ(exported.size(), 1u);
  EXPECT_EQ(exported[0].second.size(), 1u);
}

TEST(BgpObservations, ExportSortedIsDeterministicAndAscending) {
  // Insert in scrambled order; export must come out sorted regardless of
  // hash-container iteration order (the oracle snapshot relies on this for
  // byte-identical images).
  BgpObservations obs;
  obs.add(30, 40, pfx(9));
  obs.add(10, 20, pfx(9));
  obs.add(10, 15, pfx(9));
  obs.add(50, 60, pfx(2));

  const auto exported = obs.export_sorted();
  ASSERT_EQ(exported.size(), 2u);
  EXPECT_EQ(exported[0].first, pfx(2));
  EXPECT_EQ(exported[1].first, pfx(9));
  const auto& pairs = exported[1].second;
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end()));
  EXPECT_EQ(pairs.front(), (std::pair<Asn, Asn>{10, 15}));
  EXPECT_EQ(pairs.back(), (std::pair<Asn, Asn>{30, 40}));
}

}  // namespace
}  // namespace irp
