// Tests for the ground-truth policy: import preference and export filters.
#include <gtest/gtest.h>

#include "bgp/policy.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

TEST(Policy, LocalPrefFollowsRelationshipClasses) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn cust = t.add();
  const Asn peer = t.add();
  const Asn prov = t.add();
  const LinkId lc = t.link(self, cust, Relationship::kCustomer);
  const LinkId lp = t.link(self, peer, Relationship::kPeer);
  const LinkId lv = t.link(self, prov, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  const AsPath path{{cust}, {}};
  const int c = policy.local_pref(self, t.topo.link(lc), path);
  const int p = policy.local_pref(self, t.topo.link(lp), path);
  const int v = policy.local_pref(self, t.topo.link(lv), path);
  EXPECT_GT(c, p);
  EXPECT_GT(p, v);
}

TEST(Policy, SiblingBeatsCustomer) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn sib = t.add();
  const Asn cust = t.add();
  const LinkId ls = t.link(self, sib, Relationship::kSibling);
  const LinkId lc = t.link(self, cust, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  const AsPath path{{sib}, {}};
  EXPECT_GT(policy.local_pref(self, t.topo.link(ls), path),
            policy.local_pref(self, t.topo.link(lc), path));
}

TEST(Policy, LinkDeltaShiftsPreference) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn peer = t.add();
  const LinkId lp = t.link(self, peer, Relationship::kPeer);
  t.topo.link_mutable(lp).lp_delta_a = 150;  // self is side a.
  GroundTruthPolicy policy{&t.topo};
  const AsPath path{{peer}, {}};
  EXPECT_EQ(policy.local_pref(self, t.topo.link(lp), path),
            policy.config().lp_peer + 150);
}

TEST(Policy, FlatLocalPrefIgnoresClasses) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn cust = t.add();
  const Asn prov = t.add();
  t.topo.as_node_mutable(self).flat_local_pref = true;
  const LinkId lc = t.link(self, cust, Relationship::kCustomer);
  const LinkId lv = t.link(self, prov, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  const AsPath path{{cust}, {}};
  EXPECT_EQ(policy.local_pref(self, t.topo.link(lc), path),
            policy.local_pref(self, t.topo.link(lv), path));
}

TEST(Policy, DomesticBonusAppliesOnlyToFullyDomesticPaths) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn nbr = t.add();
  const Asn foreign = t.add();
  t.topo.as_node_mutable(self).prefers_domestic = true;
  t.topo.as_node_mutable(foreign).home_country = 1;
  const LinkId l = t.link(self, nbr, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};

  const AsPath domestic{{nbr}, {}};
  const AsPath mixed{{nbr, foreign}, {}};
  EXPECT_TRUE(policy.path_is_domestic(self, domestic));
  EXPECT_FALSE(policy.path_is_domestic(self, mixed));
  EXPECT_EQ(policy.local_pref(self, t.topo.link(l), domestic),
            policy.config().lp_peer + policy.config().domestic_bonus);
  EXPECT_EQ(policy.local_pref(self, t.topo.link(l), mixed),
            policy.config().lp_peer);
}

TEST(Policy, GaoRexfordExportRules) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn cust = t.add();
  const Asn peer = t.add();
  const Asn prov = t.add();
  const LinkId lc = t.link(self, cust, Relationship::kCustomer);
  const LinkId lp = t.link(self, peer, Relationship::kPeer);
  const LinkId lv = t.link(self, prov, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  const Ipv4Prefix pfx = t.prefix_of(cust);

  // Customer-learned routes go everywhere.
  for (LinkId out : {lc, lp, lv})
    EXPECT_TRUE(policy.export_ok(self, Relationship::kCustomer,
                                 t.topo.link(out), pfx));
  // Self-originated routes go everywhere.
  for (LinkId out : {lc, lp, lv})
    EXPECT_TRUE(policy.export_ok(self, std::nullopt, t.topo.link(out), pfx));
  // Peer/provider-learned routes go to customers only.
  for (Relationship learned : {Relationship::kPeer, Relationship::kProvider}) {
    EXPECT_TRUE(policy.export_ok(self, learned, t.topo.link(lc), pfx));
    EXPECT_FALSE(policy.export_ok(self, learned, t.topo.link(lp), pfx));
    EXPECT_FALSE(policy.export_ok(self, learned, t.topo.link(lv), pfx));
  }
}

TEST(Policy, SiblingExportIsTransparent) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn sib = t.add();
  const Asn peer = t.add();
  const LinkId ls = t.link(self, sib, Relationship::kSibling);
  const LinkId lp = t.link(self, peer, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  const Ipv4Prefix pfx = t.prefix_of(sib);
  // Anything may be exported *to* a sibling.
  for (Relationship learned : {Relationship::kCustomer, Relationship::kPeer,
                               Relationship::kProvider})
    EXPECT_TRUE(policy.export_ok(self, learned, t.topo.link(ls), pfx));
  // Sibling-class routes count as the organization's own.
  EXPECT_TRUE(policy.export_ok(self, Relationship::kSibling, t.topo.link(lp),
                               pfx));
}

TEST(Policy, PartialTransitFiltersDeterministically) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn cust = t.add();
  const LinkId lc = t.link(self, cust, Relationship::kCustomer);
  t.topo.link_mutable(lc).partial_transit = true;
  GroundTruthPolicy policy{&t.topo};

  int served = 0;
  const int total = 64;
  for (int i = 0; i < total; ++i) {
    const Ipv4Prefix pfx{Ipv4Addr(10, 10, std::uint8_t(i), 0), 24};
    const bool ok =
        policy.export_ok(self, Relationship::kCustomer, t.topo.link(lc), pfx);
    // Deterministic: repeated calls agree.
    EXPECT_EQ(ok, policy.export_ok(self, Relationship::kCustomer,
                                   t.topo.link(lc), pfx));
    if (ok) ++served;
  }
  // Roughly half of prefixes served.
  EXPECT_GT(served, total / 4);
  EXPECT_LT(served, 3 * total / 4);
}

TEST(Policy, PartialTransitDoesNotAffectPeerExports) {
  test::TinyTopo t;
  const Asn self = t.add();
  const Asn peer = t.add();
  const LinkId lp = t.link(self, peer, Relationship::kPeer);
  t.topo.link_mutable(lp).partial_transit = true;  // Meaningless on a peer link.
  GroundTruthPolicy policy{&t.topo};
  EXPECT_TRUE(policy.export_ok(self, Relationship::kCustomer, t.topo.link(lp),
                               t.prefix_of(peer)));
}

}  // namespace
}  // namespace irp
