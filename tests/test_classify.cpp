// Tests for decision classification and the refinement scenarios.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/classify.hpp"

namespace irp {
namespace {

/// Fixture topology:
///   dest 1; 2 and 3 are 1's providers (inferred); 4 peers with 2 and 3 and
///   has customer 5... built so AS 4 has a customer-class route via nothing,
///   peer routes via 2/3, and we can exercise every quadrant.
class ClassifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topo_.set(2, 1, InferredRel::kAProviderOfB);  // 2 provider of 1.
    topo_.set(3, 1, InferredRel::kAProviderOfB);  // 3 provider of 1.
    topo_.set(4, 2, InferredRel::kPeer);
    topo_.set(4, 3, InferredRel::kPeer);
    topo_.set(4, 5, InferredRel::kAProviderOfB);  // 4 provider of 5.
    topo_.set(5, 2, InferredRel::kBProviderOfA);  // 2 provider of 5.
    prefix_ = *Ipv4Prefix::parse("10.9.0.0/24");
  }

  RouteDecision decision(Asn decider, Asn next, std::size_t remaining) {
    RouteDecision d;
    d.decider = decider;
    d.next_hop = next;
    d.dest_asn = 1;
    d.origin_asn = 1;
    d.src_asn = 5;
    d.remaining_len = remaining;
    d.dst_prefix = prefix_;
    d.measured_remaining = {decider, next, 1};
    return d;
  }

  InferredTopology topo_;
  Ipv4Prefix prefix_;
  SiblingGroups siblings_;
  HybridDataset hybrid_;
  BgpObservations obs_;
};

TEST_F(ClassifyTest, BestShortQuadrants) {
  DecisionClassifier cls{&topo_, 5, &hybrid_, &siblings_, &obs_};
  const ScenarioOptions simple;

  // AS 4's best class toward 1 is peer (via 2 or 3), shortest length 2.
  EXPECT_EQ(cls.classify(decision(4, 2, 2), simple),
            DecisionCategory::kBestShort);
  EXPECT_EQ(cls.classify(decision(4, 2, 3), simple),
            DecisionCategory::kBestLong);

  // AS 5: customer... 5 buys from 2 (2 provider of 5) and from 4.
  // Best class at 5 is provider (only up routes); shortest = 2 via 2.
  EXPECT_EQ(cls.classify(decision(5, 2, 2), simple),
            DecisionCategory::kBestShort);
  // Going via 4 (provider, length 3: 5-4-2-1) is Best but Long.
  EXPECT_EQ(cls.classify(decision(5, 4, 3), simple),
            DecisionCategory::kBestLong);
}

TEST_F(ClassifyTest, UnknownLinkIsNonBest) {
  DecisionClassifier cls{&topo_, 5, &hybrid_, &siblings_, &obs_};
  const ScenarioOptions simple;
  // 4 -> 1 directly: no such link in the inferred topology.
  EXPECT_EQ(cls.classify(decision(4, 1, 2), simple),
            DecisionCategory::kNonBestShort);
  EXPECT_EQ(cls.classify(decision(4, 1, 5), simple),
            DecisionCategory::kNonBestLong);
}

TEST_F(ClassifyTest, SiblingRefinementMarksBest) {
  SiblingGroups siblings;
  siblings.add_group({4, 1});
  DecisionClassifier cls{&topo_, 5, &hybrid_, &siblings, &obs_};
  const ScenarioOptions simple;
  const ScenarioOptions sibs{.use_siblings = true};
  const auto d = decision(4, 1, 2);  // Unknown link, but 1 is 4's sibling.
  EXPECT_EQ(cls.classify(d, simple), DecisionCategory::kNonBestShort);
  EXPECT_EQ(cls.classify(d, sibs), DecisionCategory::kBestShort);
}

TEST_F(ClassifyTest, HybridOverrideChangesClass) {
  // At city 9 the 4-2 relationship is transit: 2 is 4's customer.
  HybridDataset hybrid;
  hybrid.add({4, 2, 9, Relationship::kCustomer});
  DecisionClassifier cls{&topo_, 5, &hybrid, &siblings_, &obs_};
  const ScenarioOptions complex{.use_hybrid = true};

  auto d = decision(4, 2, 2);
  d.interconnect_city = 9;
  // Customer beats the best-known class (peer): still Best.
  EXPECT_EQ(cls.classify(d, complex), DecisionCategory::kBestShort);

  // At city 9, make it *provider* instead: now NonBest (peer was available).
  HybridDataset hybrid2;
  hybrid2.add({4, 2, 9, Relationship::kProvider});
  DecisionClassifier cls2{&topo_, 5, &hybrid2, &siblings_, &obs_};
  EXPECT_EQ(cls2.classify(d, complex), DecisionCategory::kNonBestShort);
  // Without the city annotation the dataset is not applied.
  EXPECT_EQ(cls2.classify(decision(4, 2, 2), complex),
            DecisionCategory::kBestShort);
}

TEST_F(ClassifyTest, PspCriteriaRestrictOriginEdges) {
  // Feeds only show origin 1 announcing the prefix to neighbor 2.
  BgpObservations obs;
  std::vector<FeedEntry> feed;
  feed.push_back({9, prefix_, AsPath{{9, 2, 1}, {}}});
  obs.ingest(feed);
  DecisionClassifier cls{&topo_, 5, &hybrid_, &siblings_, &obs};

  const ScenarioOptions simple;
  const ScenarioOptions psp1{.psp = PspMode::kCriteria1};
  const ScenarioOptions psp2{.psp = PspMode::kCriteria2};

  // Under Simple, AS 4 best=peer shortest=2 via either 2 or 3. A longer
  // measured path via 2 (len 3) is Best/Long.
  const auto via2_long = decision(4, 2, 3);
  EXPECT_EQ(cls.classify(via2_long, simple), DecisionCategory::kBestLong);
  // Criteria 1 removes edge 3->1 (never observed): shortest via 3
  // disappears, but via 2 it is still 2... so still Long.
  EXPECT_EQ(cls.classify(via2_long, psp1), DecisionCategory::kBestLong);

  // Remove the observation for 2->... use a prefix never observed at all:
  // criteria 1 removes both origin edges -> no GR route -> NonBest/Long;
  // criteria 2 keeps edges whose (origin, neighbor) pair was never seen
  // for any prefix (visibility caution), so it still classifies Best.
  auto other = decision(4, 2, 2);
  other.dst_prefix = *Ipv4Prefix::parse("10.77.0.0/24");
  EXPECT_EQ(cls.classify(other, psp1), DecisionCategory::kNonBestLong);
  // Criteria 2: (1,2) announced *some* prefix -> criteria 1 applies to that
  // edge and removes it; (1,3) was never seen at all -> kept.
  EXPECT_EQ(cls.classify(other, psp2), DecisionCategory::kBestShort);
}

TEST_F(ClassifyTest, DistinctPspPrefixesGetDistinctPathSets) {
  // Regression: the cache is keyed per (destination, PSP mode, prefix) —
  // two decisions toward the same destination but for different prefixes
  // must not share a PSP path set (their origin-edge filters differ).
  BgpObservations obs;
  std::vector<FeedEntry> feed;
  feed.push_back({9, prefix_, AsPath{{9, 2, 1}, {}}});
  obs.ingest(feed);
  DecisionClassifier cls{&topo_, 5, &hybrid_, &siblings_, &obs};
  const ScenarioOptions psp1{.psp = PspMode::kCriteria1};

  const auto observed = decision(4, 2, 2);  // dst_prefix = prefix_.
  auto unobserved = decision(4, 2, 2);
  unobserved.dst_prefix = *Ipv4Prefix::parse("10.77.0.0/24");

  const GrPathSet& ps_observed = cls.path_set(observed, psp1);
  const GrPathSet& ps_unobserved = cls.path_set(unobserved, psp1);
  EXPECT_NE(&ps_observed, &ps_unobserved);
  EXPECT_EQ(cls.cache_misses(), 2u);
  // And the contents differ: only the observed prefix keeps a GR route
  // into the destination (1->2 was the only announcement seen).
  EXPECT_NE(ps_observed.shortest_length(4), ps_unobserved.shortest_length(4));

  // Same destination and prefix: one shared entry, no new computation.
  EXPECT_EQ(&cls.path_set(decision(4, 2, 5), psp1), &ps_observed);
  EXPECT_EQ(cls.cache_misses(), 2u);

  // Scenarios without PSP share one entry per destination across prefixes.
  const ScenarioOptions simple;
  EXPECT_EQ(&cls.path_set(observed, simple), &cls.path_set(unobserved, simple));
  EXPECT_EQ(cls.cache_misses(), 3u);
  // All-1 reuses PSP-1's entries (the path set ignores hybrid/siblings).
  const ScenarioOptions all1{
      .use_hybrid = true, .use_siblings = true, .psp = PspMode::kCriteria1};
  EXPECT_EQ(&cls.path_set(observed, all1), &ps_observed);
  EXPECT_EQ(cls.cache_misses(), 3u);
}

TEST_F(ClassifyTest, ConcurrentCacheComputesEachPathSetOnce) {
  // Hammer path_set from many threads for a mix of same and different
  // destinations and PSP prefixes; every distinct key must be computed
  // exactly once and every thread must agree on the returned pointer.
  BgpObservations obs;
  std::vector<FeedEntry> feed;
  feed.push_back({9, prefix_, AsPath{{9, 2, 1}, {}}});
  obs.ingest(feed);
  DecisionClassifier cls{&topo_, 5, &hybrid_, &siblings_, &obs};
  const ScenarioOptions simple;
  const ScenarioOptions psp1{.psp = PspMode::kCriteria1};
  const ScenarioOptions psp2{.psp = PspMode::kCriteria2};

  // 5 destinations x simple + 2 (dest 1 PSP prefixes) x 2 criteria = 9.
  constexpr std::size_t kExpectedKeys = 9;
  const auto worker = [&](std::size_t salt) {
    for (int round = 0; round < 50; ++round) {
      for (Asn dest = 1; dest <= 5; ++dest) {
        RouteDecision d = decision(4, 2, 2);
        d.dest_asn = dest;
        cls.path_set(d, simple);
      }
      auto d = decision(4, 2, 2);
      if ((round + salt) % 2 == 0)
        d.dst_prefix = *Ipv4Prefix::parse("10.77.0.0/24");
      cls.path_set(d, psp1);
      cls.path_set(d, psp2);
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 8; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(cls.cache_misses(), kExpectedKeys);
  // A post-hoc lookup still hits the cache.
  cls.path_set(decision(4, 2, 2), simple);
  EXPECT_EQ(cls.cache_misses(), kExpectedKeys);
}

TEST_F(ClassifyTest, Figure1ScenarioListIsComplete) {
  const auto scenarios = figure1_scenarios();
  ASSERT_EQ(scenarios.size(), 7u);
  EXPECT_EQ(scenarios[0].name, "Simple");
  EXPECT_EQ(scenarios[6].name, "All-2");
  EXPECT_TRUE(scenarios[5].options.use_hybrid);
  EXPECT_TRUE(scenarios[5].options.use_siblings);
  EXPECT_EQ(scenarios[5].options.psp, PspMode::kCriteria1);
}

TEST_F(ClassifyTest, CategoryHelpers) {
  EXPECT_FALSE(is_violation(DecisionCategory::kBestShort));
  EXPECT_TRUE(is_violation(DecisionCategory::kNonBestShort));
  EXPECT_TRUE(is_violation(DecisionCategory::kBestLong));
  EXPECT_TRUE(is_violation(DecisionCategory::kNonBestLong));
  EXPECT_EQ(decision_category_name(DecisionCategory::kBestShort),
            "Best/Short");
}

}  // namespace
}  // namespace irp
