// Integration tests: the passive campaign, the analyses, and the active
// experiments running end-to-end on a small synthetic Internet.
#include <gtest/gtest.h>

#include <set>

#include "core/study.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig config;
    config.generator = test::small_generator_config();
    config.passive = test::small_passive_config();
    config.active.traceroute_vantages = 24;
    config.active.max_targets = 60;
    results_ = new StudyResults(run_full_study(config));
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }
  static const StudyResults* results_;
};

const StudyResults* StudyTest::results_ = nullptr;

TEST_F(StudyTest, CampaignProducesData) {
  const auto& ds = results_->passive;
  EXPECT_GT(ds.probes.size(), 100u);
  EXPECT_GT(ds.traceroutes.size(), 500u);
  EXPECT_GT(ds.decisions.size(), 1000u);
  EXPECT_GT(ds.num_destination_ases, 3u);
  EXPECT_GT(ds.num_observed_decider_ases, 20u);
  EXPECT_GT(ds.inferred.num_links(), 100u);
  EXPECT_EQ(ds.snapshots.size(),
            std::size_t(results_->net->measurement_epoch + 1));
}

TEST_F(StudyTest, DecisionsReferenceValidData) {
  const auto& ds = results_->passive;
  const std::size_t n = results_->net->topology.num_ases();
  for (const auto& d : ds.decisions) {
    EXPECT_GE(d.decider, 1u);
    EXPECT_LE(d.decider, n);
    EXPECT_LE(d.next_hop, n);
    EXPECT_LT(d.traceroute_index, ds.traceroutes.size());
    EXPECT_GE(d.remaining_len, 1u);
    ASSERT_GE(d.measured_remaining.size(), 2u);
    EXPECT_EQ(d.measured_remaining.front(), d.decider);
    EXPECT_EQ(d.measured_remaining.back(), d.dest_asn);
    EXPECT_EQ(d.measured_remaining.size(), d.remaining_len + 1);
  }
}

TEST_F(StudyTest, TraceroutesMostlyReachAndMapBack) {
  const auto& ds = results_->passive;
  std::size_t reached = 0;
  for (const auto& tr : ds.traceroutes) {
    if (!tr.reached) continue;
    ++reached;
    // Destination address maps to the serving AS via LPM.
    const auto asn = ds.ip_to_as.lookup(tr.dst_address);
    ASSERT_TRUE(asn.has_value());
    EXPECT_EQ(ds.ip_to_as.lookup(tr.hops.back().address), asn);
  }
  EXPECT_GT(double(reached) / double(ds.traceroutes.size()), 0.9);
}

TEST_F(StudyTest, Figure1LadderBehaves) {
  const auto& fig1 = results_->figure1;
  ASSERT_EQ(fig1.scenarios.size(), 7u);
  const auto share = [&](int i) {
    return fig1.scenarios[i].second.share(DecisionCategory::kBestShort);
  };
  // A majority of decisions follow the model in every scenario.
  EXPECT_GT(share(0), 0.5);
  // Refinements never *hurt* by much and the combined scenarios explain at
  // least as much as Simple.
  EXPECT_GE(share(5) + 1e-9, share(0));  // All-1 >= Simple.
  EXPECT_GE(share(6) + 1e-9, share(0));  // All-2 >= Simple.
  // Totals are consistent: every decision classified in every scenario.
  for (const auto& [name, b] : fig1.scenarios)
    EXPECT_EQ(b.total(), results_->passive.decisions.size()) << name;
}

TEST_F(StudyTest, Table1CoversAllProbes) {
  const auto& t1 = results_->table1;
  std::size_t probes = 0;
  for (const auto& row : t1.rows) probes += row.probes;
  EXPECT_EQ(probes, t1.total_probes);
  EXPECT_EQ(t1.total_probes, results_->passive.probes.size());
  EXPECT_EQ(t1.rows.size(), 4u);
  // The bulk of probes sit at the network edge (paper, Table 1).
  EXPECT_GT(t1.rows[0].probes + t1.rows[1].probes, t1.total_probes / 2);
}

TEST_F(StudyTest, SkewCurvesAreValidCdfs) {
  const auto& skew = results_->skew;
  for (const auto& [cat, curves] : skew.curves) {
    for (const auto* curve : {&curves.by_source, &curves.by_dest}) {
      if (curve->empty()) continue;
      EXPECT_NEAR(curve->back().cumulative, 1.0, 1e-9);
      for (std::size_t i = 1; i < curve->size(); ++i)
        EXPECT_GE((*curve)[i].cumulative, (*curve)[i - 1].cumulative);
    }
  }
  double total_service_share = 0;
  for (const auto& [name, s] : skew.top_dest_services) {
    EXPECT_GE(s, 0.0);
    total_service_share += s;
  }
  EXPECT_LE(total_service_share, 1.0 + 1e-9);
  EXPECT_GE(skew.gini_dests, 0.0);
  EXPECT_LE(skew.gini_dests, 1.0);
}

TEST_F(StudyTest, Figure3ContinentalBeatsIntercontinental) {
  const auto& f3 = results_->figure3;
  ASSERT_GT(f3.continental_all.total(), 0u);
  ASSERT_GT(f3.intercontinental.total(), 0u);
  EXPECT_GT(f3.continental_all.share(DecisionCategory::kBestShort),
            f3.intercontinental.share(DecisionCategory::kBestShort));
  EXPECT_GT(f3.continental_traceroute_fraction, 0.05);
  EXPECT_LT(f3.continental_traceroute_fraction, 0.95);
  // Per-continent counts sum to the continental aggregate.
  std::size_t sum = 0;
  for (const auto& [c, b] : f3.per_continent) sum += b.total();
  EXPECT_EQ(sum, f3.continental_all.total());
}

TEST_F(StudyTest, Table3FractionsAreBounded) {
  const auto& t3 = results_->table3;
  for (const auto& row : t3.rows) {
    EXPECT_LE(row.explained, row.domestic_violations);
    EXPECT_GT(row.domestic_violations, 0u);
  }
  EXPECT_GE(t3.overall_explained_fraction, 0.0);
  EXPECT_LE(t3.overall_explained_fraction, 1.0);
}

TEST_F(StudyTest, Table4CableAttribution) {
  const auto& t4 = results_->table4;
  for (double f : {t4.nonbest_short, t4.best_long, t4.nonbest_long,
                   t4.paths_with_cable, t4.cable_decision_deviation}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Cable ASes appear on a small share of paths (paper: <2%).
  EXPECT_LT(t4.paths_with_cable, 0.25);
}

TEST_F(StudyTest, AlternateRoutesAccounting) {
  const auto& alt = results_->alternate;
  EXPECT_GT(alt.targets, 10u);
  EXPECT_EQ(alt.both + alt.best_only + alt.short_only + alt.neither,
            alt.targets);
  EXPECT_GT(alt.poisoned_announcements, alt.targets);
  EXPECT_GT(alt.links_observed, 50u);
  EXPECT_LE(alt.links_poison_only, alt.links_not_in_db);
  // Most targets follow both properties (paper: 86.1%).
  EXPECT_GT(double(alt.both) / double(alt.targets), 0.5);
}

TEST_F(StudyTest, Table2HasBothChannels) {
  const auto& t2 = results_->table2;
  EXPECT_GT(t2.feeds.total(), 10u);
  EXPECT_GT(t2.traceroutes.total(), 10u);
  // Relationship and length dominate the decision process (paper Table 2).
  const auto dominant = [](const TriggerCounts& c) {
    return c.best_relationship + c.shorter_path > c.total() / 3;
  };
  EXPECT_TRUE(dominant(t2.feeds));
  EXPECT_TRUE(dominant(t2.traceroutes));
}

TEST_F(StudyTest, PspValidationConsistent) {
  const auto& psp = results_->psp;
  EXPECT_LE(psp.correct, psp.checked);
  EXPECT_LE(psp.neighbors_with_lg, psp.unique_neighbors);
  if (psp.checked > 0) {
    EXPECT_GT(psp.precision(), 0.3);
    EXPECT_LE(psp.precision(), 1.0);
  }
}

TEST_F(StudyTest, RenderersProduceTables) {
  EXPECT_GT(render_table1(results_->table1).render().size(), 50u);
  EXPECT_GT(render_figure1(results_->figure1).render().size(), 100u);
  EXPECT_GT(render_figure3(results_->figure3).render().size(), 50u);
  EXPECT_GT(render_table3(results_->table3, results_->net->world)
                .render()
                .size(),
            20u);
  EXPECT_GT(render_table4(results_->table4).render().size(), 20u);
}

TEST_F(StudyTest, StalePruningRemovesLinks) {
  const auto& ds = results_->passive;
  const auto pruned = prune_stale_links(ds.inferred,
                                        results_->net->neighbor_history,
                                        results_->net->measurement_epoch);
  EXPECT_LE(pruned.num_links(), ds.inferred.num_links());
}

TEST(InferTrigger, AllCategories) {
  InferredTopology topo;
  topo.set(1, 2, InferredRel::kBProviderOfA);  // 2 is provider of 1? No:
  // kBProviderOfA with key(1,2): B(=2) provider of A(=1) -> from 1's view,
  // 2 is its provider.
  topo.set(1, 3, InferredRel::kAProviderOfB);  // 3 is 1's customer.
  topo.set(1, 4, InferredRel::kPeer);

  auto route_via = [](Asn from, std::size_t len) {
    Route r;
    r.from_asn = from;
    r.path.hops.assign(len, from);
    return r;
  };

  // Chosen customer route vs provider alternative: best relationship.
  EXPECT_EQ(infer_trigger(topo, 1, 3, 3, {route_via(2, 3)}, false),
            DecisionTrigger::kBestRelationship);
  // Chosen peer route while a customer alternative exists: violation.
  EXPECT_EQ(infer_trigger(topo, 1, 4, 3, {route_via(3, 3)}, false),
            DecisionTrigger::kViolation);
  // Same class, chosen shorter: shorter path.
  EXPECT_EQ(infer_trigger(topo, 1, 4, 2,
                          {[&] {
                            auto r = route_via(4, 4);
                            r.via_link = 7;
                            return r;
                          }()},
                          false),
            DecisionTrigger::kShorterPath);
  // Same class and length: intradomain when switched, oldest when kept.
  EXPECT_EQ(infer_trigger(topo, 1, 4, 3, {route_via(4, 3)}, false),
            DecisionTrigger::kIntradomain);
  EXPECT_EQ(infer_trigger(topo, 1, 4, 3, {route_via(4, 3)}, true),
            DecisionTrigger::kOldestRoute);
  // Same class, chosen longer: violation.
  EXPECT_EQ(infer_trigger(topo, 1, 4, 5, {route_via(4, 3)}, false),
            DecisionTrigger::kViolation);
}

}  // namespace
}  // namespace irp
