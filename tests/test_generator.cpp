// Invariant tests for the synthetic Internet generator.
#include <gtest/gtest.h>

#include <set>

#include "net/prefix_trie.hpp"
#include "test_support.hpp"
#include "topo/generator.hpp"

namespace irp {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = generate_internet(test::small_generator_config()).release();
  }
  static void TearDownTestSuite() {
    delete net_;
    net_ = nullptr;
  }
  static const GeneratedInternet* net_;
};

const GeneratedInternet* GeneratorTest::net_ = nullptr;

TEST_F(GeneratorTest, PopulationRostersAreConsistent) {
  const auto& net = *net_;
  EXPECT_EQ(net.tier1s.size(), 6u);
  EXPECT_GE(net.large_isps.size(), 18u);  // 3 per continent + siblings.
  EXPECT_EQ(net.cable_asns.size(), 3u);
  EXPECT_EQ(net.testbed_muxes.size(), 7u);
  EXPECT_NE(net.testbed_asn, 0u);
  std::set<Asn> all;
  for (const auto* roster :
       {&net.tier1s, &net.large_isps, &net.small_isps, &net.stubs,
        &net.education, &net.content_asns, &net.cable_asns})
    for (Asn asn : *roster) EXPECT_TRUE(all.insert(asn).second) << asn;
}

TEST_F(GeneratorTest, Tier1CliqueIsFullMeshWithoutProviders) {
  const auto& net = *net_;
  for (Asn t : net.tier1s) {
    for (LinkId lid : net.topology.links_of(t)) {
      const Link& l = net.topology.link(lid);
      EXPECT_NE(net.topology.relationship_from(l, t), Relationship::kProvider)
          << "tier-1 " << t << " has a provider";
    }
    for (Asn u : net.tier1s) {
      if (u == t) continue;
      EXPECT_FALSE(net.topology.links_between(t, u).empty())
          << "clique miss " << t << "-" << u;
    }
  }
}

TEST_F(GeneratorTest, EveryAsHasPopsPrefixesAndWhois) {
  const auto& net = *net_;
  net.topology.for_each_as([&](const AsNode& node) {
    EXPECT_FALSE(node.pops.empty()) << node.asn;
    if (node.type != AsType::kTestbed)
      EXPECT_FALSE(node.prefixes.empty()) << node.asn;
    EXPECT_TRUE(net.whois.has(node.asn)) << node.asn;
  });
}

TEST_F(GeneratorTest, StubsHaveAtLeastOneStableProvider) {
  const auto& net = *net_;
  for (Asn stub : net.stubs) {
    bool has_alive_provider = false;
    for (LinkId lid : net.topology.links_of(stub)) {
      const Link& l = net.topology.link(lid);
      if (!net.topology.link_alive(l, net.measurement_epoch)) continue;
      if (net.topology.relationship_from(l, stub) == Relationship::kProvider)
        has_alive_provider = true;
    }
    EXPECT_TRUE(has_alive_provider) << "stub " << stub;
  }
}

TEST_F(GeneratorTest, AllPrefixesAreGloballyDisjoint) {
  const auto& net = *net_;
  PrefixTrie<Asn> trie;
  std::vector<Ipv4Prefix> all;
  auto check_and_add = [&](const Ipv4Prefix& p, Asn asn) {
    // No previously inserted prefix may contain or be contained by p.
    EXPECT_FALSE(trie.lookup(p.network()).has_value()) << p.to_string();
    EXPECT_FALSE(trie.exact(p).has_value()) << p.to_string();
    trie.insert(p, asn);
    all.push_back(p);
  };
  net.topology.for_each_as([&](const AsNode& node) {
    for (const auto& pop : node.pops) check_and_add(pop.router_prefix, node.asn);
    for (const auto& op : node.prefixes) check_and_add(op.prefix, node.asn);
  });
  for (const auto& p : net.testbed_prefixes) check_and_add(p, net.testbed_asn);
  EXPECT_GT(all.size(), net.topology.num_ases());
}

TEST_F(GeneratorTest, SiblingLinksStayInsideOrganizations) {
  const auto& net = *net_;
  net.topology.for_each_link([&](const Link& l) {
    if (l.rel_of_b_from_a == Relationship::kSibling)
      EXPECT_TRUE(net.topology.same_org(l.a, l.b));
  });
}

TEST_F(GeneratorTest, HybridPairsHaveDifferingRelationships) {
  const auto& net = *net_;
  EXPECT_EQ(net.hybrid_pairs.size(), 3u);
  for (const auto& [a, b] : net.hybrid_pairs) {
    const auto links = net.topology.links_between(a, b);
    ASSERT_GE(links.size(), 2u);
    std::set<Relationship> rels;
    std::set<CityId> cities;
    for (LinkId lid : links) {
      rels.insert(net.topology.relationship_from(net.topology.link(lid), a));
      cities.insert(net.topology.link(lid).city);
    }
    EXPECT_GE(rels.size(), 2u);
    EXPECT_GE(cities.size(), 2u);  // Different interconnection cities.
  }
}

TEST_F(GeneratorTest, CableAsesProvidePointToPointTransitOnly) {
  const auto& net = *net_;
  for (Asn cable : net.cable_asns) {
    std::set<Continent> continents;
    int customers = 0;
    for (LinkId lid : net.topology.links_of(cable)) {
      const Link& l = net.topology.link(lid);
      const Relationship rel = net.topology.relationship_from(l, cable);
      EXPECT_EQ(rel, Relationship::kCustomer)
          << "cable AS must have only customers";
      ++customers;
      const Asn other = net.topology.other_end(l, cable);
      continents.insert(net.world.continent_of_country(
          net.topology.as_node(other).home_country));
    }
    EXPECT_GE(customers, 2);
    EXPECT_GE(continents.size(), 2u) << "cable must span continents";
  }
}

TEST_F(GeneratorTest, SelectivePrefixesRestrictToExistingLinks) {
  const auto& net = *net_;
  int selective = 0;
  net.topology.for_each_as([&](const AsNode& node) {
    for (const auto& op : node.prefixes) {
      if (op.announce_only_on.empty()) continue;
      ++selective;
      for (LinkId lid : op.announce_only_on) {
        const auto& links = node.links;
        EXPECT_NE(std::find(links.begin(), links.end(), lid), links.end());
      }
    }
  });
  EXPECT_GT(selective, 0);
}

TEST_F(GeneratorTest, TestbedIsCustomerOfEveryMux) {
  const auto& net = *net_;
  ASSERT_EQ(net.testbed_mux_links.size(), net.testbed_muxes.size());
  for (std::size_t i = 0; i < net.testbed_muxes.size(); ++i) {
    const Link& l = net.topology.link(net.testbed_mux_links[i]);
    EXPECT_EQ(net.topology.other_end(l, net.testbed_asn),
              net.testbed_muxes[i]);
    EXPECT_EQ(net.topology.relationship_from(l, net.testbed_asn),
              Relationship::kProvider);
  }
}

TEST_F(GeneratorTest, NeighborHistoryCoversAliveLinks) {
  const auto& net = *net_;
  net.topology.for_each_link([&](const Link& l) {
    if (l.born_epoch > net.measurement_epoch) return;
    const auto seen = net.neighbor_history.last_seen(l.a, l.b);
    ASSERT_TRUE(seen.has_value());
    if (net.topology.link_alive(l, net.measurement_epoch))
      EXPECT_FALSE(
          net.neighbor_history.is_stale(l.a, l.b, net.measurement_epoch));
  });
}

TEST_F(GeneratorTest, ContentCatalogIsServable) {
  const auto& net = *net_;
  EXPECT_EQ(net.content.services().size(), 5u);
  for (const auto& svc : net.content.services()) {
    EXPECT_GE(svc.hostnames.size(), 2u);
    EXPECT_NE(svc.origin_asn, 0u);
    for (const auto& cache : svc.caches) {
      const AsNode& host = net.topology.as_node(cache.host_asn);
      bool found = false;
      for (const auto& op : host.prefixes)
        if (op.prefix == cache.prefix) found = true;
      EXPECT_TRUE(found) << "cache prefix not originated by host";
    }
  }
}

TEST_F(GeneratorTest, CollectorsIncludeAllTier1s) {
  const auto& net = *net_;
  for (Asn t : net.tier1s)
    EXPECT_NE(std::find(net.collector_peers.begin(), net.collector_peers.end(),
                        t),
              net.collector_peers.end());
}

TEST(Generator, DeterministicForSameSeed) {
  const auto a = generate_internet(test::small_generator_config(9));
  const auto b = generate_internet(test::small_generator_config(9));
  EXPECT_EQ(a->topology.num_ases(), b->topology.num_ases());
  EXPECT_EQ(a->topology.num_links(), b->topology.num_links());
  EXPECT_EQ(a->testbed_asn, b->testbed_asn);
  bool equal_links = true;
  a->topology.for_each_link([&](const Link& l) {
    const Link& m = b->topology.link(l.id);
    if (l.a != m.a || l.b != m.b || l.rel_of_b_from_a != m.rel_of_b_from_a ||
        l.city != m.city || l.died_epoch != m.died_epoch)
      equal_links = false;
  });
  EXPECT_TRUE(equal_links);
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_internet(test::small_generator_config(1));
  const auto b = generate_internet(test::small_generator_config(2));
  bool any_diff = a->topology.num_links() != b->topology.num_links();
  if (!any_diff) {
    a->topology.for_each_link([&](const Link& l) {
      const Link& m = b->topology.link(l.id);
      if (l.a != m.a || l.b != m.b) any_diff = true;
    });
  }
  EXPECT_TRUE(any_diff);
}

/// The guaranteed stale link (Netflix/AS3549 analogue) exists: some content
/// AS had a link that is present in history but dead at measurement time.
TEST_F(GeneratorTest, AtLeastOneStaleContentLinkExists) {
  const auto& net = *net_;
  bool found = false;
  net.topology.for_each_link([&](const Link& l) {
    if (net.topology.link_alive(l, net.measurement_epoch)) return;
    if (l.born_epoch > 0) return;
    const bool content_side =
        net.topology.as_node(l.a).type == AsType::kContent ||
        net.topology.as_node(l.b).type == AsType::kContent;
    if (content_side) found = true;
  });
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace irp
