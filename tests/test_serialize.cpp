// Tests for topology serialization, CAIDA-format I/O, CSV export, and file
// helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/report_io.hpp"
#include "core/study.hpp"
#include "inference/serialize.hpp"
#include "test_support.hpp"
#include "topo/generator.hpp"
#include "topo/serialize.hpp"
#include "util/file.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

TEST(CaidaFormat, RoundTripsLabelsAndOrientation) {
  InferredTopology topo;
  topo.set(1, 2, InferredRel::kPeer);
  topo.set(3, 4, InferredRel::kAProviderOfB);  // 3 provides 4.
  topo.set(6, 5, InferredRel::kAProviderOfB);  // 6 provides 5.
  const std::string text = to_caida_format(topo);
  const InferredTopology parsed = from_caida_format(text);
  EXPECT_EQ(parsed.num_links(), 3u);
  EXPECT_EQ(parsed.relationship(1, 2), Relationship::kPeer);
  EXPECT_EQ(parsed.relationship(4, 3), Relationship::kProvider);
  EXPECT_EQ(parsed.relationship(3, 4), Relationship::kCustomer);
  EXPECT_EQ(parsed.relationship(5, 6), Relationship::kProvider);
}

TEST(CaidaFormat, ParsesRealWorldShapedInput) {
  const char* text =
      "# source: example\n"
      "\n"
      "174|2914|0\n"
      "3356|9002|-1\n"
      "   701|702|0   \n";
  const InferredTopology topo = from_caida_format(text);
  EXPECT_EQ(topo.relationship(174, 2914), Relationship::kPeer);
  EXPECT_EQ(topo.relationship(9002, 3356), Relationship::kProvider);
  EXPECT_EQ(topo.relationship(701, 702), Relationship::kPeer);
}

TEST(CaidaFormat, RejectsMalformedInput) {
  EXPECT_THROW(from_caida_format("1|2"), CheckError);
  EXPECT_THROW(from_caida_format("1|2|7"), CheckError);
  EXPECT_THROW(from_caida_format("x|2|0"), CheckError);
  EXPECT_THROW(from_caida_format("1|1|0"), CheckError);
}

TEST(CaidaFormat, RoundTripsInferredStudyTopology) {
  const auto net = generate_internet(test::small_generator_config());
  const auto ds = run_passive_study(*net, test::small_passive_config());
  const InferredTopology parsed =
      from_caida_format(to_caida_format(ds.inferred));
  EXPECT_EQ(parsed.num_links(), ds.inferred.num_links());
  for (const auto& [pair, rel] : ds.inferred.links())
    EXPECT_EQ(parsed.relationship(pair.first, pair.second),
              ds.inferred.relationship(pair.first, pair.second));
}

TEST(TopologySerialize, RoundTripsTinyTopology) {
  test::TinyTopo t;
  const Asn a = t.add(3);
  const Asn b = a + 1, c = a + 2;
  t.topo.as_node_mutable(a).prefers_domestic = true;
  t.topo.as_node_mutable(b).flat_local_pref = true;
  t.topo.as_node_mutable(c).has_looking_glass = true;
  const LinkId l1 = t.link(a, b, Relationship::kCustomer, 3, 4);
  t.topo.link_mutable(l1).lp_delta_a = -150;
  t.topo.link_mutable(l1).partial_transit = true;
  t.topo.link_mutable(l1).died_epoch = 3;
  t.link(b, c, Relationship::kSibling);
  auto& op = t.topo.as_node_mutable(a).prefixes.front();
  op.selective = true;
  op.announce_only_on = {l1};
  op.prepend_on = {{l1, 2}};

  const std::string text = serialize_topology(t.topo);
  const Topology parsed = deserialize_topology(text);

  ASSERT_EQ(parsed.num_ases(), t.topo.num_ases());
  ASSERT_EQ(parsed.num_links(), t.topo.num_links());
  EXPECT_TRUE(parsed.as_node(a).prefers_domestic);
  EXPECT_TRUE(parsed.as_node(b).flat_local_pref);
  EXPECT_TRUE(parsed.as_node(c).has_looking_glass);
  const Link& pl = parsed.link(l1);
  EXPECT_EQ(pl.rel_of_b_from_a, Relationship::kCustomer);
  EXPECT_EQ(pl.igp_cost_a, 3);
  EXPECT_EQ(pl.igp_cost_b, 4);
  EXPECT_EQ(pl.lp_delta_a, -150);
  EXPECT_TRUE(pl.partial_transit);
  EXPECT_EQ(pl.died_epoch, 3);
  const auto& pop = parsed.as_node(a).prefixes.front();
  EXPECT_TRUE(pop.selective);
  EXPECT_EQ(pop.announce_only_on, std::vector<LinkId>{l1});
  ASSERT_EQ(pop.prepend_on.size(), 1u);
  EXPECT_EQ(pop.prepend_on[0], (std::pair<LinkId, int>{l1, 2}));
  // Idempotence: serialize(parse(text)) == text.
  EXPECT_EQ(serialize_topology(parsed), text);
}

TEST(TopologySerialize, RoundTripsGeneratedTopologyExactly) {
  const auto net = generate_internet(test::small_generator_config());
  const std::string text = serialize_topology(net->topology);
  const Topology parsed = deserialize_topology(text);
  EXPECT_EQ(parsed.num_ases(), net->topology.num_ases());
  EXPECT_EQ(parsed.num_links(), net->topology.num_links());
  EXPECT_EQ(serialize_topology(parsed), text);
}

TEST(TopologySerialize, ParsedTopologyRoutesIdentically) {
  const auto net = generate_internet(test::small_generator_config());
  const Topology parsed = deserialize_topology(
      serialize_topology(net->topology));
  GroundTruthPolicy p1{&net->topology};
  GroundTruthPolicy p2{&parsed};
  BgpEngine e1{&net->topology, &p1, net->measurement_epoch};
  BgpEngine e2{&parsed, &p2, net->measurement_epoch};
  const Asn origin = net->content_asns[0];
  const Ipv4Prefix prefix = net->topology.as_node(origin).prefixes[0].prefix;
  e1.announce(prefix, origin);
  e2.announce(prefix, origin);
  e1.run();
  e2.run();
  for (Asn asn = 1; asn <= net->topology.num_ases(); ++asn) {
    const auto* s1 = e1.best(asn, prefix);
    const auto* s2 = e2.best(asn, prefix);
    ASSERT_EQ(s1 == nullptr, s2 == nullptr) << asn;
    if (s1 != nullptr) EXPECT_EQ(s1->path, s2->path) << asn;
  }
}

TEST(TopologySerialize, RejectsGarbage) {
  EXPECT_THROW(deserialize_topology("not a topology"), CheckError);
  EXPECT_THROW(deserialize_topology("irp-topology v1\nbogus record"),
               CheckError);
  EXPECT_THROW(deserialize_topology("irp-topology v1\nas 5 stub 1 0 0 0 0 0"),
               CheckError);  // ASN out of dense order.
}

TEST(FileIo, RoundTripsAndThrowsOnMissing) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "irp_file_test.txt").string();
  write_file(path, "hello\nworld");
  EXPECT_EQ(read_file(path), "hello\nworld");
  std::remove(path.c_str());
  EXPECT_THROW(read_file(path), CheckError);
  EXPECT_THROW(read_file("/nonexistent-dir/x"), CheckError);
  EXPECT_THROW(write_file("/nonexistent-dir/x", "y"), CheckError);
}

TEST(ReportCsv, ContainsHeadersAndRows) {
  StudyConfig config;
  config.generator = test::small_generator_config();
  config.passive = test::small_passive_config();
  config.active.max_targets = 20;
  config.active.traceroute_vantages = 12;
  const StudyResults r = run_full_study(config);

  EXPECT_NE(table1_csv(r.table1).find("as_type,probes"), std::string::npos);
  EXPECT_NE(figure1_csv(r.figure1).find("Simple"), std::string::npos);
  EXPECT_NE(figure2_csv(r.skew).find("rank,cumulative"), std::string::npos);
  EXPECT_NE(figure3_csv(r.figure3).find("intercontinental"),
            std::string::npos);
  EXPECT_NE(table2_csv(r.table2).find("feeds,"), std::string::npos);
  EXPECT_NE(table3_csv(r.table3).find("overall"), std::string::npos);
  EXPECT_NE(table4_csv(r.table4).find("paths_with_cable"), std::string::npos);
  EXPECT_NE(alternate_csv(r.alternate).find("targets,"), std::string::npos);
  EXPECT_NE(psp_csv(r.psp).find("precision,"), std::string::npos);

  // figure1 CSV has one row per scenario plus a header.
  const auto lines = split(figure1_csv(r.figure1), '\n');
  EXPECT_EQ(lines.size(), 1u + 7u + 1u);  // Header + 7 scenarios + trailing.

  const auto dir =
      (std::filesystem::temp_directory_path() / "irp_reports_test").string();
  std::filesystem::create_directories(dir);
  EXPECT_EQ(write_all_reports(r, dir), 9);
  EXPECT_TRUE(std::filesystem::exists(dir + "/figure2.csv"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace irp
// -- appended: renumbering tests ---------------------------------------------
#include "inference/renumber.hpp"

namespace irp {
namespace {

TEST(Renumber, MapsSparsAsnsDenselyAndBack) {
  InferredTopology sparse;
  sparse.set(174, 2906, InferredRel::kAProviderOfB);   // 174 provides 2906.
  sparse.set(3356, 2906, InferredRel::kAProviderOfB);
  sparse.set(174, 3356, InferredRel::kPeer);
  const auto ids = AsnRenumberer::from(sparse);
  EXPECT_EQ(ids.count(), 3u);
  EXPECT_EQ(ids.to_dense(174), 1u);
  EXPECT_EQ(ids.to_dense(2906), 2u);
  EXPECT_EQ(ids.to_dense(3356), 3u);
  EXPECT_EQ(ids.to_original(2), 2906u);
  EXPECT_TRUE(ids.knows(174));
  EXPECT_FALSE(ids.knows(7018));
  EXPECT_THROW(ids.to_dense(7018), CheckError);
  EXPECT_THROW(ids.to_original(0), CheckError);
  EXPECT_THROW(ids.to_original(4), CheckError);

  const InferredTopology dense = ids.renumber(sparse);
  EXPECT_EQ(dense.num_links(), 3u);
  // 174 provides 2906  ->  dense 1 provides dense 2.
  EXPECT_EQ(dense.relationship(2, 1), Relationship::kProvider);
  EXPECT_EQ(dense.relationship(1, 3), Relationship::kPeer);
}

TEST(Renumber, DenseTopologyDrivesGrModel) {
  // End-to-end: parse CAIDA text, renumber, run the GR model.
  const InferredTopology caida = from_caida_format(
      "3356|2906|-1\n174|2906|-1\n174|3356|0\n7018|174|-1\n");
  const auto ids = AsnRenumberer::from(caida);
  const InferredTopology dense = ids.renumber(caida);
  GrModel model{&dense, ids.count()};
  const auto ps = model.compute(ids.to_dense(2906));
  // 7018 -> 174 -> 2906 is a pure customer chain (7018 provides 174).
  EXPECT_EQ(ps.length_via(ids.to_dense(7018), Relationship::kCustomer), 2u);
  // 3356 reaches 2906 directly via its customer.
  EXPECT_EQ(ps.best_class(ids.to_dense(3356)), Relationship::kCustomer);
}

}  // namespace
}  // namespace irp
