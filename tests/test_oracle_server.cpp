// OracleWire end-to-end tests: a real OracleServer on a loopback TCP port.
//
// The headline guarantee is byte identity: a query answered over the wire
// renders to exactly the same text as the same query answered by the local
// OracleService — serially and from four concurrent clients (run under
// IRP_SANITIZE=thread this is the data-race check for the transport).
//
// The rest is fault injection with raw sockets, below the OracleClient so
// the server's behavior is observed directly: overload shedding produces
// explicit kOverloaded error frames while admitted work still completes;
// garbage bytes poison exactly one connection; a malformed payload inside a
// well-framed request keeps the connection alive; client timeouts, refused
// connects, connection caps, and graceful shutdown all surface as their
// documented error kinds.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/oracle_client.hpp"
#include "serve/oracle_server.hpp"
#include "serve/oracle_service.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

struct ServerFixture {
  std::unique_ptr<GeneratedInternet> net;
  PassiveDataset passive;
  OracleSnapshot snapshot;
  std::unique_ptr<OracleIndex> index;
  std::vector<OracleRequest> queries;
};

const ServerFixture& fixture() {
  static const ServerFixture fx = [] {
    ServerFixture f;
    f.net = generate_internet(test::small_generator_config());
    f.passive = run_passive_study(*f.net, test::small_passive_config());
    f.snapshot = snapshot_study(f.passive);
    f.index = std::make_unique<OracleIndex>(&f.snapshot);

    const auto& decisions = f.passive.decisions;
    const auto scenarios = figure1_scenarios();
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      const RouteDecision& d = decisions[i];
      ClassifyRequest classify;
      classify.decision = d;
      classify.scenario = scenarios[i % scenarios.size()].options;
      f.queries.emplace_back(classify);
      if (i % 3 == 0)
        f.queries.emplace_back(AlternateRoutesRequest{d.decider, d.dst_prefix});
      if (i % 5 == 0)
        f.queries.emplace_back(
            PspVisibilityRequest{d.dest_asn, d.next_hop, d.dst_prefix});
      if (i % 7 == 0)
        f.queries.emplace_back(RelationshipLookupRequest{d.decider, d.next_hop});
    }
    return f;
  }();
  return fx;
}

// -- Raw-socket helpers for the fault-injection tests.

/// Blocking loopback connect; returns the fd (or -1, failing the test).
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void send_bytes(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads until `count` frames decode (or the deadline/EOF fails the test).
std::vector<WireFrame> read_frames(int fd, std::size_t count,
                                   int timeout_ms = 5000) {
  std::vector<WireFrame> frames;
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (frames.size() < count) {
    while (auto frame = try_decode_frame(buffer)) {
      frames.push_back(std::move(*frame));
      if (frames.size() == count) return frames;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      ADD_FAILURE() << "timed out with " << frames.size() << "/" << count
                    << " frames";
      return frames;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      ADD_FAILURE() << "connection closed with " << frames.size() << "/"
                    << count << " frames";
      return frames;
    }
    buffer.append(buf, static_cast<std::size_t>(n));
  }
  return frames;
}

/// True when the peer closes the connection within the timeout.
bool reaches_eof(int fd, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return true;
    if (n < 0) return true;  // Reset counts as closed too.
  }
}

WireError expect_error_frame(const WireFrame& frame) {
  EXPECT_EQ(frame.type, FrameType::kError);
  const auto reply = decode_reply(frame);
  return std::get<WireError>(reply);
}

// -- Byte identity against the local service.

TEST(OracleServerE2E, RemoteAnswersAreByteIdenticalToLocalSerial) {
  const ServerFixture& f = fixture();
  ASSERT_GT(f.queries.size(), 100u);
  OracleService service(f.index.get(), OracleService::Config{2, 1024});
  OracleServer server(&service);
  server.start();

  OracleClient::Config cc;
  cc.port = server.port();
  OracleClient client(cc);
  for (const OracleRequest& request : f.queries)
    EXPECT_EQ(to_text(client.call(request)), to_text(service.answer(request)));

  // The wire counters describe exactly this workload. to_text() above ran
  // each query a second time locally, so compare against the server's view.
  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_refused, 0u);
  EXPECT_EQ(stats.frames_in, f.queries.size());
  EXPECT_EQ(stats.frames_out, f.queries.size());
  EXPECT_EQ(stats.requests_admitted, f.queries.size());
  EXPECT_EQ(stats.requests_shed, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  std::uint64_t answered = 0;
  for (int t = 0; t < kNumQueryTypes; ++t) {
    answered += stats.per_type[t].answered;
    if (stats.per_type[t].answered > 0) {
      EXPECT_GT(stats.per_type[t].p50_us, 0.0);
      EXPECT_GE(stats.per_type[t].p99_us, stats.per_type[t].p50_us);
    }
  }
  EXPECT_EQ(answered, f.queries.size());

  server.shutdown();
  service.shutdown();
}

TEST(OracleServerE2E, ConcurrentClientsStayByteIdentical) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{4, 256});
  OracleServer server(&service);
  server.start();
  const std::uint16_t port = server.port();

  // Local ground truth first, so worker threads only compare strings.
  std::vector<std::string> expected;
  expected.reserve(f.queries.size());
  for (const OracleRequest& request : f.queries)
    expected.push_back(to_text(service.answer(request)));

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      OracleClient::Config cc;
      cc.port = port;
      OracleClient client(cc);  // One client per thread; single in-flight.
      for (std::size_t i = t; i < f.queries.size(); i += kClients)
        if (to_text(client.call(f.queries[i])) != expected[i]) ++mismatches[t];
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kClients; ++t) EXPECT_EQ(mismatches[t], 0) << "client " << t;

  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.requests_admitted, f.queries.size());
  EXPECT_EQ(stats.decode_errors, 0u);

  server.shutdown();
  service.shutdown();
}

// -- Overload: shed requests get explicit error frames, admitted ones are
// still answered. workers == 0 keeps the queue full deterministically.

TEST(OracleServerE2E, OverloadShedsWithExplicitErrorFrames) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{0, 1});
  OracleServer server(&service);
  server.start();

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // Pipeline three requests at once: capacity 1 with no workers admits
  // exactly the first and sheds the rest.
  std::string burst;
  for (std::uint64_t id = 1; id <= 3; ++id)
    burst += encode_request(id, f.queries[(id - 1) % f.queries.size()]);
  send_bytes(fd, burst);

  const auto errors = read_frames(fd, 2);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].request_id, 2u);
  EXPECT_EQ(errors[1].request_id, 3u);
  for (const WireFrame& frame : errors) {
    const WireError err = expect_error_frame(frame);
    EXPECT_EQ(err.code, WireErrorCode::kOverloaded);
    EXPECT_EQ(err.message, "service queue full");
  }

  // Draining the service resolves the admitted request; its response frame
  // arrives on the same still-healthy connection.
  EXPECT_EQ(service.drain(), 1u);
  const auto answers = read_frames(fd, 1);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].request_id, 1u);
  EXPECT_TRUE(is_response_frame(answers[0].type));

  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_admitted, 1u);
  EXPECT_EQ(stats.requests_shed, 2u);
  EXPECT_EQ(stats.frames_in, 3u);
  EXPECT_EQ(stats.frames_out, 3u);

  ::close(fd);
  server.shutdown();
  service.shutdown();
}

// -- Malformed input.

TEST(OracleServerE2E, GarbageBytesPoisonOnlyThatConnection) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{1, 64});
  OracleServer server(&service);
  server.start();

  const int bad = connect_loopback(server.port());
  ASSERT_GE(bad, 0);
  send_bytes(bad, std::string(64, 'x'));  // Not a frame by any reading.
  const auto frames = read_frames(bad, 1);
  ASSERT_EQ(frames.size(), 1u);
  const WireError err = expect_error_frame(frames[0]);
  EXPECT_EQ(err.code, WireErrorCode::kMalformedRequest);
  EXPECT_EQ(frames[0].request_id, 0u);  // No frame, so no id to echo.
  EXPECT_TRUE(reaches_eof(bad));        // Framing gone -> hard close.
  ::close(bad);

  // A well-behaved client on a fresh connection is unaffected.
  OracleClient::Config cc;
  cc.port = server.port();
  OracleClient client(cc);
  EXPECT_EQ(to_text(client.call(f.queries[0])),
            to_text(service.answer(f.queries[0])));
  EXPECT_GE(server.stats().decode_errors, 1u);

  server.shutdown();
  service.shutdown();
}

TEST(OracleServerE2E, MalformedPayloadKeepsConnectionAlive) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{1, 64});
  OracleServer server(&service);
  server.start();

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // Perfect framing, broken payload: relationship lookup needs 8 bytes.
  WireFrame bad;
  bad.type = FrameType::kRelationshipLookupRequest;
  bad.request_id = 5;
  bad.payload = std::string(4, '\0');
  send_bytes(fd, encode_frame(bad));

  auto frames = read_frames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(expect_error_frame(frames[0]).code,
            WireErrorCode::kMalformedRequest);
  EXPECT_EQ(frames[0].request_id, 5u);

  // The same connection still serves valid requests afterwards.
  send_bytes(fd, encode_request(6, OracleRequest{RelationshipLookupRequest{
                                      1, 2}}));
  frames = read_frames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].request_id, 6u);
  EXPECT_EQ(frames[0].type, FrameType::kRelationshipLookupResponse);

  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.requests_admitted, 1u);

  ::close(fd);
  server.shutdown();
  service.shutdown();
}

TEST(OracleServerE2E, OversizedClaimAgainstServerLimitClosesConnection) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{1, 64});
  OracleServer::Config sc;
  sc.max_frame_payload = 16;  // Tighter than the protocol-wide bound.
  OracleServer server(&service, sc);
  server.start();

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  // A relationship lookup (8-byte payload) fits under the 16-byte limit...
  send_bytes(fd, encode_request(1, OracleRequest{RelationshipLookupRequest{
                                      1, 2}}));
  auto frames = read_frames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kRelationshipLookupResponse);

  // ...but a classify request (59-byte payload) is oversized for this
  // server even though it is valid protocol; the claim is rejected from the
  // header alone and the connection poisoned.
  ClassifyRequest classify;
  for (const OracleRequest& q : f.queries)
    if (std::holds_alternative<ClassifyRequest>(q)) {
      classify = std::get<ClassifyRequest>(q);
      break;
    }
  send_bytes(fd, encode_request(2, OracleRequest{classify}));
  frames = read_frames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(expect_error_frame(frames[0]).code,
            WireErrorCode::kMalformedRequest);
  EXPECT_TRUE(reaches_eof(fd));
  ::close(fd);

  server.shutdown();
  service.shutdown();
}

// -- Connection management.

TEST(OracleServerE2E, ConnectionsOverCapAreRefused) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{1, 64});
  OracleServer::Config sc;
  sc.max_connections = 1;
  OracleServer server(&service, sc);
  server.start();

  const int first = connect_loopback(server.port());
  ASSERT_GE(first, 0);
  // Prove the first connection is established server-side before the
  // second arrives, so the refusal is deterministic.
  send_bytes(first, encode_request(1, OracleRequest{RelationshipLookupRequest{
                                          1, 2}}));
  ASSERT_EQ(read_frames(first, 1).size(), 1u);

  const int second = connect_loopback(server.port());
  ASSERT_GE(second, 0);  // TCP accepts, then the server closes immediately.
  EXPECT_TRUE(reaches_eof(second));
  EXPECT_EQ(server.stats().connections_refused, 1u);
  ::close(second);
  ::close(first);

  server.shutdown();
  service.shutdown();
}

TEST(OracleServerE2E, ShutdownDrainsThenRefusesNewConnections) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{1, 64});
  auto server = std::make_unique<OracleServer>(&service);
  server->start();
  const std::uint16_t port = server->port();

  OracleClient::Config cc;
  cc.port = port;
  cc.max_retries = 0;
  {
    OracleClient client(cc);
    EXPECT_EQ(to_text(client.call(f.queries[0])),
              to_text(service.answer(f.queries[0])));
  }
  server->shutdown();
  EXPECT_EQ(server->stats().connections_closed,
            server->stats().connections_accepted);

  // The port no longer listens; a fresh client fails with kConnect.
  OracleClient late(cc);
  try {
    (void)late.call(f.queries[0]);
    FAIL() << "call succeeded against a shut-down server";
  } catch (const WireTransportError& e) {
    EXPECT_EQ(e.kind(), WireTransportError::Kind::kConnect);
  }

  server.reset();  // Destructor after explicit shutdown is a no-op.
  service.shutdown();
}

// -- EINTR injection: client calls must survive interrupted syscalls.

std::atomic<int> g_sigusr1_count{0};
void count_sigusr1(int) { g_sigusr1_count.fetch_add(1); }

TEST(OracleClientRobustness, CallsSurviveInterruptedSyscalls) {
  const ServerFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{2, 256});
  OracleServer server(&service);
  server.start();

  OracleClient::Config cc;
  cc.port = server.port();
  cc.max_retries = 0;  // EINTR must be absorbed below the retry layer.
  OracleClient client(cc);
  // Establish the connection before the signal storm starts; the EINTR
  // contract under test is send_all/read_frame, not the connect handshake.
  ASSERT_EQ(to_text(client.call(f.queries[0])),
            to_text(service.answer(f.queries[0])));

  // A handler installed WITHOUT SA_RESTART makes every signal delivery fail
  // the interrupted syscall with EINTR instead of restarting it.
  struct sigaction sa {}, old {};
  sa.sa_handler = count_sigusr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  // Pepper only this thread — the one blocking in the client's
  // send/poll/recv — with signals for the duration of the query stream.
  std::atomic<bool> done{false};
  const pthread_t victim = pthread_self();
  std::thread pepper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  int mismatches = 0;
  for (int round = 0; round < 2; ++round)
    for (const OracleRequest& request : f.queries)
      if (to_text(client.call(request)) != to_text(service.answer(request)))
        ++mismatches;
  EXPECT_EQ(mismatches, 0);

  done.store(true);
  pepper.join();
  ASSERT_EQ(sigaction(SIGUSR1, &old, nullptr), 0);
  // Prove the storm actually happened — otherwise the test proves nothing.
  EXPECT_GT(g_sigusr1_count.load(), 100);

  server.shutdown();
  service.shutdown();
}

// -- Client failure taxonomy, without any OracleServer at all.

TEST(OracleClientErrors, ReadTimeoutAgainstHangingServer) {
  // A listening socket that never accepts: the kernel completes the TCP
  // handshake from the backlog, then nothing ever answers.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr),
            0);
  ASSERT_EQ(::listen(listener, 8), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len),
            0);

  OracleClient::Config cc;
  cc.port = ntohs(bound.sin_port);
  cc.read_timeout = std::chrono::milliseconds(100);
  cc.max_retries = 1;  // Prove the retry happens, then the error escapes.
  cc.retry_backoff = std::chrono::milliseconds(10);
  OracleClient client(cc);
  const auto start = std::chrono::steady_clock::now();
  try {
    (void)client.call(OracleRequest{RelationshipLookupRequest{1, 2}});
    FAIL() << "call against a hanging server succeeded";
  } catch (const WireTransportError& e) {
    EXPECT_EQ(e.kind(), WireTransportError::Kind::kTimeout);
  }
  // Two attempts of ~100ms each plus one 10ms backoff must have elapsed.
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 200);
  ::close(listener);
}

TEST(OracleClientErrors, ConnectRefusedSurfacesAsConnectError) {
  // Grab an ephemeral port and release it; nothing listens there now.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::bind(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&bound), &len),
            0);
  const std::uint16_t dead_port = ntohs(bound.sin_port);
  ::close(probe);

  OracleClient::Config cc;
  cc.port = dead_port;
  cc.max_retries = 1;
  cc.retry_backoff = std::chrono::milliseconds(5);
  OracleClient client(cc);
  try {
    (void)client.call(OracleRequest{RelationshipLookupRequest{1, 2}});
    FAIL() << "call against a dead port succeeded";
  } catch (const WireTransportError& e) {
    EXPECT_EQ(e.kind(), WireTransportError::Kind::kConnect);
  }
  EXPECT_FALSE(client.connected());
}

}  // namespace
}  // namespace irp
