// Tests for the BGP propagation engine on hand-built topologies.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

/// Convenience: run an engine announcing `origin`'s own prefix.
Ipv4Prefix announce_own(BgpEngine& engine, const test::TinyTopo& t,
                        Asn origin) {
  const Ipv4Prefix p = t.prefix_of(origin);
  engine.announce(p, origin);
  engine.run();
  return p;
}

TEST(Engine, PropagatesAlongProviderChain) {
  test::TinyTopo t;
  const Asn a = t.add(3);  // a=1, b=2, c=3.
  const Asn b = a + 1, c = a + 2;
  t.link(a, b, Relationship::kCustomer);  // b buys from a.
  t.link(b, c, Relationship::kCustomer);  // c buys from b.
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto p = announce_own(engine, t, c);

  const auto* sel = engine.best(a, p);
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->path.hops, (std::vector<Asn>{b, c}));
  EXPECT_EQ(engine.forward_next_hop(a, p), b);
  EXPECT_TRUE(engine.converged());
}

TEST(Engine, OriginSelectsItself) {
  test::TinyTopo t;
  const Asn a = t.add();
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto p = announce_own(engine, t, a);
  const auto* sel = engine.best(a, p);
  ASSERT_NE(sel, nullptr);
  EXPECT_TRUE(sel->self_originated);
  EXPECT_EQ(engine.forward_next_hop(a, p), std::nullopt);
}

TEST(Engine, PrefersCustomerOverPeerOverProvider) {
  // x has three routes to dest d: via customer c, peer p, provider v.
  test::TinyTopo t;
  const Asn x = t.add();
  const Asn c = t.add();
  const Asn p = t.add();
  const Asn v = t.add();
  const Asn d = t.add();
  t.link(x, c, Relationship::kCustomer);
  t.link(x, p, Relationship::kPeer);
  t.link(x, v, Relationship::kProvider);
  // All three reach d via their own customer links (so export to x is legal).
  t.link(c, d, Relationship::kCustomer);
  t.link(p, d, Relationship::kCustomer);
  t.link(v, d, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);

  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, c);
  // All three candidate routes are in the Adj-RIB-In.
  EXPECT_EQ(engine.routes_at(x, pfx).size(), 3u);
}

TEST(Engine, ValleyFreeExportEnforced) {
  // d - v(provider of x) - x - p(peer of x): x must not export the provider
  // route to its peer, so p has no route (p's only neighbor is x).
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn v = t.add();
  const Asn x = t.add();
  const Asn p = t.add();
  t.link(v, d, Relationship::kCustomer);   // d buys from v.
  t.link(x, v, Relationship::kProvider);   // v is x's provider.
  t.link(x, p, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);

  ASSERT_NE(engine.best(x, pfx), nullptr);  // x reaches d via provider.
  EXPECT_EQ(engine.best(p, pfx), nullptr);  // Peer must not learn it.
}

TEST(Engine, ShorterPathWinsWithinClass) {
  test::TinyTopo t;
  const Asn x = t.add();
  const Asn c1 = t.add();
  const Asn c2 = t.add();
  const Asn mid = t.add();
  const Asn d = t.add();
  t.link(x, c1, Relationship::kCustomer);
  t.link(x, c2, Relationship::kCustomer);
  t.link(c1, d, Relationship::kCustomer);        // Short: x-c1-d.
  t.link(c2, mid, Relationship::kCustomer);      // Long: x-c2-mid-d.
  t.link(mid, d, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, c1);
  EXPECT_EQ(engine.best(x, pfx)->path.length(), 2u);
}

TEST(Engine, IgpCostBreaksTies) {
  test::TinyTopo t;
  const Asn x = t.add();
  const Asn c1 = t.add();
  const Asn c2 = t.add();
  const Asn d = t.add();
  t.link(x, c1, Relationship::kCustomer, /*igp_a=*/9, 1);
  t.link(x, c2, Relationship::kCustomer, /*igp_a=*/2, 1);
  t.link(c1, d, Relationship::kCustomer);
  t.link(c2, d, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, c2);  // Lower IGP cost.
}

TEST(Engine, PoisonedAnnouncementTriggersLoopPrevention) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn n1 = t.add();
  const Asn n2 = t.add();
  const Asn x = t.add();
  t.link(d, n1, Relationship::kProvider);
  t.link(d, n2, Relationship::kProvider);
  t.link(n1, x, Relationship::kPeer);
  t.link(n2, x, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);

  engine.announce(pfx, d);
  engine.run();
  ASSERT_NE(engine.best(x, pfx), nullptr);
  const Asn first = engine.best(x, pfx)->next_hop;

  // Poison the currently used neighbor: x must switch to the other one.
  engine.announce(pfx, d, AnnounceOptions{.poison_set = {first}});
  engine.run();
  EXPECT_EQ(engine.best(first, pfx), nullptr);  // Poisoned AS lost the route.
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_NE(engine.best(x, pfx)->next_hop, first);
  // The poisoned set counts as one extra hop of path length.
  EXPECT_EQ(engine.best(x, pfx)->path.length(), 3u);

  // Poison both: x has no route left.
  engine.announce(pfx, d,
                  AnnounceOptions{.poison_set = {n1, n2}});
  engine.run();
  EXPECT_EQ(engine.best(x, pfx), nullptr);
}

TEST(Engine, WithdrawPropagates) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn m = t.add();
  const Asn x = t.add();
  t.link(d, m, Relationship::kProvider);
  t.link(m, x, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);
  ASSERT_NE(engine.best(x, pfx), nullptr);

  engine.withdraw(pfx);
  engine.run();
  EXPECT_EQ(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(m, pfx), nullptr);
  EXPECT_EQ(engine.best(d, pfx), nullptr);
}

TEST(Engine, SelectiveAnnouncementRestrictsOriginLinks) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn p1 = t.add();
  const Asn p2 = t.add();
  const LinkId l1 = t.link(d, p1, Relationship::kProvider);
  t.link(d, p2, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);

  engine.announce(pfx, d, AnnounceOptions{.only_links = {l1}});
  engine.run();
  EXPECT_NE(engine.best(p1, pfx), nullptr);
  EXPECT_EQ(engine.best(p2, pfx), nullptr);

  // Re-announcing everywhere reaches p2 as well.
  engine.announce(pfx, d);
  engine.run();
  EXPECT_NE(engine.best(p2, pfx), nullptr);

  // And narrowing again must withdraw from p2.
  engine.announce(pfx, d, AnnounceOptions{.only_links = {l1}});
  engine.run();
  EXPECT_EQ(engine.best(p2, pfx), nullptr);
}

TEST(Engine, OldestRouteWinsOnFullTie) {
  // Two equal-class, equal-length, equal-IGP routes: the first received
  // (lower logical time) must be kept.
  test::TinyTopo t;
  const Asn x = t.add();
  const Asn n1 = t.add();
  const Asn n2 = t.add();
  const Asn d = t.add();
  const LinkId lx1 = t.link(x, n1, Relationship::kProvider, 5, 1);
  t.link(x, n2, Relationship::kProvider, 5, 1);
  const LinkId ld1 = t.link(n1, d, Relationship::kCustomer);
  const LinkId ld2 = t.link(n2, d, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);

  // Announce first via n1 only, then anycast: x should keep the n1 route.
  engine.announce(pfx, d, AnnounceOptions{.only_links = {ld1}});
  engine.run();
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, n1);

  engine.announce(pfx, d, AnnounceOptions{.only_links = {ld1, ld2}});
  engine.run();
  ASSERT_EQ(engine.routes_at(x, pfx).size(), 2u);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, n1) << "oldest route must win";
  EXPECT_EQ(engine.best(x, pfx)->via_link, lx1);
}

TEST(Engine, SiblingOrgClassInheritanceBlocksLeak) {
  // Sibling family (s1, s2). s1 learns d's prefix from its provider; it may
  // hand it to s2 (sibling), but s2 must NOT re-export it to s2's peer —
  // the organization-wide class is still "provider".
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn s1 = t.add();
  const Asn s2 = t.add();
  const Asn peer = t.add();
  t.link(s1, d, Relationship::kProvider);  // d is s1's provider.
  t.link(s1, s2, Relationship::kSibling);
  t.link(s2, peer, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);

  ASSERT_NE(engine.best(s1, pfx), nullptr);
  ASSERT_NE(engine.best(s2, pfx), nullptr);  // Sibling received it.
  EXPECT_EQ(engine.best(s2, pfx)->effective_class, Relationship::kProvider);
  EXPECT_EQ(engine.best(peer, pfx), nullptr) << "provider route leaked to peer";
}

TEST(Engine, SiblingCustomerRoutesExportEverywhere) {
  // The org's customer routes flow through siblings to the whole world.
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn s1 = t.add();
  const Asn s2 = t.add();
  const Asn peer = t.add();
  t.link(s1, d, Relationship::kCustomer);  // d is s1's customer.
  t.link(s1, s2, Relationship::kSibling);
  t.link(s2, peer, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);
  ASSERT_NE(engine.best(peer, pfx), nullptr);
  EXPECT_EQ(engine.best(peer, pfx)->path.hops, (std::vector<Asn>{s2, s1, d}));
}

TEST(Engine, FeedReportsCollectorPeersBestRoutes) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn m = t.add();
  t.link(d, m, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const auto pfx = announce_own(engine, t, d);

  const std::vector<Asn> peers{m, d};
  const auto feed = engine.feed(peers);
  ASSERT_EQ(feed.size(), 2u);
  EXPECT_EQ(feed[0].peer, m);
  EXPECT_EQ(feed[0].path.hops, (std::vector<Asn>{m, d}));
  EXPECT_EQ(feed[1].peer, d);
  EXPECT_EQ(feed[1].path.hops, (std::vector<Asn>{d}));
  EXPECT_EQ(feed[0].prefix, pfx);
}

TEST(Engine, EpochControlsLinkLiveness) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn x = t.add();
  const LinkId l = t.link(d, x, Relationship::kProvider);
  t.topo.link_mutable(l).died_epoch = 2;
  GroundTruthPolicy policy{&t.topo};

  BgpEngine alive{&t.topo, &policy, 1};
  alive.announce(t.prefix_of(d), d);
  alive.run();
  EXPECT_NE(alive.best(x, t.prefix_of(d)), nullptr);

  BgpEngine dead{&t.topo, &policy, 2};
  dead.announce(t.prefix_of(d), d);
  dead.run();
  EXPECT_EQ(dead.best(x, t.prefix_of(d)), nullptr);
}

TEST(Engine, RejectsForeignOriginForOwnedPrefix) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  t.link(a, b, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  engine.announce(t.prefix_of(a), a);
  EXPECT_THROW(engine.announce(t.prefix_of(a), b), CheckError);
}

TEST(Engine, PartialTransitServesHalfTheTable) {
  test::TinyTopo t;
  const Asn prov = t.add();
  const Asn cust = t.add();
  const Asn origin = t.add();
  const LinkId pc = t.link(prov, cust, Relationship::kCustomer);
  t.topo.link_mutable(pc).partial_transit = true;
  t.link(prov, origin, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};

  int received = 0;
  const int total = 32;
  for (int i = 0; i < total; ++i) {
    const Ipv4Prefix pfx{Ipv4Addr(172, 20, std::uint8_t(i), 0), 24};
    engine.announce(pfx, origin);
    engine.run();
    if (engine.best(cust, pfx) != nullptr) ++received;
  }
  EXPECT_GT(received, total / 4);
  EXPECT_LT(received, 3 * total / 4);
}

TEST(Engine, AnycastChoosesClosestSite) {
  // Origin announces from two sites (links); a distant AS picks the shorter
  // side.
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn near = t.add();
  const Asn far1 = t.add();
  const Asn far2 = t.add();
  const Asn x = t.add();
  const LinkId site_near = t.link(d, near, Relationship::kProvider);
  const LinkId site_far = t.link(d, far1, Relationship::kProvider);
  t.link(far1, far2, Relationship::kProvider);
  t.link(near, x, Relationship::kCustomer);
  t.link(far2, x, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);
  engine.announce(pfx, d, AnnounceOptions{.only_links = {site_near, site_far}});
  engine.run();
  // x is a provider of both near and far2; both exports are legal
  // (customer-learned chains), x picks the shorter (via near).
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, near);
}

}  // namespace
}  // namespace irp
