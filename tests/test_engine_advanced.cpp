// Advanced BGP engine behaviours: prepending, sibling chains, incremental
// state, and policy interactions.
#include <gtest/gtest.h>

#include "bgp/engine.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

TEST(EngineAdvanced, PerLinkPrependSteersInboundTraffic) {
  // Origin d has two providers p1, p2 which both connect to x. Without
  // prepending, x ties on class/length and picks by IGP; prepending on the
  // p1 link makes the p1 path longer, steering x via p2.
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn p1 = t.add();
  const Asn p2 = t.add();
  const Asn x = t.add();
  const LinkId ld1 = t.link(d, p1, Relationship::kProvider);
  t.link(d, p2, Relationship::kProvider);
  t.link(p1, x, Relationship::kProvider, 1, 1);
  t.link(p2, x, Relationship::kProvider, 9, 9);  // Worse IGP at x.
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);

  engine.announce(pfx, d);
  engine.run();
  // x learns both; equal length; IGP picks p1... wait: x is the *provider*
  // of p1/p2, so it receives their customer-learned routes. Both length 2;
  // IGP cost from x: link to p1 has cost 1 at the x side? igp_cost_a is the
  // a-side; links were created as (p1, x) so x is side b with cost 1 and 9.
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, p1);

  AnnounceOptions options;
  options.prepend_on = {{ld1, 3}};  // d prepends 3x toward p1.
  engine.announce(pfx, d, std::move(options));
  engine.run();
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, p2)
      << "prepending must steer x away from the p1 side";
  // The prepended path is visibly longer via p1.
  for (const Route& r : engine.routes_at(x, pfx))
    if (r.from_asn == p1) EXPECT_EQ(r.path.length(), 5u);  // p1 d d d d.
}

TEST(EngineAdvanced, PrependDoesNotAffectOtherLinks) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn p1 = t.add();
  const Asn p2 = t.add();
  const LinkId ld1 = t.link(d, p1, Relationship::kProvider);
  t.link(d, p2, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);
  AnnounceOptions options;
  options.prepend_on = {{ld1, 2}};
  engine.announce(pfx, d, std::move(options));
  engine.run();
  ASSERT_NE(engine.best(p1, pfx), nullptr);
  ASSERT_NE(engine.best(p2, pfx), nullptr);
  EXPECT_EQ(engine.best(p1, pfx)->path.length(), 3u);
  EXPECT_EQ(engine.best(p2, pfx)->path.length(), 1u);
}

TEST(EngineAdvanced, SiblingChainPropagatesOrgClass) {
  // s1 - s2 - s3 sibling chain; s1 learns from a peer. The route may cross
  // the whole chain but must not leave via s3's peer.
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn s1 = t.add();
  const Asn s2 = t.add();
  const Asn s3 = t.add();
  const Asn out_peer = t.add();
  t.link(s1, d, Relationship::kPeer);
  t.link(s1, s2, Relationship::kSibling);
  t.link(s2, s3, Relationship::kSibling);
  t.link(s3, out_peer, Relationship::kPeer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  // d's prefix reaches s1 via peer only if d's route is customer-class at
  // d (self-originated) — fine.
  const Ipv4Prefix pfx = t.prefix_of(d);
  engine.announce(pfx, d);
  engine.run();
  ASSERT_NE(engine.best(s1, pfx), nullptr);
  ASSERT_NE(engine.best(s2, pfx), nullptr);
  ASSERT_NE(engine.best(s3, pfx), nullptr);
  EXPECT_EQ(engine.best(s3, pfx)->effective_class, Relationship::kPeer);
  EXPECT_EQ(engine.best(out_peer, pfx), nullptr)
      << "peer-learned route crossed the org and leaked to a peer";
}

TEST(EngineAdvanced, SelectiveAndPoisonCompose) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn p1 = t.add();
  const Asn p2 = t.add();
  const Asn x = t.add();
  const LinkId l1 = t.link(d, p1, Relationship::kProvider);
  const LinkId l2 = t.link(d, p2, Relationship::kProvider);
  t.link(p1, x, Relationship::kProvider);
  t.link(p2, x, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(d);

  // Announce on both links but poison p1: x must route via p2.
  AnnounceOptions options;
  options.only_links = {l1, l2};
  options.poison_set = {p1};
  engine.announce(pfx, d, std::move(options));
  engine.run();
  EXPECT_EQ(engine.best(p1, pfx), nullptr);
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->next_hop, p2);
}

TEST(EngineAdvanced, MessagesCountedAndMonotone) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn m = t.add();
  t.link(d, m, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  EXPECT_EQ(engine.messages_delivered(), 0u);
  engine.announce(t.prefix_of(d), d);
  engine.run();
  const auto after_first = engine.messages_delivered();
  EXPECT_GT(after_first, 0u);
  engine.withdraw(t.prefix_of(d));
  engine.run();
  EXPECT_GT(engine.messages_delivered(), after_first);
}

TEST(EngineAdvanced, LogicalTimeAdvancesAcrossStages) {
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn m = t.add();
  t.link(d, m, Relationship::kProvider);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  engine.announce(t.prefix_of(d), d);
  engine.run();
  const LogicalTime t1 = engine.now();
  ASSERT_NE(engine.best(m, t.prefix_of(d)), nullptr);
  const LogicalTime age1 = engine.best(m, t.prefix_of(d))->age;
  EXPECT_LE(age1, t1);

  // Re-announcing the identical route must not refresh its age.
  engine.announce(t.prefix_of(d), d);
  engine.run();
  EXPECT_EQ(engine.best(m, t.prefix_of(d))->age, age1);
}

TEST(EngineAdvanced, ParallelLinksBothInRib) {
  // Hybrid pair: two links between x and y; x sees two candidate routes.
  test::TinyTopo t;
  const Asn y = t.add();
  const Asn x = t.add();
  const LinkId peer_link = t.link(x, y, Relationship::kPeer, 5, 1);
  const LinkId cust_link = t.link(x, y, Relationship::kCustomer, 9, 1);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(y);
  engine.announce(pfx, y);
  engine.run();
  const auto routes = engine.routes_at(x, pfx);
  ASSERT_EQ(routes.size(), 2u);
  // Customer class (lp 300) wins over peer (200) despite worse IGP.
  ASSERT_NE(engine.best(x, pfx), nullptr);
  EXPECT_EQ(engine.best(x, pfx)->via_link, cust_link);
  EXPECT_NE(engine.best(x, pfx)->via_link, peer_link);
}

TEST(EngineAdvanced, DispueWheelHitsSafetyCap) {
  // A classic 3-node dispute wheel: each AS prefers the route through its
  // clockwise neighbor over its direct route (via lp deltas). BGP cannot
  // converge; the engine must stop at the cap and flag it.
  test::TinyTopo t;
  const Asn d = t.add();
  const Asn a = t.add();
  const Asn b = t.add();
  const Asn c = t.add();
  // d is everyone's customer.
  t.link(a, d, Relationship::kCustomer);
  t.link(b, d, Relationship::kCustomer);
  t.link(c, d, Relationship::kCustomer);
  // Ring of peer links with boosted preference for peer routes.
  const LinkId ab = t.link(a, b, Relationship::kPeer);
  const LinkId bc = t.link(b, c, Relationship::kPeer);
  const LinkId ca = t.link(c, a, Relationship::kPeer);
  // Each prefers the peer-learned route over its own customer route.
  t.topo.link_mutable(ab).lp_delta_a = 200;  // a prefers via b.
  t.topo.link_mutable(bc).lp_delta_a = 200;  // b prefers via c.
  t.topo.link_mutable(ca).lp_delta_a = 200;  // c prefers via a.
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  engine.announce(t.prefix_of(d), d);
  engine.run();  // Must terminate regardless of the oscillation.
  // Whether or not the cap was hit for this wheel, the run terminates and
  // every AS still holds some route to d.
  for (Asn asn : {a, b, c})
    EXPECT_NE(engine.best(asn, t.prefix_of(d)), nullptr);
}

TEST(EngineAdvanced, PoisonSetRendering) {
  AsPath path;
  path.hops = {5, 9, 7};
  path.poison_set = {11, 12};
  const std::string text = path.to_string();
  EXPECT_NE(text.find("{11,12}"), std::string::npos);
  EXPECT_EQ(path.length(), 4u);
  EXPECT_TRUE(path.contains(11));
  EXPECT_TRUE(path.contains(9));
  EXPECT_FALSE(path.contains(13));
}

}  // namespace
}  // namespace irp
