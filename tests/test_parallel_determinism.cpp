// Determinism harness for the parallel execution layer: the passive study
// and the full classification pipeline must produce byte-identical results
// at any thread count, because workers only ever claim *which* unit of work
// to run — all randomness and all result ordering stay serial.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/analysis.hpp"
#include "core/report_io.hpp"
#include "inference/serialize.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

/// Full text dump of every extracted routing decision, in order.
std::string dump_decisions(const PassiveDataset& ds) {
  std::ostringstream out;
  for (const RouteDecision& d : ds.decisions) {
    out << d.decider << '>' << d.next_hop << " dest=" << d.dest_asn
        << " src=" << d.src_asn << " rem=" << d.remaining_len
        << " prefix=" << d.dst_prefix.to_string()
        << " origin=" << d.origin_asn << " city="
        << (d.interconnect_city ? int(*d.interconnect_city) : -1)
        << " tr=" << d.traceroute_index << " path=";
    for (Asn asn : d.measured_remaining) out << asn << ',';
    out << '\n';
  }
  return out.str();
}

/// Full text dump of the corpus: every epoch, every path.
std::string dump_corpus(const PathCorpus& corpus) {
  std::ostringstream out;
  for (int epoch : corpus.epochs()) {
    out << "epoch " << epoch << '\n';
    for (const std::vector<Asn>& path : corpus.paths(epoch)) {
      for (Asn asn : path) out << asn << ' ';
      out << '\n';
    }
  }
  return out.str();
}

/// Per-decision categories under every Figure 1 scenario, one char each.
std::string dump_classification(const PassiveDataset& ds,
                                const DecisionClassifier& classifier) {
  std::ostringstream out;
  for (const NamedScenario& scenario : figure1_scenarios()) {
    out << scenario.name << ':';
    for (const RouteDecision& d : ds.decisions)
      out << int(classifier.classify(d, scenario.options));
    out << '\n';
  }
  return out.str();
}

TEST(ParallelDeterminism, ParallelEqualsSerialEverywhere) {
  const auto net = generate_internet(test::small_generator_config());

  PassiveStudyConfig serial_config = test::small_passive_config();
  serial_config.parallel.threads = 1;
  PassiveStudyConfig parallel_config = serial_config;
  parallel_config.parallel.threads = 4;

  const PassiveDataset serial = run_passive_study(*net, serial_config);
  const PassiveDataset parallel = run_passive_study(*net, parallel_config);

  // -- Decisions: identical, field by field, in extraction order.
  EXPECT_EQ(dump_decisions(serial), dump_decisions(parallel));

  // -- Corpus: identical path sets in every epoch.
  EXPECT_EQ(dump_corpus(serial.corpus), dump_corpus(parallel.corpus));

  // -- Inferred relationships: the aggregate and every monthly snapshot
  // serialize to identical CAIDA serial-1 text (round-trip format).
  EXPECT_EQ(to_caida_format(serial.inferred), to_caida_format(parallel.inferred));
  ASSERT_EQ(serial.snapshots.size(), parallel.snapshots.size());
  for (std::size_t i = 0; i < serial.snapshots.size(); ++i)
    EXPECT_EQ(to_caida_format(serial.snapshots[i]),
              to_caida_format(parallel.snapshots[i]))
        << "snapshot " << i;

  // Round-trip sanity: the text parses back to the same number of links.
  EXPECT_EQ(from_caida_format(to_caida_format(parallel.inferred)).num_links(),
            parallel.inferred.num_links());

  // -- Classification: a serial classifier vs one whose cache was warmed
  // by a 4-thread precompute, decision by decision, scenario by scenario.
  const DecisionClassifier serial_cls = make_classifier(serial);
  const DecisionClassifier parallel_cls = make_classifier(parallel);
  parallel_cls.precompute(parallel.decisions, 4);
  EXPECT_EQ(dump_classification(serial, serial_cls),
            dump_classification(parallel, parallel_cls));

  // -- Report tables: byte-identical CSV for the classifier-driven reports.
  EXPECT_EQ(figure1_csv(compute_figure1(serial, serial_cls)),
            figure1_csv(compute_figure1(parallel, parallel_cls)));
  EXPECT_EQ(figure2_csv(compute_skew(serial, *net, serial_cls)),
            figure2_csv(compute_skew(parallel, *net, parallel_cls)));
  EXPECT_EQ(table1_csv(compute_table1(serial, *net)),
            table1_csv(compute_table1(parallel, *net)));
}

TEST(ParallelDeterminism, HardwareThreadCountAlsoMatchesSerial) {
  // threads = 0 (one per core) through the same harness, on a reduced
  // config to keep the suite fast: corpus and inference must still match.
  auto config = test::small_generator_config(11);
  config.stubs_per_country = 2;
  const auto net = generate_internet(config);

  PassiveStudyConfig serial_config = test::small_passive_config();
  serial_config.probes.sample_per_continent = 10;
  serial_config.parallel.threads = 1;
  PassiveStudyConfig hw_config = serial_config;
  hw_config.parallel.threads = 0;

  const PassiveDataset serial = run_passive_study(*net, serial_config);
  const PassiveDataset hw = run_passive_study(*net, hw_config);
  EXPECT_EQ(dump_corpus(serial.corpus), dump_corpus(hw.corpus));
  EXPECT_EQ(dump_decisions(serial), dump_decisions(hw));
  EXPECT_EQ(to_caida_format(serial.inferred), to_caida_format(hw.inferred));
}

}  // namespace
}  // namespace irp
