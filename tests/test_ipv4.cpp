// Tests for IPv4 addresses, prefixes, the LPM trie, and the address plan.
#include <gtest/gtest.h>

#include "net/address_plan.hpp"
#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "util/rng.hpp"

namespace irp {
namespace {

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("192.0.2.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  for (const char* bad : {"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d",
                          "1..2.3", "1.2.3.-4", "01x.2.3.4"})
    EXPECT_FALSE(Ipv4Addr::parse(bad).has_value()) << bad;
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Addr(10, 0, 0, 1), *Ipv4Addr::parse("10.0.0.1"));
}

/// Round-trip property sweep over representative addresses.
class Ipv4RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4RoundTrip, ParseFormatRoundTrips) {
  const auto a = Ipv4Addr::parse(GetParam());
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Ipv4RoundTrip,
                         ::testing::Values("0.0.0.0", "255.255.255.255",
                                           "10.1.2.3", "172.16.254.1",
                                           "1.0.0.0", "127.0.0.1"));

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix p{Ipv4Addr(10, 1, 2, 3), 16};
  EXPECT_EQ(p.network(), Ipv4Addr(10, 1, 0, 0));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, ParseAndValidate) {
  const auto p = Ipv4Prefix::parse("192.0.2.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 24);
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("192.0.2.0/-1").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("bogus/8").has_value());
}

TEST(Ipv4Prefix, ContainsAddressesAndPrefixes) {
  const Ipv4Prefix p{Ipv4Addr(10, 0, 0, 0), 8};
  EXPECT_TRUE(p.contains(Ipv4Addr(10, 200, 1, 1)));
  EXPECT_FALSE(p.contains(Ipv4Addr(11, 0, 0, 0)));
  EXPECT_TRUE(p.contains(Ipv4Prefix{Ipv4Addr(10, 3, 0, 0), 16}));
  EXPECT_FALSE(p.contains(Ipv4Prefix{Ipv4Addr(0, 0, 0, 0), 0}));
}

TEST(Ipv4Prefix, SizeNetmaskAddressAt) {
  const Ipv4Prefix p{Ipv4Addr(192, 0, 2, 0), 24};
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.netmask(), Ipv4Addr(255, 255, 255, 0));
  EXPECT_EQ(p.address_at(0), Ipv4Addr(192, 0, 2, 0));
  EXPECT_EQ(p.address_at(255), Ipv4Addr(192, 0, 2, 255));
  EXPECT_THROW(p.address_at(256), CheckError);
}

TEST(Ipv4Prefix, SplitHalves) {
  const Ipv4Prefix p{Ipv4Addr(10, 0, 0, 0), 8};
  const auto [lo, hi] = p.split();
  EXPECT_EQ(lo.to_string(), "10.0.0.0/9");
  EXPECT_EQ(hi.to_string(), "10.128.0.0/9");
  EXPECT_TRUE(p.contains(lo) && p.contains(hi));
  EXPECT_THROW((Ipv4Prefix{Ipv4Addr(1, 2, 3, 4), 32}.split()), CheckError);
}

TEST(PrefixTrie, LongestPrefixMatchWins) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("10.1.0.0/16"), 2);
  trie.insert(*Ipv4Prefix::parse("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(*Ipv4Addr::parse("10.1.2.3")), 3);
  EXPECT_EQ(trie.lookup(*Ipv4Addr::parse("10.1.9.9")), 2);
  EXPECT_EQ(trie.lookup(*Ipv4Addr::parse("10.9.9.9")), 1);
  EXPECT_EQ(trie.lookup(*Ipv4Addr::parse("11.0.0.1")), std::nullopt);
}

TEST(PrefixTrie, ExactAndDefaultRoute) {
  PrefixTrie<int> trie;
  trie.insert(Ipv4Prefix{Ipv4Addr{}, 0}, 99);  // Default route.
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_EQ(trie.lookup(*Ipv4Addr::parse("8.8.8.8")), 99);
  EXPECT_EQ(trie.exact(*Ipv4Prefix::parse("10.0.0.0/8")), 1);
  EXPECT_EQ(trie.exact(*Ipv4Prefix::parse("10.0.0.0/9")), std::nullopt);
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.insert(*Ipv4Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Ipv4Prefix::parse("192.168.0.0/16"), 2);
  int visits = 0;
  trie.for_each([&](const Ipv4Prefix& p, int v) {
    ++visits;
    EXPECT_EQ(trie.exact(p), v);
  });
  EXPECT_EQ(visits, 2);
}

/// Property: against a brute-force linear scan, the trie agrees on random
/// data.
TEST(PrefixTrie, MatchesBruteForceOnRandomData) {
  Rng rng{77};
  std::vector<std::pair<Ipv4Prefix, int>> entries;
  PrefixTrie<int> trie;
  for (int i = 0; i < 200; ++i) {
    const int len = rng.uniform_int(4, 28);
    const Ipv4Prefix p{Ipv4Addr{static_cast<std::uint32_t>(rng.next())}, len};
    if (trie.exact(p).has_value()) continue;
    trie.insert(p, i);
    entries.emplace_back(p, i);
  }
  for (int q = 0; q < 2000; ++q) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng.next())};
    std::optional<int> expect;
    int best_len = -1;
    for (const auto& [p, v] : entries)
      if (p.contains(addr) && p.length() > best_len) {
        best_len = p.length();
        expect = v;
      }
    EXPECT_EQ(trie.lookup(addr), expect);
  }
}

TEST(AddressPlan, AllocationsAreDisjointAndCovered) {
  AddressPlan plan{*Ipv4Prefix::parse("10.0.0.0/8")};
  Rng rng{5};
  std::vector<Ipv4Prefix> allocated;
  for (int i = 0; i < 300; ++i)
    allocated.push_back(plan.allocate(rng.uniform_int(20, 26)));
  for (std::size_t i = 0; i < allocated.size(); ++i) {
    EXPECT_TRUE(plan.pool().contains(allocated[i]));
    for (std::size_t j = i + 1; j < allocated.size(); ++j) {
      EXPECT_FALSE(allocated[i].contains(allocated[j]))
          << allocated[i].to_string() << " overlaps "
          << allocated[j].to_string();
      EXPECT_FALSE(allocated[j].contains(allocated[i]));
    }
  }
}

TEST(AddressPlan, ExhaustionThrows) {
  AddressPlan plan{*Ipv4Prefix::parse("10.0.0.0/24")};
  plan.allocate(25);
  plan.allocate(25);
  EXPECT_THROW(plan.allocate(25), CheckError);
}

TEST(AddressPlan, RejectsOutOfRangeLength) {
  AddressPlan plan{*Ipv4Prefix::parse("10.0.0.0/16")};
  EXPECT_THROW(plan.allocate(8), CheckError);  // Bigger than the pool.
}

}  // namespace
}  // namespace irp
