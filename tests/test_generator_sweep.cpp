// Parameterized sweep: generator invariants must hold across the
// configuration space, not just at the calibrated default.
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topo/generator.hpp"
#include "topo/stats.hpp"

namespace irp {
namespace {

struct SweepCase {
  const char* name;
  GeneratorConfig config;
};

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  {
    SweepCase c{"tiny_world", test::small_generator_config(7)};
    c.config.world.countries_per_continent = 2;
    c.config.stubs_per_country = 2;
    cases.push_back(c);
  }
  {
    SweepCase c{"no_cables_no_siblings", test::small_generator_config(8)};
    c.config.cable_count = 0;
    c.config.sibling_org_prob = 0.0;
    c.config.content_sibling_prob = 0.0;
    cases.push_back(c);
  }
  {
    SweepCase c{"heavy_policy_noise", test::small_generator_config(9)};
    c.config.te_override_prob = 0.3;
    c.config.flat_local_pref_prob = 0.3;
    c.config.domestic_pref_prob = 0.9;
    c.config.partial_transit_prob = 0.2;
    cases.push_back(c);
  }
  {
    SweepCase c{"many_snapshots_much_churn", test::small_generator_config(10)};
    c.config.num_snapshots = 8;
    c.config.link_death_prob = 0.15;
    c.config.link_birth_prob = 0.15;
    cases.push_back(c);
  }
  {
    SweepCase c{"single_snapshot", test::small_generator_config(11)};
    c.config.num_snapshots = 1;
    cases.push_back(c);
  }
  {
    SweepCase c{"big_core_small_edge", test::small_generator_config(12)};
    c.config.tier1_count = 10;
    c.config.large_isps_per_continent = 6;
    c.config.stubs_per_country = 2;
    cases.push_back(c);
  }
  return cases;
}

class GeneratorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GeneratorSweep, CoreInvariantsHold) {
  const auto net = generate_internet(GetParam().config);
  const int epoch = net->measurement_epoch;

  // Tier-1s never buy transit; stubs always have one alive provider.
  for (Asn t : net->tier1s)
    for (LinkId lid : net->topology.links_of(t))
      EXPECT_NE(net->topology.relationship_from(net->topology.link(lid), t),
                Relationship::kProvider);
  for (Asn stub : net->stubs) {
    bool provider = false;
    for (LinkId lid : net->topology.links_of(stub)) {
      const Link& l = net->topology.link(lid);
      if (net->topology.link_alive(l, epoch) &&
          net->topology.relationship_from(l, stub) == Relationship::kProvider)
        provider = true;
    }
    EXPECT_TRUE(provider) << GetParam().name << " stub " << stub;
  }

  // Whois covers everyone; the testbed is wired to every mux.
  net->topology.for_each_as(
      [&](const AsNode& n) { EXPECT_TRUE(net->whois.has(n.asn)); });
  EXPECT_EQ(net->testbed_mux_links.size(), net->testbed_muxes.size());
  EXPECT_FALSE(net->collector_peers.empty());
  EXPECT_FALSE(net->content.services().empty());

  // Structure is sane.
  const TopologyStats stats = compute_topology_stats(net->topology, epoch);
  EXPECT_GT(stats.links, stats.ases / 2);
  EXPECT_GT(stats.stub_share, 0.2);
}

TEST_P(GeneratorSweep, PassiveStudyRunsAndClassifies) {
  const auto net = generate_internet(GetParam().config);
  PassiveStudyConfig passive = test::small_passive_config();
  passive.probes.platform_probes_per_continent = 30;
  passive.probes.sample_per_continent = 15;
  passive.hostnames_per_probe = 4;
  const PassiveDataset ds = run_passive_study(*net, passive);
  EXPECT_GT(ds.traceroutes.size(), 50u);
  EXPECT_GT(ds.decisions.size(), 100u);
  EXPECT_EQ(ds.snapshots.size(),
            std::size_t(net->measurement_epoch + 1));
  EXPECT_GT(ds.inferred.num_links(), 30u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, GeneratorSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace irp
