// OracleService determinism and backpressure tests.
//
// Determinism: the same query stream must render byte-identically whether it
// is served by the deterministic manual-drain mode (worker_threads == 0) or
// by 2 or 4 concurrent workers — responses are pure functions of the index,
// so interleaving and cache state must never leak into an answer. Run under
// IRP_SANITIZE=thread this doubles as the data-race check for the whole
// serve layer.
//
// Backpressure: a full queue rejects immediately (exact counts in the
// deterministic mode), and every accepted request is answered — including
// the burst case with live workers and during shutdown.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/oracle_service.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

struct OracleFixture {
  std::unique_ptr<GeneratedInternet> net;
  PassiveDataset passive;
  OracleSnapshot snapshot;
  std::unique_ptr<OracleIndex> index;
  std::vector<OracleRequest> queries;
};

const OracleFixture& fixture() {
  static const OracleFixture fx = [] {
    OracleFixture f;
    f.net = generate_internet(test::small_generator_config());
    f.passive = run_passive_study(*f.net, test::small_passive_config());
    f.snapshot = snapshot_study(f.passive);
    f.index = std::make_unique<OracleIndex>(&f.snapshot);

    // A mixed stream touching all four query classes, derived
    // deterministically from the study itself.
    const auto& decisions = f.passive.decisions;
    const auto scenarios = figure1_scenarios();
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      const RouteDecision& d = decisions[i];
      ClassifyRequest classify;
      classify.decision = d;
      classify.scenario = scenarios[i % scenarios.size()].options;
      f.queries.emplace_back(classify);
      if (i % 3 == 0)
        f.queries.emplace_back(AlternateRoutesRequest{d.decider, d.dst_prefix});
      if (i % 5 == 0)
        f.queries.emplace_back(
            PspVisibilityRequest{d.dest_asn, d.next_hop, d.dst_prefix});
      if (i % 7 == 0)
        f.queries.emplace_back(RelationshipLookupRequest{d.decider, d.next_hop});
    }
    return f;
  }();
  return fx;
}

/// Serves the whole stream on `workers` threads and renders every response
/// (in submission order) into one string.
std::string run_stream(int workers) {
  const OracleFixture& f = fixture();
  OracleService::Config config;
  config.worker_threads = workers;
  config.queue_capacity = f.queries.size() + 1;
  OracleService service(f.index.get(), config);

  std::vector<OracleService::Submitted> submitted;
  submitted.reserve(f.queries.size());
  for (const OracleRequest& request : f.queries)
    submitted.push_back(service.submit(request));
  if (workers == 0) service.drain();

  std::string rendered;
  for (OracleService::Submitted& s : submitted) {
    EXPECT_TRUE(s.accepted);
    rendered += to_text(s.response.get());
    rendered += '\n';
  }

  const OracleStatsView stats = service.stats();
  EXPECT_EQ(stats.served, f.queries.size());
  EXPECT_EQ(stats.rejected, 0u);
  return rendered;
}

TEST(OracleDeterminism, ConcurrentAnswersAreByteIdenticalToSerial) {
  ASSERT_GT(fixture().queries.size(), 100u);
  const std::string serial = run_stream(0);
  EXPECT_EQ(run_stream(2), serial);
  EXPECT_EQ(run_stream(4), serial);
  // And a repeat with warm caches must not change a byte either.
  EXPECT_EQ(run_stream(2), serial);
}

TEST(OracleDeterminism, AnswerBypassMatchesWorkerPath) {
  const OracleFixture& f = fixture();
  OracleService::Config config;
  config.worker_threads = 1;
  config.queue_capacity = f.queries.size();
  OracleService service(f.index.get(), config);
  for (std::size_t i = 0; i < 50 && i < f.queries.size(); ++i) {
    OracleService::Submitted s = service.submit(f.queries[i]);
    ASSERT_TRUE(s.accepted);
    EXPECT_EQ(to_text(s.response.get()), to_text(service.answer(f.queries[i])));
  }
}

TEST(OracleBackpressure, DeterministicModeRejectsExactOverflow) {
  const OracleFixture& f = fixture();
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kSubmitted = 13;
  OracleService::Config config;
  config.worker_threads = 0;  // Nothing drains until we say so.
  config.queue_capacity = kCapacity;
  OracleService service(f.index.get(), config);

  std::vector<OracleService::Submitted> submitted;
  for (std::size_t i = 0; i < kSubmitted; ++i)
    submitted.push_back(service.submit(f.queries[i % f.queries.size()]));

  std::size_t accepted = 0;
  for (std::size_t i = 0; i < submitted.size(); ++i) {
    if (submitted[i].accepted) ++accepted;
    // Admission is strictly FIFO: the first kCapacity are in, the rest out.
    EXPECT_EQ(submitted[i].accepted, i < kCapacity) << "submission " << i;
  }
  EXPECT_EQ(accepted, kCapacity);

  OracleStatsView stats = service.stats();
  EXPECT_EQ(stats.rejected, kSubmitted - kCapacity);
  EXPECT_EQ(stats.served, 0u);  // Nothing ran yet.
  EXPECT_EQ(stats.peak_queue_depth, kCapacity);

  // Draining serves exactly the accepted requests, in order.
  EXPECT_EQ(service.drain(), kCapacity);
  for (auto& s : submitted)
    if (s.accepted) EXPECT_TRUE(s.response.valid());
  stats = service.stats();
  EXPECT_EQ(stats.served, kCapacity);

  // Capacity freed: submission works again.
  EXPECT_TRUE(service.submit(f.queries[0]).accepted);
}

TEST(OracleBackpressure, BurstAgainstWorkersShedsButNeverStalls) {
  const OracleFixture& f = fixture();
  OracleService::Config config;
  config.worker_threads = 2;
  config.queue_capacity = 16;
  OracleService service(f.index.get(), config);

  std::vector<std::future<OracleResponse>> accepted;
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    OracleService::Submitted s = service.submit(f.queries[i % f.queries.size()]);
    if (s.accepted)
      accepted.push_back(std::move(s.response));
    else
      ++rejected;
  }
  // Every accepted request completes; none is dropped or stuck.
  for (auto& future : accepted) (void)future.get();

  const OracleStatsView stats = service.stats();
  EXPECT_EQ(stats.served, accepted.size());
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_LE(stats.peak_queue_depth, config.queue_capacity);
}

TEST(OracleBackpressure, ShutdownServesAcceptedWorkThenRejects) {
  const OracleFixture& f = fixture();
  OracleService::Config config;
  config.worker_threads = 2;
  config.queue_capacity = 64;
  auto service = std::make_unique<OracleService>(f.index.get(), config);

  std::vector<std::future<OracleResponse>> accepted;
  for (std::size_t i = 0; i < 64; ++i) {
    OracleService::Submitted s =
        service->submit(f.queries[i % f.queries.size()]);
    if (s.accepted) accepted.push_back(std::move(s.response));
  }
  service->shutdown();
  // Accepted-implies-answered holds across shutdown.
  for (auto& future : accepted) (void)future.get();
  // After shutdown, everything is shed.
  EXPECT_FALSE(service->submit(f.queries[0]).accepted);
  service.reset();  // Destructor after explicit shutdown is a no-op.
}

TEST(OracleStats, HistogramAndCountersTrackServing) {
  const OracleFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{0, 4096});
  constexpr std::size_t kN = 200;
  std::vector<OracleService::Submitted> submitted;
  for (std::size_t i = 0; i < kN; ++i)
    submitted.push_back(service.submit(f.queries[i % f.queries.size()]));
  service.drain();

  const OracleStatsView stats = service.stats();
  EXPECT_EQ(stats.served, kN);
  std::uint64_t per_type_sum = 0;
  for (int t = 0; t < kNumQueryTypes; ++t) {
    per_type_sum += stats.per_type[t].served;
    if (stats.per_type[t].served > 0) {
      EXPECT_GT(stats.per_type[t].p50_us, 0.0);
      EXPECT_GE(stats.per_type[t].p99_us, stats.per_type[t].p50_us);
    }
  }
  EXPECT_EQ(per_type_sum, kN);
  // The classify cache saw traffic and reports coherent counters.
  const ClassifyCache::Stats cache = stats.cache;
  EXPECT_GT(cache.hits + cache.misses, 0u);
  EXPECT_LE(cache.entries, cache.capacity);
}

}  // namespace
}  // namespace irp
