// report_io tests: RFC-4180 escaping round-trips through a real CSV parser,
// and write_all_reports creates missing directories / fails loudly on
// unwritable targets.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/report_io.hpp"
#include "util/check.hpp"
#include "util/file.hpp"

namespace irp {
namespace {

namespace fs = std::filesystem;

/// Minimal RFC-4180 parser: rows of fields, quotes unescaped. Good enough to
/// prove our writer's escaping is reversible.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field += c;
    }
  }
  if (!field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(ReportCsv, EscapingRoundTripsThroughParser) {
  Table1Report report;
  const std::vector<std::string> nasty = {
      "plain",
      "comma, inside",
      "quote \" inside",
      "both, \"of\" them",
      "newline\ninside",
      "\"leading quote",
      "trailing comma,",
  };
  for (const std::string& name : nasty) {
    Table1Report::Row row;
    row.as_type = name;
    row.probes = 1;
    report.rows.push_back(row);
  }
  report.total_probes = nasty.size();

  const auto rows = parse_csv(table1_csv(report));
  // Header + one row per type + total row.
  ASSERT_EQ(rows.size(), nasty.size() + 2);
  for (std::size_t i = 0; i < nasty.size(); ++i) {
    ASSERT_EQ(rows[i + 1].size(), 4u) << "row " << i;
    EXPECT_EQ(rows[i + 1][0], nasty[i]) << "field did not round-trip";
    EXPECT_EQ(rows[i + 1][1], "1");
  }
  EXPECT_EQ(rows.back()[0], "Total");
}

TEST(ReportCsv, ScenarioNamesRoundTripInFigure1) {
  Figure1Report report;
  CategoryBreakdown breakdown;
  breakdown.add(DecisionCategory::kBestShort);
  report.scenarios.emplace_back("Simple, with \"quotes\"", breakdown);

  const auto rows = parse_csv(figure1_csv(report));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "Simple, with \"quotes\"");
}

TEST(ReportIo, CreatesMissingOutputDirectory) {
  const fs::path dir = fs::temp_directory_path() / "irp_report_io_test" /
                       "nested" / "deeper";
  fs::remove_all(dir.parent_path().parent_path());

  StudyResults results;  // Empty reports are fine; only I/O is under test.
  const int files = write_all_reports(results, dir.string());
  EXPECT_EQ(files, 9);
  EXPECT_TRUE(fs::exists(dir / "table1.csv"));
  EXPECT_TRUE(fs::exists(dir / "psp_validation.csv"));

  std::size_t csv_count = 0;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".csv") ++csv_count;
  EXPECT_EQ(csv_count, 9u);

  fs::remove_all(dir.parent_path().parent_path());
}

TEST(ReportIo, UnwritablePathFailsWithClearError) {
  // A directory component that is actually a regular file: creation must
  // fail with a CheckError naming the path, not silently write nothing.
  const fs::path file = fs::temp_directory_path() / "irp_report_io_blocker";
  write_file(file.string(), "not a directory");
  const std::string target = (file / "sub").string();

  StudyResults results;
  try {
    write_all_reports(results, target);
    FAIL() << "expected CheckError for unwritable path";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(target), std::string::npos)
        << "error should name the failing path: " << e.what();
  }
  fs::remove(file);
}

}  // namespace
}  // namespace irp
