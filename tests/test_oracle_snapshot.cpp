// Oracle snapshot tests: freeze a real passive study, prove the binary
// image round-trips byte-exactly, answers identically to a live-study
// oracle across the full scenario ladder, and rejects corrupted or
// truncated images with a checksum/version error instead of undefined
// behavior.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/classify.hpp"
#include "serve/oracle_service.hpp"
#include "test_support.hpp"
#include "util/check.hpp"

namespace irp {
namespace {

struct StudyFixture {
  std::unique_ptr<GeneratedInternet> net;
  PassiveDataset passive;
  OracleSnapshot snapshot;
  std::string bytes;
};

const StudyFixture& study() {
  static const StudyFixture fx = [] {
    StudyFixture f;
    f.net = generate_internet(test::small_generator_config());
    f.passive = run_passive_study(*f.net, test::small_passive_config());
    f.snapshot = snapshot_study(f.passive);
    f.bytes = f.snapshot.to_bytes();
    return f;
  }();
  return fx;
}

TEST(OracleSnapshot, CapturesTheStudy) {
  const StudyFixture& f = study();
  EXPECT_EQ(f.snapshot.num_ases, f.net->topology.num_ases());
  EXPECT_EQ(f.snapshot.relationships.size(), f.passive.inferred.num_links());
  EXPECT_GT(f.snapshot.routes.size(), 0u);
  EXPECT_GT(f.snapshot.num_route_entries(), 0u);
  EXPECT_GT(f.snapshot.paths.num_paths(), 1u);
}

TEST(OracleSnapshot, BinaryRoundTripIsByteExact) {
  const StudyFixture& f = study();
  const OracleSnapshot loaded = OracleSnapshot::from_bytes(f.bytes);
  // Re-serializing the loaded snapshot must reproduce the image bit for
  // bit — this covers every field of every section at once.
  EXPECT_EQ(loaded.to_bytes(), f.bytes);
}

TEST(OracleSnapshot, FileRoundTrip) {
  const StudyFixture& f = study();
  const std::string path =
      (std::filesystem::temp_directory_path() / "irp_oracle_snapshot.bin")
          .string();
  f.snapshot.save(path);
  const OracleSnapshot loaded = OracleSnapshot::load(path);
  EXPECT_EQ(loaded.to_bytes(), f.bytes);
  std::filesystem::remove(path);
}

TEST(OracleSnapshot, ClassifiesIdenticallyToLiveStudy) {
  const StudyFixture& f = study();
  const OracleSnapshot loaded = OracleSnapshot::from_bytes(f.bytes);
  const OracleIndex index(&loaded);
  OracleService service(&index, OracleService::Config{0, 1});

  const PassiveDataset& ds = f.passive;
  const DecisionClassifier live(&ds.inferred, f.net->topology.num_ases(),
                                &ds.hybrid, &ds.siblings, &ds.observations);
  std::size_t checked = 0;
  for (const NamedScenario& scenario : figure1_scenarios()) {
    for (const RouteDecision& d : ds.decisions) {
      const DecisionCategory expected = live.classify(d, scenario.options);
      ClassifyRequest req;
      req.decision = d;
      req.scenario = scenario.options;
      const OracleResponse resp = service.answer(OracleRequest{req});
      ASSERT_EQ(std::get<ClassifyResponse>(resp).category, expected)
          << scenario.name << " decision " << checked;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  // The second pass through identical keys must have produced cache hits
  // without changing a single answer (asserted above).
  EXPECT_GT(index.cache_stats().hits, 0u);
}

TEST(OracleSnapshot, RoutesMatchTheLiveEngine) {
  const StudyFixture& f = study();
  const OracleSnapshot loaded = OracleSnapshot::from_bytes(f.bytes);
  const OracleIndex index(&loaded);
  const BgpEngine& engine = *f.passive.engine;

  std::size_t route_entries = 0;
  for (const Ipv4Prefix& prefix : engine.prefixes()) {
    for (Asn asn = 1; asn <= static_cast<Asn>(f.net->topology.num_ases());
         ++asn) {
      const BgpEngine::Selected* live = engine.best(asn, prefix);
      const OracleSnapshot::RouteEntry* frozen = index.route(asn, prefix);
      ASSERT_EQ(live != nullptr, frozen != nullptr)
          << "AS " << asn << " " << prefix.to_string();
      if (live == nullptr) continue;
      ++route_entries;
      EXPECT_EQ(index.paths().materialize(frozen->selected),
                engine.paths().materialize(live->path_id));
      EXPECT_EQ(frozen->next_hop, live->next_hop);
      EXPECT_EQ(frozen->self_originated, live->self_originated);
      // Alternates: everything in the RIB except the selected route, with
      // paths preserved value-exactly through the re-interned table.
      const std::vector<Route> rib = engine.routes_at(asn, prefix);
      std::size_t expected_alternates = 0;
      for (const Route& route : rib)
        if (route.via_link != live->via_link) ++expected_alternates;
      ASSERT_EQ(frozen->alternates.size(), expected_alternates);
      std::size_t alt = 0;
      for (const Route& route : rib) {
        if (route.via_link == live->via_link) continue;
        EXPECT_EQ(index.paths().materialize(frozen->alternates[alt].path),
                  route.path);
        EXPECT_EQ(frozen->alternates[alt].from_asn, route.from_asn);
        ++alt;
      }
    }
  }
  EXPECT_EQ(route_entries, loaded.num_route_entries());
}

TEST(OracleSnapshot, RejectsBadMagic) {
  std::string bytes = study().bytes;
  bytes[0] ^= 0x5A;
  try {
    (void)OracleSnapshot::from_bytes(bytes);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST(OracleSnapshot, RejectsUnsupportedVersion) {
  std::string bytes = study().bytes;
  bytes[4] = 0x7F;  // Version field, little-endian low byte.
  try {
    (void)OracleSnapshot::from_bytes(bytes);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(OracleSnapshot, RejectsTruncatedImages) {
  const std::string& bytes = study().bytes;
  // Shorter than the header.
  EXPECT_THROW((void)OracleSnapshot::from_bytes(bytes.substr(0, 10)),
               CheckError);
  // Header intact, payload cut off.
  EXPECT_THROW((void)OracleSnapshot::from_bytes(bytes.substr(0, 64)),
               CheckError);
  EXPECT_THROW(
      (void)OracleSnapshot::from_bytes(bytes.substr(0, bytes.size() - 1)),
      CheckError);
  // Trailing garbage (size mismatch) is also rejected.
  EXPECT_THROW((void)OracleSnapshot::from_bytes(bytes + "x"), CheckError);
}

TEST(OracleSnapshot, RejectsCorruptedPayloadViaChecksum) {
  for (const std::size_t victim :
       {std::size_t{24}, study().bytes.size() / 2, study().bytes.size() - 2}) {
    std::string bytes = study().bytes;
    bytes[victim] ^= 0x01;
    try {
      (void)OracleSnapshot::from_bytes(bytes);
      FAIL() << "expected CheckError for flip at " << victim;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
          << e.what();
    }
  }
}

TEST(OracleSnapshot, LoadOfMissingFileFails) {
  EXPECT_THROW((void)OracleSnapshot::load("/nonexistent/irp-oracle.bin"),
               CheckError);
}

}  // namespace
}  // namespace irp
