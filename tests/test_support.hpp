// Shared helpers for the test suite: small, fast configurations and
// hand-built topologies.
#pragma once

#include "bgp/engine.hpp"
#include "bgp/policy.hpp"
#include "core/passive_study.hpp"
#include "topo/generator.hpp"

namespace irp::test {

/// A small, fast generator configuration for integration tests.
inline GeneratorConfig small_generator_config(std::uint64_t seed = 42) {
  GeneratorConfig config;
  config.seed = seed;
  config.world.countries_per_continent = 3;
  config.world.cities_per_country = 2;
  config.world.country_overrides = {{Continent::kNorthAmerica, 2}};
  config.tier1_count = 6;
  config.large_isps_per_continent = 3;
  config.education_per_continent = 1;
  config.small_isps_per_country = 1;
  config.stubs_per_country = 4;
  config.content_orgs = 5;
  config.cable_count = 3;
  config.hybrid_pair_count = 3;
  return config;
}

/// A small passive-study configuration to match.
inline PassiveStudyConfig small_passive_config() {
  PassiveStudyConfig config;
  config.probes.platform_probes_per_continent = 60;
  config.probes.sample_per_continent = 30;
  config.hostnames_per_probe = 6;
  return config;
}

/// Builder for tiny hand-made topologies used by BGP/GR unit tests.
///
/// ASNs are assigned in the order of add() calls, starting at 1. Every AS
/// gets one PoP in city 0 and one /24 prefix derived from its ASN, so
/// engines and traceroutes work without a full generator run.
class TinyTopo {
 public:
  /// Adds `n` ASes; returns the first new ASN.
  Asn add(int n = 1) {
    Asn first = 0;
    for (int i = 0; i < n; ++i) {
      AsNode node;
      node.type = AsType::kStub;
      node.org = static_cast<OrgId>(topo.num_ases() + 1);
      node.home_country = 0;
      PointOfPresence pop;
      pop.city = 0;
      pop.router_prefix =
          Ipv4Prefix{Ipv4Addr{10, 0, std::uint8_t(topo.num_ases() + 1), 0}, 24};
      node.pops.push_back(pop);
      OriginatedPrefix op;
      op.prefix = Ipv4Prefix{
          Ipv4Addr{172, 16, std::uint8_t(topo.num_ases() + 1), 0}, 24};
      node.prefixes.push_back(op);
      const Asn asn = topo.add_as(std::move(node));
      if (first == 0) first = asn;
    }
    return first;
  }

  /// Adds a link; `rel` is the role of `b` from `a`'s perspective.
  LinkId link(Asn a, Asn b, Relationship rel, int igp_a = 1, int igp_b = 1) {
    Link l;
    l.a = a;
    l.b = b;
    l.rel_of_b_from_a = rel;
    l.igp_cost_a = igp_a;
    l.igp_cost_b = igp_b;
    return topo.add_link(l);
  }

  /// The announced prefix of an AS.
  Ipv4Prefix prefix_of(Asn asn) const {
    return topo.as_node(asn).prefixes.front().prefix;
  }

  Topology topo;
};

}  // namespace irp::test
