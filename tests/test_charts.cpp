// Tests for the text-mode chart renderers.
#include <gtest/gtest.h>

#include "util/ascii_chart.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace irp {
namespace {

TEST(StackedBars, RendersSharesProportionally) {
  std::vector<StackedBar> bars{{"half", {0.5, 0.5}}, {"all", {1.0}}};
  const std::string out = render_stacked_bars(bars, {'#', '.'}, 10);
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("#####....."), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("##########"), std::string::npos) << lines[1];
}

TEST(StackedBars, AlignsLabels) {
  std::vector<StackedBar> bars{{"a", {0.1}}, {"longer", {0.1}}};
  const std::string out = render_stacked_bars(bars, {'#'}, 10);
  const auto lines = split(out, '\n');
  // Both bars start at the same column.
  EXPECT_EQ(lines[0].find('|'), lines[1].find('|'));
}

TEST(StackedBars, ClampsOverfullBars) {
  std::vector<StackedBar> bars{{"x", {0.9, 0.9}}};  // Sums over 1.
  const std::string out = render_stacked_bars(bars, {'#', '.'}, 10);
  // Never wider than the frame.
  const auto lines = split(out, '\n');
  EXPECT_LE(lines[0].size(), std::size_t(1 + 2 + 1 + 10 + 1));
}

TEST(StackedBars, RejectsBadArguments) {
  EXPECT_THROW(render_stacked_bars({}, {}, 10), CheckError);
  EXPECT_THROW(render_stacked_bars({}, {'#'}, 0), CheckError);
}

TEST(Curves, PlotsEndpointsAndLegend) {
  CurveSeries s;
  s.label = "cdf";
  s.points = {{1, 0.0}, {50, 0.5}, {100, 1.0}};
  const std::string out = render_curves({s}, {'*'}, 40, 10);
  EXPECT_NE(out.find("* = cdf"), std::string::npos);
  EXPECT_NE(out.find("x: 0..100"), std::string::npos);
  // Top row (y=1.0) contains a point; legend glyph drawn somewhere.
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 12u);
  EXPECT_NE(lines[1].find('*'), std::string::npos);  // y=1.0 row.
}

TEST(Curves, MultipleSeriesDistinctGlyphs) {
  CurveSeries a{"a", {{1, 0.2}}};
  CurveSeries b{"b", {{1, 0.8}}};
  const std::string out = render_curves({a, b}, {'*', 'o'}, 30, 8);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("o = b"), std::string::npos);
}

TEST(Curves, ClampsOutOfRangeY) {
  CurveSeries s{"s", {{1, 1.5}, {2, -0.5}}};
  // Must not throw or write out of bounds.
  const std::string out = render_curves({s}, {'*'}, 20, 6);
  EXPECT_FALSE(out.empty());
}

}  // namespace
}  // namespace irp
