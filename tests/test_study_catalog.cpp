// StudyCatalog tests: N snapshots behind one endpoint must be
// indistinguishable from N single-study oracles.
//
// The headline guarantee is byte identity for N=3: every query answered by
// the catalog-backed service — locally and over the wire with the
// version-2 study flag — renders to exactly the text a dedicated
// single-study service produces for the same snapshot. On top of that:
// pre-multi-study (version 1) clients keep working against the default
// study; unknown study ids reject with the typed error at every layer
// (answer/submit/wire); the shared classify-cache budget is enforced and
// rebalances toward hot studies; the shared path arena deduplicates
// identical studies; and the whole stack is exercised under concurrent
// multi-study load (the TSan target for this subsystem).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/oracle_client.hpp"
#include "serve/oracle_server.hpp"
#include "serve/oracle_service.hpp"
#include "serve/study_catalog.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

constexpr std::uint64_t kSeeds[3] = {42, 43, 44};
constexpr const char* kNames[3] = {"epoch-a", "epoch-b", "epoch-c"};

struct StudyFixture {
  std::unique_ptr<GeneratedInternet> net;
  PassiveDataset passive;
  OracleSnapshot snapshot;  ///< Baseline copy with its own path table.
  std::unique_ptr<OracleIndex> index;
  std::vector<OracleRequest> queries;
};

StudyFixture make_fixture(std::uint64_t seed) {
  StudyFixture f;
  f.net = generate_internet(test::small_generator_config(seed));
  f.passive = run_passive_study(*f.net, test::small_passive_config());
  f.snapshot = snapshot_study(f.passive);
  f.index = std::make_unique<OracleIndex>(&f.snapshot);

  const auto& decisions = f.passive.decisions;
  const auto scenarios = figure1_scenarios();
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const RouteDecision& d = decisions[i];
    ClassifyRequest classify;
    classify.decision = d;
    classify.scenario = scenarios[i % scenarios.size()].options;
    f.queries.emplace_back(classify);
    if (i % 3 == 0)
      f.queries.emplace_back(AlternateRoutesRequest{d.decider, d.dst_prefix});
    if (i % 5 == 0)
      f.queries.emplace_back(
          PspVisibilityRequest{d.dest_asn, d.next_hop, d.dst_prefix});
    if (i % 7 == 0)
      f.queries.emplace_back(RelationshipLookupRequest{d.decider, d.next_hop});
  }
  // Cap the stream so the three-fixture tests stay fast; coverage across
  // query types is preserved by the interleaving above.
  if (f.queries.size() > 400) f.queries.resize(400);
  return f;
}

/// Three studies from three seeds, built once per binary.
const std::array<StudyFixture, 3>& fixtures() {
  static const std::array<StudyFixture, 3> fx = {
      make_fixture(kSeeds[0]), make_fixture(kSeeds[1]),
      make_fixture(kSeeds[2])};
  return fx;
}

/// Fresh catalog over the three fixtures (fresh snapshot copies, since
/// add_study remaps route PathIds into the shared arena).
std::unique_ptr<StudyCatalog> make_catalog(StudyCatalogConfig config = {}) {
  auto catalog = std::make_unique<StudyCatalog>(config);
  for (int s = 0; s < 3; ++s)
    catalog->add_study(kNames[s], snapshot_study(fixtures()[s].passive));
  return catalog;
}

// -- Raw-socket helpers for the version-1 compatibility test.

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

void send_bytes(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<WireFrame> read_one_frame(int fd, int timeout_ms = 5000) {
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (auto frame = try_decode_frame(buffer)) return frame;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return std::nullopt;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) continue;
    char buf[4096];
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return std::nullopt;
    buffer.append(buf, static_cast<std::size_t>(n));
  }
}

// -- Catalog structure and lookup.

TEST(StudyCatalog, IdentityAndLookup) {
  auto catalog = make_catalog();
  ASSERT_EQ(catalog->size(), 3u);

  for (int s = 0; s < 3; ++s) {
    const StudyCatalog::Study* study = catalog->find(kNames[s]);
    ASSERT_NE(study, nullptr);
    EXPECT_EQ(study->name, kNames[s]);
    EXPECT_EQ(study->ordinal, static_cast<std::uint32_t>(s));
    // id = "<name>@<16 hex digits of the image checksum>".
    ASSERT_EQ(study->id.size(), study->name.size() + 1 + 16);
    EXPECT_EQ(study->id.substr(0, study->name.size() + 1),
              study->name + "@");
    EXPECT_GT(study->image_bytes, 0u);
    // The full id resolves to the same study.
    EXPECT_EQ(catalog->find(study->id), study);
  }
  // "" is the default (first-loaded) study.
  EXPECT_EQ(catalog->find(""), catalog->default_study());
  EXPECT_EQ(catalog->default_study()->name, kNames[0]);
  EXPECT_EQ(catalog->find("no-such-study"), nullptr);
  // A stale full id (right name, wrong checksum) does not resolve.
  EXPECT_EQ(catalog->find(std::string(kNames[0]) + "@0000000000000000"),
            nullptr);
}

TEST(StudyCatalog, RejectsBadAndDuplicateNames) {
  StudyCatalog catalog;
  catalog.add_study("epoch-a", snapshot_study(fixtures()[0].passive));
  EXPECT_THROW(
      catalog.add_study("epoch-a", snapshot_study(fixtures()[1].passive)),
      CheckError);
  EXPECT_THROW(catalog.add_study("", snapshot_study(fixtures()[1].passive)),
               CheckError);
  EXPECT_THROW(
      catalog.add_study("a=b", snapshot_study(fixtures()[1].passive)),
      CheckError);
  EXPECT_THROW(
      catalog.add_study("a@b", snapshot_study(fixtures()[1].passive)),
      CheckError);
  EXPECT_EQ(catalog.size(), 1u);
}

// -- Byte identity: the catalog answers exactly like N dedicated oracles.

TEST(StudyCatalog, ThreeStudyServiceMatchesSingleStudyServicesLocally) {
  auto catalog = make_catalog();
  OracleService multi(catalog.get(), OracleService::Config{0, 4096});

  for (int s = 0; s < 3; ++s) {
    const StudyFixture& f = fixtures()[s];
    OracleService single(f.index.get(), OracleService::Config{0, 1});
    for (const OracleRequest& request : f.queries)
      EXPECT_EQ(to_text(multi.answer(request, kNames[s])),
                to_text(single.answer(request)))
          << "study " << kNames[s];
  }

  // Per-study accounting: the queued path (answer() is a synchronous
  // bypass and deliberately does not count as "served") routes each
  // submission to the right study slot.
  std::vector<std::future<OracleResponse>> responses;
  std::array<std::size_t, 3> submitted{};
  for (int s = 0; s < 3; ++s) {
    const StudyFixture& f = fixtures()[s];
    for (std::size_t i = 0; i < f.queries.size(); i += 10) {
      OracleService::Submitted sub = multi.submit(f.queries[i], kNames[s]);
      ASSERT_TRUE(sub.accepted);
      responses.push_back(std::move(sub.response));
      ++submitted[s];
    }
  }
  const std::size_t total = submitted[0] + submitted[1] + submitted[2];
  EXPECT_EQ(multi.drain(), total);
  for (auto& response : responses) (void)response.get();

  const OracleStatsView stats = multi.stats();
  EXPECT_EQ(stats.served, total);
  ASSERT_EQ(stats.per_study.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(stats.per_study[s].name, kNames[s]);
    EXPECT_EQ(stats.per_study[s].served, submitted[s]);
  }
}

TEST(StudyCatalog, ThreeStudyServerMatchesSingleStudyServersOverWire) {
  auto catalog = make_catalog();
  OracleService multi_service(catalog.get(), OracleService::Config{2, 1024});
  OracleServer multi_server(&multi_service);
  multi_server.start();

  for (int s = 0; s < 3; ++s) {
    const StudyFixture& f = fixtures()[s];
    // The single-study ground truth, served by its own process-local stack.
    OracleService single(f.index.get(), OracleService::Config{2, 1024});
    OracleServer single_server(&single);
    single_server.start();

    OracleClient::Config to_multi;
    to_multi.port = multi_server.port();
    to_multi.study = kNames[s];  // Version-2 frames with the study flag.
    OracleClient multi_client(to_multi);

    OracleClient::Config to_single;
    to_single.port = single_server.port();
    OracleClient single_client(to_single);

    for (const OracleRequest& request : f.queries)
      EXPECT_EQ(to_text(multi_client.call(request)),
                to_text(single_client.call(request)))
          << "study " << kNames[s];

    single_server.shutdown();
    single.shutdown();
  }

  EXPECT_EQ(multi_server.stats().requests_unknown_study, 0u);
  multi_server.shutdown();
  multi_service.shutdown();
}

TEST(StudyCatalog, Version1ClientGetsTheDefaultStudy) {
  auto catalog = make_catalog();
  OracleService service(catalog.get(), OracleService::Config{2, 1024});
  OracleServer server(&service);
  server.start();

  // encode_request without a study emits exactly the version-1 bytes
  // (pinned by test_wire's golden test), so this raw socket IS a pre-bump
  // client. It must be answered from the default study.
  const StudyFixture& def = fixtures()[0];
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  std::uint64_t id = 1;
  for (std::size_t i = 0; i < def.queries.size(); i += 17) {
    send_bytes(fd, encode_request(id, def.queries[i]));
    const auto frame = read_one_frame(fd);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->request_id, id);
    const auto reply = decode_reply(*frame);
    ASSERT_TRUE(std::holds_alternative<OracleResponse>(reply));
    EXPECT_EQ(to_text(std::get<OracleResponse>(reply)),
              to_text(service.answer(def.queries[i])));
    ++id;
  }
  ::close(fd);

  server.shutdown();
  service.shutdown();
}

// -- Unknown studies reject with the typed error at every layer.

TEST(StudyCatalog, UnknownStudyRejectsAtEveryLayer) {
  auto catalog = make_catalog();
  OracleService service(catalog.get(), OracleService::Config{1, 64});
  const OracleRequest request{RelationshipLookupRequest{1, 2}};

  // answer(): the typed exception carries the offending id.
  try {
    (void)service.answer(request, "nope");
    FAIL() << "answer against an unknown study succeeded";
  } catch (const UnknownStudyError& e) {
    EXPECT_EQ(e.study(), "nope");
  }

  // submit(): a typed rejection, not an overload.
  OracleService::Submitted sub = service.submit(request, "nope");
  EXPECT_FALSE(sub.accepted);
  EXPECT_EQ(sub.reject, OracleService::Reject::kUnknownStudy);
  EXPECT_EQ(service.stats().unknown_study, 2u);

  // Known studies are untouched by the failures above.
  EXPECT_TRUE(service.submit(request, kNames[1]).accepted);

  // Wire: the client surfaces kUnknownStudy without retrying.
  OracleServer server(&service);
  server.start();
  OracleClient::Config cc;
  cc.port = server.port();
  cc.study = "nope";
  OracleClient client(cc);
  try {
    (void)client.call(request);
    FAIL() << "call against an unknown study succeeded";
  } catch (const OracleServerError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kUnknownStudy);
  }
  EXPECT_EQ(server.stats().requests_unknown_study, 1u);

  server.shutdown();
  service.shutdown();
}

// -- Shared classify-cache budget.

TEST(StudyCatalog, CacheBudgetIsSharedAndEnforced) {
  StudyCatalogConfig config;
  config.total_cache_capacity = 240;
  config.min_study_cache_quota = 32;
  auto catalog = make_catalog(config);

  // On load every study gets an even split of the budget.
  StudyCatalog::CacheBudgetView budget = catalog->cache_budget();
  EXPECT_EQ(budget.total_capacity, 240u);
  ASSERT_EQ(budget.per_study.size(), 3u);
  std::size_t total_quota = 0;
  for (const auto& per : budget.per_study) {
    EXPECT_EQ(per.quota, 80u);
    total_quota += per.quota;
  }
  EXPECT_LE(total_quota, config.total_cache_capacity);

  // Make epoch-a hot: run its classify stream twice so it accrues hits,
  // while the others stay cold.
  OracleService service(catalog.get(), OracleService::Config{0, 1});
  for (int round = 0; round < 2; ++round)
    for (const OracleRequest& request : fixtures()[0].queries)
      if (std::holds_alternative<ClassifyRequest>(request))
        (void)service.answer(request, kNames[0]);

  // Enforcement: no study's cache exceeds its quota even though the hot
  // stream has far more distinct keys than the quota.
  budget = catalog->cache_budget();
  for (const auto& per : budget.per_study)
    EXPECT_LE(per.stats.entries, per.stats.capacity) << per.name;
  EXPECT_GT(budget.per_study[0].stats.hits, 0u);

  // Rebalancing moves budget toward the hot study, keeps every study at or
  // above the floor, and never exceeds the total.
  catalog->rebalance_cache();
  budget = catalog->cache_budget();
  total_quota = 0;
  for (const auto& per : budget.per_study) {
    EXPECT_GE(per.quota, config.min_study_cache_quota) << per.name;
    total_quota += per.quota;
  }
  EXPECT_LE(total_quota, config.total_cache_capacity);
  EXPECT_GT(budget.per_study[0].quota, budget.per_study[1].quota);
  EXPECT_GT(budget.per_study[0].quota, budget.per_study[2].quota);

  // The service's aggregate view reports the shared budget as capacity.
  const OracleStatsView stats = service.stats();
  EXPECT_EQ(stats.cache.capacity, config.total_cache_capacity);
}

// -- Shared path arena.

TEST(StudyCatalog, ArenaDeduplicatesIdenticalStudies) {
  // Two studies frozen from the same passive dataset: every path suffix of
  // the second already lives in the arena, so sharing is ~100%.
  StudyCatalog catalog;
  catalog.add_study("epoch-a", snapshot_study(fixtures()[0].passive));
  catalog.add_study("epoch-a2", snapshot_study(fixtures()[0].passive));

  const StudyCatalog::ArenaStats arena = catalog.arena_stats();
  EXPECT_EQ(arena.sum_study_paths, 2 * catalog.studies()[0]->own_paths);
  EXPECT_EQ(arena.arena_paths, catalog.studies()[0]->own_paths);
  EXPECT_NEAR(arena.sharing(), 0.5, 1e-9);

  // Identical content, distinct names: both studies answer identically.
  OracleService service(&catalog, OracleService::Config{0, 1});
  const StudyFixture& f = fixtures()[0];
  for (std::size_t i = 0; i < f.queries.size(); i += 13)
    EXPECT_EQ(to_text(service.answer(f.queries[i], "epoch-a")),
              to_text(service.answer(f.queries[i], "epoch-a2")));

  // Distinct studies still share suffixes, just fewer of them.
  auto three = make_catalog();
  const StudyCatalog::ArenaStats mixed = three->arena_stats();
  EXPECT_LT(mixed.arena_paths, mixed.sum_study_paths);
  EXPECT_GT(mixed.sharing(), 0.0);
}

// -- Concurrency: the TSan target for the multi-study stack. Four clients
// hammer different studies through one server while the cache budget is
// rebalanced live.

TEST(StudyCatalog, ConcurrentMultiStudyLoadStaysByteIdentical) {
  auto catalog = make_catalog();
  OracleService::Config sc;
  sc.worker_threads = 4;
  sc.queue_capacity = 1024;
  sc.cache_rebalance_every = 64;  // Exercise live rebalancing under load.
  OracleService service(catalog.get(), sc);
  OracleServer server(&service);
  server.start();
  const std::uint16_t port = server.port();

  // Ground truth first, so worker threads only compare strings.
  std::array<std::vector<std::string>, 3> expected;
  for (int s = 0; s < 3; ++s)
    for (const OracleRequest& request : fixtures()[s].queries)
      expected[s].push_back(to_text(service.answer(request, kNames[s])));

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      // Each client walks all three studies, offset by its own stride.
      OracleClient::Config cc;
      cc.port = port;
      for (int s = 0; s < 3; ++s) {
        cc.study = kNames[s];
        OracleClient client(cc);
        const auto& queries = fixtures()[s].queries;
        for (std::size_t i = t; i < queries.size(); i += kClients)
          if (to_text(client.call(queries[i])) != expected[s][i])
            ++mismatches[t];
      }
    });
  }
  // A fifth thread rebalances and snapshots stats concurrently.
  std::atomic<bool> done{false};
  std::thread rebalancer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      catalog->rebalance_cache();
      (void)service.stats();
      (void)catalog->cache_budget();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& thread : threads) thread.join();
  done.store(true);
  rebalancer.join();

  for (int t = 0; t < kClients; ++t)
    EXPECT_EQ(mismatches[t], 0) << "client " << t;
  EXPECT_EQ(server.stats().requests_unknown_study, 0u);

  server.shutdown();
  service.shutdown();
}

}  // namespace
}  // namespace irp
