// PathTable unit tests: hash-consing semantics (same path <=> same id),
// prepend/contains/length, poison-set identity, and a randomized stress run
// that cross-checks the table against materialized AsPath values.
#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "bgp/path_table.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace irp {
namespace {

TEST(PathTable, EmptyPath) {
  PathTable table;
  EXPECT_EQ(table.num_hops(kEmptyPathId), 0u);
  EXPECT_EQ(table.length(kEmptyPathId), 0u);
  EXPECT_EQ(table.front(kEmptyPathId), 0u);
  EXPECT_FALSE(table.contains(kEmptyPathId, 1));
  EXPECT_TRUE(table.poison_set(kEmptyPathId).empty());
  const AsPath empty = table.materialize(kEmptyPathId);
  EXPECT_TRUE(empty.hops.empty());
  EXPECT_TRUE(empty.poison_set.empty());
  // The empty root is pre-interned.
  EXPECT_EQ(table.root({}), kEmptyPathId);
}

TEST(PathTable, PrependBuildsFrontToBack) {
  PathTable table;
  // Announce at 30, then 20 prepends, then 10: front must be most recent.
  PathId p = table.prepend(kEmptyPathId, 30);
  p = table.prepend(p, 20);
  p = table.prepend(p, 10);
  EXPECT_EQ(table.num_hops(p), 3u);
  EXPECT_EQ(table.front(p), 10u);
  const AsPath path = table.materialize(p);
  EXPECT_EQ(path.hops, (std::vector<Asn>{10, 20, 30}));
  EXPECT_EQ(path.to_string(), "10 20 30");
}

TEST(PathTable, InterningIsCanonical) {
  PathTable table;
  PathId a = table.prepend(table.prepend(kEmptyPathId, 2), 1);
  PathId b = table.prepend(table.prepend(kEmptyPathId, 2), 1);
  EXPECT_EQ(a, b);  // Equality is id equality.

  AsPath as_value;
  as_value.hops = {1, 2};
  EXPECT_EQ(table.intern(as_value), a);
  // Sharing: [1 2] and [3 2] share the [2] suffix node.
  PathId c = table.prepend(table.prepend(kEmptyPathId, 2), 3);
  EXPECT_NE(c, a);
  EXPECT_EQ(table.materialize(c).hops, (std::vector<Asn>{3, 2}));
}

TEST(PathTable, ContainsWalksHopsAndPoison) {
  PathTable table;
  PathId p = table.prepend(table.prepend(kEmptyPathId, 7), 5);
  EXPECT_TRUE(table.contains(p, 5));
  EXPECT_TRUE(table.contains(p, 7));
  EXPECT_FALSE(table.contains(p, 6));

  PathId poisoned = table.prepend(table.root(std::vector<Asn>{42, 43}), 5);
  EXPECT_TRUE(table.contains(poisoned, 42));
  EXPECT_TRUE(table.contains(poisoned, 43));
  EXPECT_TRUE(table.contains(poisoned, 5));
  EXPECT_FALSE(table.contains(poisoned, 44));
}

TEST(PathTable, PoisonSetIsPartOfIdentityAndLength) {
  PathTable table;
  const PathId plain = table.prepend(kEmptyPathId, 9);
  const PathId poisoned = table.prepend(table.root(std::vector<Asn>{1}), 9);
  EXPECT_NE(plain, poisoned);
  // BGP length counts a non-empty AS-set as one hop.
  EXPECT_EQ(table.length(plain), 1u);
  EXPECT_EQ(table.length(poisoned), 2u);
  EXPECT_EQ(table.num_hops(poisoned), 1u);
  EXPECT_EQ(table.poison_set(poisoned), (std::vector<Asn>{1}));

  // Same poison set twice -> same root, same derived ids.
  EXPECT_EQ(table.root(std::vector<Asn>{1}),
            table.root(std::vector<Asn>{1}));
  EXPECT_EQ(table.prepend(table.root(std::vector<Asn>{1}), 9), poisoned);
  // Different order = different set value (the engine never reorders).
  EXPECT_NE(table.root(std::vector<Asn>{1, 2}),
            table.root(std::vector<Asn>{2, 1}));
}

TEST(PathTable, PrependN) {
  PathTable table;
  PathId p = table.prepend(kEmptyPathId, 4);
  p = table.prepend(p, 8);
  p = table.prepend_n(p, 8, 3);  // Origin-side prepending.
  EXPECT_EQ(table.materialize(p).hops, (std::vector<Asn>{8, 8, 8, 8, 4}));
  EXPECT_EQ(table.prepend_n(p, 8, 0), p);
}

TEST(PathTable, StatsCountHitsAndSharing) {
  PathTable table;
  const auto nodes_before = table.stats().nodes;
  PathId p = table.prepend(kEmptyPathId, 1);
  EXPECT_EQ(table.stats().nodes, nodes_before + 1);
  const auto hits_before = table.stats().hits;
  EXPECT_EQ(table.prepend(kEmptyPathId, 1), p);
  EXPECT_EQ(table.stats().hits, hits_before + 1);
  EXPECT_GT(table.stats().bytes_saved, 0u);
}

TEST(PathTable, RandomizedStressRoundTrips) {
  // Intern a few thousand random paths (with occasional poison sets) and
  // verify (a) materialization round-trips exactly, (b) value-equality and
  // id-equality coincide, (c) contains() agrees with the materialized value.
  // This also hammers the intern map with many (head, tail) keys sharing
  // low bits — the closest thing to a collision stress the 64-bit key
  // admits.
  PathTable table;
  Rng rng{20260805};
  std::map<std::string, PathId> seen;
  for (int i = 0; i < 4000; ++i) {
    AsPath value;
    const std::size_t len = 1 + rng.index(12);
    for (std::size_t h = 0; h < len; ++h)
      value.hops.push_back(Asn(1 + rng.index(50)));
    if (rng.chance(0.2))
      for (std::size_t s = 0; s < 1 + rng.index(3); ++s)
        value.poison_set.push_back(Asn(1 + rng.index(50)));

    const PathId id = table.intern(value);
    const AsPath back = table.materialize(id);
    ASSERT_EQ(back, value) << back.to_string();
    ASSERT_EQ(table.num_hops(id), value.hops.size());
    ASSERT_EQ(table.length(id), value.length());

    const std::string key = value.to_string();
    auto [it, inserted] = seen.emplace(key, id);
    ASSERT_EQ(it->second, id) << "same value must intern to the same id";

    for (Asn probe = 1; probe <= 50; ++probe)
      ASSERT_EQ(table.contains(id, probe), value.contains(probe))
          << key << " probe " << probe;
  }
  // Sharing must have happened: far fewer nodes than total hops interned.
  EXPECT_GT(table.stats().hits, 0u);
  EXPECT_LT(table.stats().nodes, 4000u * 6);
}

TEST(PathTable, FlatRoundTripPreservesIdsAndValues) {
  // Build a table with plain paths, poison roots, and shared suffixes, dump
  // it via flat_node()/poison_set_at(), rebuild with from_flat(), and check
  // every id materializes identically — the oracle snapshot contract.
  PathTable table;
  std::vector<std::pair<PathId, AsPath>> interned;
  auto keep = [&](const AsPath& value) {
    interned.emplace_back(table.intern(value), value);
  };
  keep(AsPath{{10, 20, 30}, {}});
  keep(AsPath{{40, 20, 30}, {}});          // Shares the [20 30] suffix.
  keep(AsPath{{10}, {99}});                // Poisoned root + hop.
  keep(AsPath{{50, 10}, {99}});
  keep(AsPath{{50, 10}, {99, 98}});        // Distinct poison set.
  keep(AsPath{{}, {7}});                   // Bare poison root.

  std::vector<PathTable::FlatNode> nodes;
  for (PathId id = 0; id < table.num_paths(); ++id)
    nodes.push_back(table.flat_node(id));
  std::vector<std::vector<Asn>> poison_sets;
  for (std::size_t i = 0; i < table.num_poison_sets(); ++i)
    poison_sets.push_back(table.poison_set_at(i));

  const PathTable rebuilt = PathTable::from_flat(nodes, std::move(poison_sets));
  ASSERT_EQ(rebuilt.num_paths(), table.num_paths());
  for (const auto& [id, value] : interned) {
    EXPECT_EQ(rebuilt.materialize(id), value) << value.to_string();
    EXPECT_EQ(rebuilt.num_hops(id), value.hops.size());
    EXPECT_EQ(rebuilt.length(id), value.length());
  }
}

TEST(PathTable, RebuiltTableKeepsInterning) {
  // After from_flat, interning an existing path must return its old id (the
  // rebuilt intern map is live, not just a dead archive).
  PathTable table;
  const AsPath value{{1, 2, 3}, {}};
  const PathId id = table.intern(value);

  std::vector<PathTable::FlatNode> nodes;
  for (PathId i = 0; i < table.num_paths(); ++i)
    nodes.push_back(table.flat_node(i));
  std::vector<std::vector<Asn>> poison_sets;
  for (std::size_t i = 0; i < table.num_poison_sets(); ++i)
    poison_sets.push_back(table.poison_set_at(i));

  PathTable rebuilt = PathTable::from_flat(nodes, std::move(poison_sets));
  EXPECT_EQ(rebuilt.intern(value), id);
  // New paths keep working on top of the rebuilt state.
  const PathId extended = rebuilt.prepend(id, 9);
  EXPECT_EQ(rebuilt.materialize(extended).hops, (std::vector<Asn>{9, 1, 2, 3}));
}

TEST(PathTable, FromFlatRejectsMalformedImages) {
  const auto flat = [](Asn head, PathId tail, std::uint32_t hops,
                       std::uint32_t poison) {
    PathTable::FlatNode n;
    n.head = head;
    n.tail = tail;
    n.num_hops = hops;
    n.poison = poison;
    return n;
  };
  // No nodes at all.
  EXPECT_THROW(
      PathTable::from_flat(std::span<const PathTable::FlatNode>{}, {{}}),
      CheckError);
  // Node 0 not the empty root.
  {
    std::vector<PathTable::FlatNode> nodes = {flat(5, 0, 1, 0)};
    EXPECT_THROW(PathTable::from_flat(nodes, {{}}), CheckError);
  }
  // Hop node whose tail points forward.
  {
    std::vector<PathTable::FlatNode> nodes = {flat(0, 0, 0, 0),
                                              flat(5, 2, 1, 0)};
    EXPECT_THROW(PathTable::from_flat(nodes, {{}}), CheckError);
  }
  // Inconsistent hop count.
  {
    std::vector<PathTable::FlatNode> nodes = {flat(0, 0, 0, 0),
                                              flat(5, 0, 3, 0)};
    EXPECT_THROW(PathTable::from_flat(nodes, {{}}), CheckError);
  }
  // Poison id out of range.
  {
    std::vector<PathTable::FlatNode> nodes = {flat(0, 0, 0, 0),
                                              flat(5, 0, 1, 4)};
    EXPECT_THROW(PathTable::from_flat(nodes, {{}}), CheckError);
  }
  // Duplicate node (same head, same tail) — intern map collision.
  {
    std::vector<PathTable::FlatNode> nodes = {
        flat(0, 0, 0, 0), flat(5, 0, 1, 0), flat(5, 0, 1, 0)};
    EXPECT_THROW(PathTable::from_flat(nodes, {{}}), CheckError);
  }
  // Missing empty poison set at pool slot 0.
  {
    std::vector<PathTable::FlatNode> nodes = {flat(0, 0, 0, 0)};
    EXPECT_THROW(PathTable::from_flat(nodes, {{1, 2}}), CheckError);
  }
}

}  // namespace
}  // namespace irp
