// Tests for topology statistics and the generated Internet's shape.
#include <gtest/gtest.h>

#include "test_support.hpp"
#include "topo/generator.hpp"
#include "topo/stats.hpp"

namespace irp {
namespace {

TEST(TopoStats, HandBuiltChain) {
  test::TinyTopo t;
  const Asn top = t.add();
  const Asn mid = t.add();
  const Asn leaf = t.add();
  t.link(top, mid, Relationship::kCustomer);
  t.link(mid, leaf, Relationship::kCustomer);
  const TopologyStats s = compute_topology_stats(t.topo, 0);
  EXPECT_EQ(s.ases, 3u);
  EXPECT_EQ(s.links, 2u);
  EXPECT_EQ(s.c2p_links, 2u);
  EXPECT_EQ(s.p2p_links, 0u);
  EXPECT_NEAR(s.avg_degree, 4.0 / 3.0, 1e-9);
  EXPECT_EQ(s.max_degree, 2u);
  // Only the leaf is a stub.
  EXPECT_NEAR(s.stub_share, 1.0 / 3.0, 1e-9);
  ASSERT_FALSE(s.top_cones.empty());
  EXPECT_EQ(s.top_cones[0], 3u);  // top's cone covers everyone.
  EXPECT_NEAR(s.avg_hierarchy_depth, 2.0, 1e-9);  // leaf -> mid -> top.
}

TEST(TopoStats, EpochFiltersLinks) {
  test::TinyTopo t;
  const Asn a = t.add();
  const Asn b = t.add();
  const LinkId l = t.link(a, b, Relationship::kPeer);
  t.topo.link_mutable(l).died_epoch = 1;
  EXPECT_EQ(compute_topology_stats(t.topo, 0).links, 1u);
  EXPECT_EQ(compute_topology_stats(t.topo, 1).links, 0u);
}

TEST(TopoStats, GeneratedInternetHasInternetShape) {
  const auto net = generate_internet(test::small_generator_config());
  const TopologyStats s =
      compute_topology_stats(net->topology, net->measurement_epoch);

  // Most ASes are stubs.
  EXPECT_GT(s.stub_share, 0.4);
  // A heavy tail exists: the maximum degree is far above the average.
  EXPECT_GT(double(s.max_degree), 4.0 * s.avg_degree);
  // The biggest customer cones belong to the core and cover a large part
  // of the topology.
  ASSERT_GE(s.top_cones.size(), 3u);
  EXPECT_GT(s.top_cones[0], net->topology.num_ases() / 4);
  // Peering is a substantial share of links (edge IXP meshes, clique).
  EXPECT_GT(s.p2p_links, s.links / 10);
  // Transit hierarchy is shallow, as on the Internet.
  EXPECT_GT(s.avg_hierarchy_depth, 1.0);
  EXPECT_LT(s.avg_hierarchy_depth, 6.0);
}

TEST(TopoStats, DegreeHistogramSumsToAses) {
  const auto net = generate_internet(test::small_generator_config());
  const TopologyStats s =
      compute_topology_stats(net->topology, net->measurement_epoch);
  std::size_t total = 0;
  for (const auto& [deg, count] : s.degree_histogram) total += count;
  EXPECT_EQ(total, s.ases);
}

}  // namespace
}  // namespace irp
