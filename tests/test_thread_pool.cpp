// Tests for the worker pool and the deterministic parallel loop helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace irp {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(5), 5);
  // 0 (and any non-positive request) resolves to the hardware, >= 1.
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-3), 1);
}

TEST(ThreadPool, ConstructionAndTeardown) {
  // Pools of several sizes come up and wind down cleanly, including an
  // idle pool that never ran a loop and repeated construction.
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool{threads};
    EXPECT_EQ(pool.thread_count(), threads);
  }
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool{4};
    pool.parallel_for(0, 16, [](std::size_t) {});
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    ASSERT_LT(i, kN);
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;

  // Non-zero first index and an empty range.
  std::atomic<int> covered{0};
  pool.parallel_for(100, 200, [&](std::size_t i) {
    EXPECT_GE(i, 100u);
    EXPECT_LT(i, 200u);
    covered.fetch_add(1);
  });
  EXPECT_EQ(covered.load(), 100);
  pool.parallel_for(7, 7, [&](std::size_t) { FAIL() << "empty range ran"; });
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [](std::size_t i) {
                          if (i == 137) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool survives a failed loop and runs subsequent ones normally.
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  // Every outer iteration starts a full inner loop on the same pool; with
  // caller participation this completes even though the pool is saturated.
  ThreadPool pool{4};
  std::atomic<int> total{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, SingleThreadDegeneratesToInlineExecution) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.parallel_for(0, 100, [&](std::size_t) {
    // Inline execution: no synchronization needed to mutate `seen`.
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPool, ParallelMapPreservesInputOrder) {
  ThreadPool pool{4};
  const std::vector<std::size_t> out =
      pool.parallel_map(std::size_t{257}, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);

  // Vector overload, with a non-trivially-copyable result type.
  const std::vector<std::string> words{"alpha", "beta", "gamma", "delta"};
  const auto sizes =
      pool.parallel_map(words, [](const std::string& w) { return w + "!"; });
  ASSERT_EQ(sizes.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i)
    EXPECT_EQ(sizes[i], words[i] + "!");
}

TEST(ThreadPool, ManyMoreTasksThanThreadsAndViceVersa) {
  ThreadPool big{8};
  std::atomic<int> count{0};
  big.parallel_for(0, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);

  ThreadPool two{2};
  count = 0;
  two.parallel_for(0, 5000, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 5000);
}

}  // namespace
}  // namespace irp
