// Unit test of the active experiments on a hand-crafted miniature Internet
// with known preference orderings.
#include <gtest/gtest.h>

#include "core/active_study.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

/// Builds: testbed(1) with muxes m1(2), m2(3); target X(5) with three
/// disjoint routes toward the testbed — via its customer c(6), its peer
/// p(7), and its provider v(8) — plus a vantage probe AS(9) below X.
class ActiveUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = std::make_unique<GeneratedInternet>();
    WorldConfig wc;
    wc.countries_per_continent = 1;
    wc.cities_per_country = 1;
    wc.country_overrides.clear();
    Rng world_rng{1};
    net_->world = World::generate(wc, world_rng);
    net_->geo = std::make_unique<GeoDatabase>(&net_->world, 0.0, Rng{2});

    tb_ = t_.add();         // 1
    m1_ = t_.add();         // 2
    m2_ = t_.add();         // 3
    t_.add();               // 4 (unused spacer)
    x_ = t_.add();          // 5
    c_ = t_.add();          // 6
    p_ = t_.add();          // 7
    v_ = t_.add();          // 8
    probe_ = t_.add();      // 9

    // Testbed buys from both muxes.
    mux_link1_ = t_.link(tb_, m1_, Relationship::kProvider);
    mux_link2_ = t_.link(tb_, m2_, Relationship::kProvider);
    // Route via X's customer c: c is a provider of m1.
    t_.link(m1_, c_, Relationship::kProvider);
    t_.link(x_, c_, Relationship::kCustomer);
    // Route via X's peer p: p is a provider of m2.
    t_.link(m2_, p_, Relationship::kProvider);
    t_.link(x_, p_, Relationship::kPeer);
    // Route via X's provider v: v is another provider of m1.
    t_.link(m1_, v_, Relationship::kProvider);
    t_.link(x_, v_, Relationship::kProvider);
    // The vantage probe buys from X.
    t_.link(x_, probe_, Relationship::kCustomer);

    net_->topology = std::move(t_.topo);
    net_->testbed_asn = tb_;
    net_->testbed_muxes = {m1_, m2_};
    net_->testbed_mux_links = {mux_link1_, mux_link2_};
    net_->testbed_prefixes = {*Ipv4Prefix::parse("198.51.100.0/24")};
    net_->collector_peers = {c_};
    net_->measurement_epoch = 0;

    // The analyst's relationship DB matches ground truth exactly.
    inferred_.set(x_, c_, InferredRel::kAProviderOfB);  // x provides c.
    inferred_.set(x_, p_, InferredRel::kPeer);
    inferred_.set(v_, x_, InferredRel::kAProviderOfB);  // v provides x.
    inferred_.set(c_, m1_, InferredRel::kAProviderOfB);
    inferred_.set(v_, m1_, InferredRel::kAProviderOfB);
    inferred_.set(p_, m2_, InferredRel::kAProviderOfB);
    inferred_.set(m1_, tb_, InferredRel::kAProviderOfB);
    inferred_.set(m2_, tb_, InferredRel::kAProviderOfB);
    inferred_.set(x_, probe_, InferredRel::kAProviderOfB);

    policy_ = std::make_unique<GroundTruthPolicy>(&net_->topology);
  }

  test::TinyTopo t_;
  std::unique_ptr<GeneratedInternet> net_;
  InferredTopology inferred_;
  std::unique_ptr<GroundTruthPolicy> policy_;
  Asn tb_{}, m1_{}, m2_{}, x_{}, c_{}, p_{}, v_{}, probe_{};
  LinkId mux_link1_{}, mux_link2_{};
};

TEST_F(ActiveUnitTest, DiscoversCustomerPeerProviderOrdering) {
  ActiveConfig config;
  config.max_rounds = 6;
  ActiveExperiment active{net_.get(), policy_.get(), &inferred_, {probe_},
                          config};
  const AlternateRouteReport report = active.discover_alternate_routes();

  // Two ASes reveal >= 2 routes: X (sequence c, p, v — customer, peer,
  // provider at equal lengths) and c (direct provider m1, then the longer
  // backup via its other provider X). Both follow Best and Shortest.
  EXPECT_EQ(report.targets, 2u);
  EXPECT_EQ(report.both, 2u);
  EXPECT_EQ(report.best_only, 0u);
  EXPECT_EQ(report.short_only, 0u);
  EXPECT_EQ(report.neither, 0u);
  EXPECT_GT(report.poisoned_announcements, 2u);
  EXPECT_EQ(report.links_not_in_db, 0u);
  EXPECT_GE(report.links_observed, 6u);
}

TEST_F(ActiveUnitTest, OrderingViolationDetectedWhenGroundTruthDeviates) {
  // Make X prefer its provider over everything (traffic engineering).
  for (LinkId lid : net_->topology.as_node(x_).links) {
    Link& l = net_->topology.link_mutable(lid);
    if (net_->topology.other_end(l, x_) == v_) {
      if (l.a == x_)
        l.lp_delta_a = 300;
      else
        l.lp_delta_b = 300;
    }
  }
  ActiveConfig config;
  config.max_rounds = 6;
  ActiveExperiment active{net_.get(), policy_.get(), &inferred_, {probe_},
                          config};
  const AlternateRouteReport report = active.discover_alternate_routes();
  EXPECT_EQ(report.targets, 2u);
  // X's sequence v, c, p violates Best (provider before customer) at equal
  // lengths, landing in Shortest-only; c's backup ordering stays clean.
  EXPECT_EQ(report.short_only, 1u);
  EXPECT_EQ(report.both, 1u);
  EXPECT_EQ(report.neither, 0u);
}

TEST_F(ActiveUnitTest, MagnetExperimentProducesTriggers) {
  ActiveConfig config;
  ActiveExperiment active{net_.get(), policy_.get(), &inferred_, {probe_},
                          config};
  const Table2Report report = active.magnet_experiment();
  // X chooses among three candidate routes after anycast; its decision is
  // relationship-driven (customer beats peer/provider). Observed via the
  // traceroute channel (probe -> X -> ...) and the feeds channel (c).
  EXPECT_GT(report.traceroutes.total(), 0u);
  EXPECT_GT(report.traceroutes.best_relationship, 0u);
  EXPECT_EQ(report.traceroutes.violation, 0u);
}

TEST_F(ActiveUnitTest, PoisonedSequenceExhaustsRoutes) {
  BgpEngine engine{&net_->topology, policy_.get(), 0};
  const Ipv4Prefix pfx = net_->testbed_prefixes[0];
  engine.announce(pfx, tb_);
  engine.run();

  std::vector<Asn> order;
  std::vector<Asn> poison;
  while (const auto* sel = engine.best(x_, pfx)) {
    order.push_back(sel->next_hop);
    poison.push_back(sel->next_hop);
    engine.announce(pfx, tb_, AnnounceOptions{.poison_set = poison});
    engine.run();
    ASSERT_LE(order.size(), 4u);
  }
  EXPECT_EQ(order, (std::vector<Asn>{c_, p_, v_}));
}

}  // namespace
}  // namespace irp
