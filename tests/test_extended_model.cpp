// Tests for the §7 extended-model corrections.
#include <gtest/gtest.h>

#include "core/extended_model.hpp"
#include "test_support.hpp"

namespace irp {
namespace {

TEST(CableCorrection, RelabelsCableIncidentLinks) {
  InferredTopology topo;
  topo.set(10, 1, InferredRel::kAProviderOfB);  // Misinferred: 10 provides 1.
  topo.set(1, 20, InferredRel::kPeer);          // Misinferred peer.
  topo.set(10, 20, InferredRel::kPeer);         // No cable involved.
  CableRegistry cables;
  cables.add({"cable-x", 1});

  const InferredTopology fixed = apply_cable_correction(topo, cables);
  // The cable (AS 1) becomes the provider on its links.
  EXPECT_EQ(fixed.relationship(10, 1), Relationship::kProvider);
  EXPECT_EQ(fixed.relationship(20, 1), Relationship::kProvider);
  // Unrelated links are untouched.
  EXPECT_EQ(fixed.relationship(10, 20), Relationship::kPeer);
  EXPECT_EQ(fixed.num_links(), topo.num_links());
}

TEST(CableCorrection, CableToCableLinksUnchanged) {
  InferredTopology topo;
  topo.set(1, 2, InferredRel::kPeer);
  CableRegistry cables;
  cables.add({"a", 1});
  cables.add({"b", 2});
  const InferredTopology fixed = apply_cable_correction(topo, cables);
  EXPECT_EQ(fixed.relationship(1, 2), Relationship::kPeer);
}

TEST(CableCorrection, IsIdempotent) {
  InferredTopology topo;
  topo.set(10, 1, InferredRel::kAProviderOfB);
  CableRegistry cables;
  cables.add({"cable-x", 1});
  const auto once = apply_cable_correction(topo, cables);
  const auto twice = apply_cable_correction(once, cables);
  EXPECT_EQ(once.links(), twice.links());
}

TEST(ExtendedModel, MonotonicallyImprovesOnSmallStudy) {
  const auto net = generate_internet(test::small_generator_config());
  const auto ds = run_passive_study(*net, test::small_passive_config());
  const ExtendedModelReport r = compute_extended_model(ds, *net);

  const auto bs = [](const CategoryBreakdown& b) {
    return b.share(DecisionCategory::kBestShort);
  };
  EXPECT_GT(bs(r.simple), 0.4);
  EXPECT_GE(bs(r.all_refinements) + 1e-9, bs(r.simple));
  EXPECT_GE(bs(r.extended) + 1e-9, bs(r.all_refinements));
  EXPECT_EQ(r.simple.total(), ds.decisions.size());
  EXPECT_EQ(r.extended.total(), ds.decisions.size());
}

TEST(ExtendedModel, StalePruningNeverAddsLinks) {
  const auto net = generate_internet(test::small_generator_config());
  const auto ds = run_passive_study(*net, test::small_passive_config());
  const auto pruned = prune_stale_links(ds.inferred, net->neighbor_history,
                                        net->measurement_epoch);
  EXPECT_LE(pruned.num_links(), ds.inferred.num_links());
  for (const auto& [pair, rel] : pruned.links())
    EXPECT_TRUE(ds.inferred.has_link(pair.first, pair.second));
}

}  // namespace
}  // namespace irp
