// Equivalence bar for the interned-path engine rewrite: on generated
// topologies, BgpEngine and the frozen pre-refactor BaselineBgpEngine must
// be *byte-identical* observables-for-observables — collector feeds, per-AS
// Selected routes (path, attributes, age), Adj-RIB-In contents, and
// messages_delivered() — across announcements with options (selective
// announcement, prepending), poisoning rounds, withdrawals, and epochs.
//
// Any divergence here means the zero-copy hot path changed engine
// *behaviour*, not just its cost.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bgp/baseline_engine.hpp"
#include "bgp/engine.hpp"
#include "test_support.hpp"
#include "topo/generator.hpp"
#include "util/rng.hpp"

namespace irp {
namespace {

std::string dump_selected_common(const AsPath& path, LinkId via_link,
                                 Asn next_hop, LogicalTime age, int local_pref,
                                 bool self_originated,
                                 const std::optional<Relationship>& cls) {
  std::ostringstream out;
  out << '[' << path.to_string() << "] via=" << via_link << " nh=" << next_hop
      << " age=" << age << " lp=" << local_pref << " self=" << self_originated
      << " class=" << (cls ? std::string(relationship_name(*cls)) : "none");
  return out.str();
}

std::string dump_route(const Route& r) {
  std::ostringstream out;
  out << '[' << r.path.to_string() << "] via=" << r.via_link
      << " from=" << r.from_asn << " at=" << r.received_at << " org="
      << (r.org_class ? std::string(relationship_name(*r.org_class)) : "none");
  return out.str();
}

/// Full observable dump of an engine: works for both engine types because
/// the public accessors are call-compatible.
template <typename Engine>
std::string dump_engine(const Engine& engine, std::span<const Asn> peers) {
  std::ostringstream out;
  out << "messages=" << engine.messages_delivered()
      << " converged=" << engine.converged() << '\n';
  for (const Ipv4Prefix& prefix : engine.prefixes()) {
    out << "prefix " << prefix.to_string() << '\n';
    for (Asn asn = 1; asn <= engine.topology().num_ases(); ++asn) {
      const auto* sel = engine.best(asn, prefix);
      if (sel != nullptr)
        out << "  AS" << asn << " sel "
            << dump_selected_common(sel->path, sel->via_link, sel->next_hop,
                                    sel->age, sel->local_pref,
                                    sel->self_originated, sel->effective_class)
            << '\n';
      for (const Route& r : engine.routes_at(asn, prefix))
        out << "  AS" << asn << " rib " << dump_route(r) << '\n';
    }
  }
  out << "feed:\n";
  for (const FeedEntry& e : engine.feed(peers))
    out << "  " << e.peer << ' ' << e.prefix.to_string() << " ["
        << e.path.to_string() << "]\n";
  return out.str();
}

/// Applies the same scripted scenario to both engines, comparing the full
/// observable state after every convergence.
class EnginePair {
 public:
  EnginePair(const Topology* topo, const GroundTruthPolicy* policy, int epoch,
             std::vector<Asn> peers)
      : engine_(topo, policy, epoch),
        baseline_(topo, policy, epoch),
        peers_(std::move(peers)) {}

  void announce(const Ipv4Prefix& prefix, Asn origin,
                const AnnounceOptions& options = {}) {
    engine_.announce(prefix, origin,
                     AnnounceOptions{options.poison_set, options.only_links,
                                     options.prepend_on});
    baseline_.announce(prefix, origin,
                       AnnounceOptions{options.poison_set, options.only_links,
                                       options.prepend_on});
  }

  void withdraw(const Ipv4Prefix& prefix) {
    engine_.withdraw(prefix);
    baseline_.withdraw(prefix);
  }

  void run_and_compare(const std::string& stage) {
    engine_.run();
    baseline_.run();
    ASSERT_EQ(engine_.messages_delivered(), baseline_.messages_delivered())
        << stage;
    ASSERT_EQ(dump_engine(engine_, peers_), dump_engine(baseline_, peers_))
        << stage;
  }

  BgpEngine& engine() { return engine_; }

 private:
  BgpEngine engine_;
  BaselineBgpEngine baseline_;
  std::vector<Asn> peers_;
};

TEST(EngineEquivalence, CorpusStyleConvergenceOnGeneratedInternet) {
  const auto net = generate_internet(test::small_generator_config());
  GroundTruthPolicy policy{&net->topology};

  // One prefix per AS, announced in batches, at two different epochs — the
  // exact shape of the passive study's corpus build.
  std::vector<std::pair<Ipv4Prefix, Asn>> origins;
  net->topology.for_each_as([&](const AsNode& node) {
    if (!node.prefixes.empty())
      origins.emplace_back(node.prefixes.front().prefix, node.asn);
  });
  ASSERT_GT(origins.size(), 50u);

  for (int epoch : {0, net->measurement_epoch}) {
    EnginePair pair{&net->topology, &policy, epoch, net->collector_peers};
    std::size_t announced = 0;
    for (const auto& [prefix, origin] : origins) {
      pair.announce(prefix, origin);
      if (++announced % 40 == 0)
        pair.run_and_compare("epoch " + std::to_string(epoch) + " batch at " +
                             std::to_string(announced));
    }
    pair.run_and_compare("epoch " + std::to_string(epoch) + " final");
  }
}

TEST(EngineEquivalence, AnnounceOptionsAndMeasurementPrefixes) {
  const auto net = generate_internet(test::small_generator_config());
  GroundTruthPolicy policy{&net->topology};
  EnginePair pair{&net->topology, &policy, net->measurement_epoch,
                  net->collector_peers};

  // Announce every originated prefix with its ground-truth options —
  // exercises selective announcement (only_links) and per-link prepending.
  net->topology.for_each_as([&](const AsNode& node) {
    for (const auto& op : node.prefixes) {
      AnnounceOptions options;
      options.only_links = op.announce_only_on;
      options.prepend_on = op.prepend_on;
      pair.announce(op.prefix, node.asn, options);
    }
  });
  pair.run_and_compare("all prefixes with options");
}

TEST(EngineEquivalence, PoisoningWithdrawalAndReannouncement) {
  const auto net = generate_internet(test::small_generator_config());
  GroundTruthPolicy policy{&net->topology};
  const Ipv4Prefix prefix = net->testbed_prefixes[0];
  const Asn testbed = net->testbed_asn;

  EnginePair pair{&net->topology, &policy, net->measurement_epoch,
                  net->collector_peers};
  pair.announce(prefix, testbed);
  pair.run_and_compare("baseline announcement");

  // Progressive poisoning, the §3.2 alternate-route probe: at every round
  // poison the current next hop of some AS that has a route.
  Rng rng{99};
  std::vector<Asn> poison;
  for (int round = 0; round < 6; ++round) {
    const Asn probe = Asn(1 + rng.index(net->topology.num_ases()));
    const auto* sel = pair.engine().best(probe, prefix);
    if (sel == nullptr || sel->self_originated || sel->next_hop == testbed)
      continue;
    poison.push_back(sel->next_hop);
    AnnounceOptions options;
    options.poison_set = poison;
    pair.announce(prefix, testbed, options);
    pair.run_and_compare("poison round " + std::to_string(round));
  }

  pair.withdraw(prefix);
  pair.run_and_compare("withdraw");
  pair.announce(prefix, testbed);
  pair.run_and_compare("re-announce clean");
}

TEST(EngineEquivalence, CountersAndStatePoolAreConsistent) {
  const auto net = generate_internet(test::small_generator_config());
  GroundTruthPolicy policy{&net->topology};

  // Two engine generations over one pool: the second generation must reuse
  // the first one's per-prefix state and still match the baseline.
  BgpEngine::StatePool state_pool;
  std::vector<std::pair<Ipv4Prefix, Asn>> origins;
  net->topology.for_each_as([&](const AsNode& node) {
    if (!node.prefixes.empty() && node.asn <= 40)
      origins.emplace_back(node.prefixes.front().prefix, node.asn);
  });

  std::string first_dump;
  for (int generation = 0; generation < 2; ++generation) {
    BgpEngine engine{&net->topology, &policy, 0, &state_pool};
    BaselineBgpEngine baseline{&net->topology, &policy, 0};
    for (const auto& [prefix, origin] : origins) {
      engine.announce(prefix, origin);
      baseline.announce(prefix, origin);
    }
    engine.run();
    baseline.run();
    const std::string dump = dump_engine(engine, net->collector_peers);
    ASSERT_EQ(dump, dump_engine(baseline, net->collector_peers))
        << "generation " << generation;
    if (generation == 0) {
      first_dump = dump;
      EXPECT_EQ(engine.counters().states_reused, 0u);
    } else {
      // Pooled state reuse changes nothing observable.
      EXPECT_EQ(dump, first_dump);
      EXPECT_EQ(engine.counters().states_reused, origins.size());
    }

    const EngineCounters c = engine.counters();
    EXPECT_GT(c.paths_interned, 0u);
    EXPECT_GT(c.intern_hits, 0u);
    EXPECT_GT(c.path_bytes_saved, 0u);
    EXPECT_GT(c.selections_run, 0u);
    EXPECT_GE(c.rib_routes_scanned, c.selections_run / 2);
  }
  EXPECT_EQ(state_pool.reuses(), origins.size());
  EXPECT_EQ(state_pool.available(), origins.size());
}

}  // namespace
}  // namespace irp
