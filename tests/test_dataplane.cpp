// Tests for traceroute simulation, IP-to-AS conversion, probes, and DNS.
#include <gtest/gtest.h>

#include <set>

#include "dataplane/as_type.hpp"
#include "dataplane/dns.hpp"
#include "dataplane/ip_to_as.hpp"
#include "dataplane/probes.hpp"
#include "dataplane/traceroute.hpp"
#include "test_support.hpp"
#include "topo/generator.hpp"

namespace irp {
namespace {

TEST(IpToAs, LongestPrefixAndCollapse) {
  IpToAsMap map;
  map.add(*Ipv4Prefix::parse("10.1.0.0/16"), 1);
  map.add(*Ipv4Prefix::parse("10.2.0.0/16"), 2);
  map.add(*Ipv4Prefix::parse("10.2.5.0/24"), 3);

  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.2.5.9")), 3u);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("10.2.9.9")), 2u);
  EXPECT_EQ(map.lookup(*Ipv4Addr::parse("192.0.2.1")), std::nullopt);

  // Consecutive same-AS hops collapse; unmapped hops are skipped.
  const std::vector<Ipv4Addr> hops{
      *Ipv4Addr::parse("10.1.0.1"), *Ipv4Addr::parse("10.1.0.2"),
      *Ipv4Addr::parse("192.0.2.1"),  // Unmapped.
      *Ipv4Addr::parse("10.2.0.1"), *Ipv4Addr::parse("10.2.5.1")};
  EXPECT_EQ(map.as_path_of(hops), (std::vector<Asn>{1, 2, 3}));
}

TEST(IpToAs, FromTopologyCoversInfraAndAnnounced) {
  test::TinyTopo t;
  const Asn a = t.add();
  const auto map = IpToAsMap::from_topology(t.topo);
  EXPECT_EQ(map.lookup(t.topo.as_node(a).pops[0].router_prefix.address_at(1)),
            a);
  EXPECT_EQ(map.lookup(t.prefix_of(a).address_at(1)), a);
}

TEST(Traceroute, WalksToDestinationWithSaneHops) {
  test::TinyTopo t;
  const Asn src = t.add();
  const Asn mid = t.add();
  const Asn dst = t.add();
  t.link(src, mid, Relationship::kProvider);
  t.link(mid, dst, Relationship::kCustomer);
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(dst);
  engine.announce(pfx, dst);
  engine.run();

  TracerouteSim sim{&t.topo, &engine};
  const auto tr = sim.run(src, t.prefix_of(src).address_at(9),
                          pfx.address_at(20), pfx);
  ASSERT_TRUE(tr.has_value());
  EXPECT_TRUE(tr->reached);
  ASSERT_EQ(tr->hops.size(), 3u);  // mid router, dst router, dst host.
  EXPECT_EQ(tr->hops[0].truth_asn, mid);
  EXPECT_EQ(tr->hops[1].truth_asn, dst);
  EXPECT_EQ(tr->hops[2].address, pfx.address_at(20));

  const auto map = IpToAsMap::from_topology(t.topo);
  std::vector<Ipv4Addr> ips{t.prefix_of(src).address_at(9)};
  for (const auto& h : tr->hops) ips.push_back(h.address);
  EXPECT_EQ(map.as_path_of(ips), (std::vector<Asn>{src, mid, dst}));

  EXPECT_EQ(sim.forwarding_path(src, pfx), (std::vector<Asn>{src, mid, dst}));
}

TEST(Traceroute, NoRouteAtSourceReturnsNullopt) {
  test::TinyTopo t;
  const Asn src = t.add();
  const Asn dst = t.add();  // Not connected.
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  const Ipv4Prefix pfx = t.prefix_of(dst);
  engine.announce(pfx, dst);
  engine.run();
  TracerouteSim sim{&t.topo, &engine};
  EXPECT_FALSE(sim.run(src, t.prefix_of(src).address_at(1), pfx.address_at(1),
                       pfx)
                   .has_value());
  EXPECT_TRUE(sim.forwarding_path(src, pfx).empty());
}

TEST(Traceroute, RejectsAddressOutsidePrefix) {
  test::TinyTopo t;
  const Asn a = t.add();
  GroundTruthPolicy policy{&t.topo};
  BgpEngine engine{&t.topo, &policy, 0};
  TracerouteSim sim{&t.topo, &engine};
  EXPECT_THROW(sim.run(a, Ipv4Addr{}, *Ipv4Addr::parse("9.9.9.9"),
                       t.prefix_of(a)),
               CheckError);
}

TEST(AsTypes, ClassifierBuckets) {
  test::TinyTopo t;
  const Asn t1 = t.add();    // No providers, has customers.
  const Asn large = t.add();
  const Asn stub = t.add();
  t.link(t1, large, Relationship::kCustomer);
  t.link(large, stub, Relationship::kCustomer);
  // Give `large` a big cone so it crosses the large threshold.
  for (int i = 0; i < 30; ++i) {
    const Asn extra = t.add();
    t.link(large, extra, Relationship::kCustomer);
  }
  AsTypeClassifier cls{&t.topo, 0, /*large_cone_threshold=*/25};
  EXPECT_EQ(cls.classify(t1), AsCategory::kTier1);
  EXPECT_EQ(cls.classify(large), AsCategory::kLargeIsp);
  EXPECT_EQ(cls.classify(stub), AsCategory::kStub);

  AsTypeClassifier strict{&t.topo, 0, /*large_cone_threshold=*/1000};
  EXPECT_EQ(strict.classify(large), AsCategory::kSmallIsp);
}

class SampledNet : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = generate_internet(test::small_generator_config()).release();
  }
  static void TearDownTestSuite() {
    delete net_;
    net_ = nullptr;
  }
  static const GeneratedInternet* net_;
};
const GeneratedInternet* SampledNet::net_ = nullptr;

TEST_F(SampledNet, SamplerBalancesContinents) {
  ProbeSamplerConfig config;
  config.platform_probes_per_continent = 80;
  config.sample_per_continent = 40;
  ProbeSampler sampler{&net_->topology, &net_->world, config, Rng{9}};
  const auto population = sampler.platform_population();
  const auto sample = sampler.sample(population);

  std::map<Continent, int> per_continent;
  for (const auto& p : sample) ++per_continent[p.continent];
  for (const auto& [c, n] : per_continent) EXPECT_EQ(n, 40) << int(c);

  // Europe over-representation exists in the platform, not the sample.
  std::map<Continent, int> platform;
  for (const auto& p : population) ++platform[p.continent];
  EXPECT_GT(platform[Continent::kEurope], platform[Continent::kAfrica]);
}

TEST_F(SampledNet, SampleSpreadsAcrossAsesAndCountries) {
  ProbeSamplerConfig config;
  config.platform_probes_per_continent = 80;
  config.sample_per_continent = 30;
  ProbeSampler sampler{&net_->topology, &net_->world, config, Rng{10}};
  const auto sample = sampler.sample(sampler.platform_population());
  std::set<Asn> ases;
  std::set<CountryId> countries;
  for (const auto& p : sample) {
    ases.insert(p.asn);
    countries.insert(p.country);
  }
  EXPECT_GT(ases.size(), sample.size() / 3);
  EXPECT_GE(countries.size(), 12u);  // Round-robin hits many countries.
}

TEST_F(SampledNet, ResolverPrefersCloserCaches) {
  const auto& net = *net_;
  ContentResolver resolver{&net.topology, &net.world, &net.content};
  // Find a service with caches and a non-premium hostname.
  for (const auto& svc : net.content.services()) {
    for (const auto& h : svc.hostnames) {
      for (Asn client : net.stubs) {
        const auto answer = resolver.resolve(h.name, client);
        ASSERT_TRUE(answer.has_value());
        if (h.premium) {
          EXPECT_FALSE(answer->from_cache);
          EXPECT_EQ(answer->serving_asn, svc.origin_asn);
          EXPECT_EQ(answer->prefix, h.origin_prefix);
        } else if (answer->from_cache) {
          // Cache must be on the client's continent (mapping policy).
          const Continent client_cont = net.world.continent_of_country(
              net.topology.as_node(client).home_country);
          const Continent host_cont = net.world.continent_of_country(
              net.topology.as_node(answer->serving_asn).home_country);
          EXPECT_EQ(client_cont, host_cont);
        }
        // Prefix covers the answer address either way.
        EXPECT_TRUE(answer->prefix.contains(answer->address));
      }
    }
  }
}

TEST_F(SampledNet, ResolverSameCountryCacheWinsWhenPresent) {
  const auto& net = *net_;
  ContentResolver resolver{&net.topology, &net.world, &net.content};
  for (const auto& svc : net.content.services()) {
    for (const auto& cache : svc.caches) {
      const CountryId cache_country =
          net.topology.as_node(cache.host_asn).home_country;
      // A client in the same country as a cache must be served in-country.
      for (const auto& h : svc.hostnames) {
        if (h.premium) continue;
        for (Asn client : net.stubs) {
          if (net.topology.as_node(client).home_country != cache_country)
            continue;
          const auto answer = resolver.resolve(h.name, client);
          ASSERT_TRUE(answer.has_value());
          ASSERT_TRUE(answer->from_cache);
          EXPECT_EQ(net.topology.as_node(answer->serving_asn).home_country,
                    cache_country);
          break;  // One client per cache is plenty.
        }
        break;
      }
    }
  }
}

TEST_F(SampledNet, ResolverUnknownHostname) {
  ContentResolver resolver{&net_->topology, &net_->world, &net_->content};
  EXPECT_FALSE(resolver.resolve("not-a-host.example", net_->stubs[0])
                   .has_value());
}

}  // namespace
}  // namespace irp
