// Tests for the world model and geolocation database.
#include <gtest/gtest.h>

#include "geo/geolocation.hpp"
#include "geo/world.hpp"

namespace irp {
namespace {

World make_world(int countries = 4, int cities = 3) {
  WorldConfig config;
  config.countries_per_continent = countries;
  config.cities_per_country = cities;
  config.country_overrides.clear();
  Rng rng{1};
  return World::generate(config, rng);
}

TEST(World, GeneratesRequestedCounts) {
  const World w = make_world(4, 3);
  EXPECT_EQ(w.countries().size(), std::size_t(4 * kNumContinents));
  EXPECT_EQ(w.cities().size(), std::size_t(4 * 3 * kNumContinents));
  for (Continent c : all_continents())
    EXPECT_EQ(w.countries_in(c).size(), 4u);
}

TEST(World, CountryOverridesApply) {
  WorldConfig config;
  config.countries_per_continent = 5;
  config.country_overrides = {{Continent::kNorthAmerica, 2}};
  Rng rng{2};
  const World w = World::generate(config, rng);
  EXPECT_EQ(w.countries_in(Continent::kNorthAmerica).size(), 2u);
  EXPECT_EQ(w.countries_in(Continent::kEurope).size(), 5u);
}

TEST(World, CityCountryContinentLinkage) {
  const World w = make_world();
  for (const City& city : w.cities()) {
    const Country& country = w.country(city.country);
    EXPECT_EQ(w.continent_of_city(city.id), country.continent);
    const auto& cities = w.cities_in(country.id);
    EXPECT_NE(std::find(cities.begin(), cities.end(), city.id), cities.end());
  }
}

TEST(World, DistanceIsSymmetricAndZeroOnSelf) {
  const World w = make_world();
  const CityId a = w.cities()[0].id;
  const CityId b = w.cities()[10].id;
  EXPECT_DOUBLE_EQ(w.distance_km(a, b), w.distance_km(b, a));
  EXPECT_DOUBLE_EQ(w.distance_km(a, a), 0.0);
  EXPECT_GT(w.distance_km(a, b), 0.0);
}

TEST(World, IntercontinentalFartherThanLocal) {
  const World w = make_world();
  const CountryId eu = w.countries_in(Continent::kEurope)[0];
  const CountryId oc = w.countries_in(Continent::kOceania)[0];
  const CityId eu0 = w.cities_in(eu)[0];
  const CityId eu1 = w.cities_in(eu)[1];
  const CityId oc0 = w.cities_in(oc)[0];
  EXPECT_GT(w.distance_km(eu0, oc0), w.distance_km(eu0, eu1));
}

TEST(World, GreatCircleKnownValues) {
  // Equator quarter turn ~ 10007 km.
  EXPECT_NEAR(great_circle_km(0, 0, 0, 90), 10007.5, 10.0);
  EXPECT_NEAR(great_circle_km(0, 0, 0, 0), 0.0, 1e-9);
  // Pole to pole ~ 20015 km.
  EXPECT_NEAR(great_circle_km(90, 0, -90, 0), 20015.0, 20.0);
}

TEST(World, ContinentNamesAndCodes) {
  EXPECT_EQ(continent_code(Continent::kEurope), "EU");
  EXPECT_EQ(continent_name(Continent::kNorthAmerica), "N. America");
  EXPECT_EQ(all_continents().size(), std::size_t(kNumContinents));
}

TEST(GeoDatabase, ExactLookupWithoutErrors) {
  const World w = make_world();
  GeoDatabase db{&w, 0.0, Rng{3}};
  const CityId city = w.cities()[5].id;
  const auto prefix = *Ipv4Prefix::parse("10.0.0.0/24");
  db.register_prefix(prefix, city);
  EXPECT_EQ(db.locate_city(prefix.address_at(7)), city);
  EXPECT_EQ(db.locate_country(prefix.address_at(7)), w.city(city).country);
  EXPECT_EQ(db.locate_continent(prefix.address_at(7)),
            w.continent_of_city(city));
  EXPECT_EQ(db.errors_injected(), 0u);
}

TEST(GeoDatabase, UnknownAddressIsNullopt) {
  const World w = make_world();
  GeoDatabase db{&w, 0.0, Rng{3}};
  EXPECT_EQ(db.locate_city(*Ipv4Addr::parse("203.0.113.1")), std::nullopt);
}

TEST(GeoDatabase, ErrorsStayOnContinent) {
  const World w = make_world();
  GeoDatabase db{&w, 1.0, Rng{4}};  // Every registration is perturbed.
  const CityId truth = w.cities_in(w.countries_in(Continent::kAsia)[0])[0];
  for (int i = 0; i < 30; ++i) {
    const Ipv4Prefix p{Ipv4Addr(10, 0, std::uint8_t(i), 0), 24};
    db.register_prefix(p, truth);
    const auto located = db.locate_continent(p.address_at(1));
    ASSERT_TRUE(located.has_value());
    EXPECT_EQ(*located, Continent::kAsia);  // Continent survives the error.
  }
}

TEST(GeoDatabase, ErrorRateApproximatelyRespected) {
  const World w = make_world(8, 3);
  GeoDatabase db{&w, 0.25, Rng{5}};
  const CityId truth = w.cities()[0].id;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const Ipv4Prefix p{
        Ipv4Addr{static_cast<std::uint32_t>(0x0A000000u + i * 256)}, 24};
    db.register_prefix(p, truth);
  }
  // errors_injected only counts registrations whose recorded city actually
  // changed; a same-continent redraw can land on the truth, so the rate is
  // slightly under 0.25.
  const double rate = double(db.errors_injected()) / n;
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.30);
}

TEST(GeoDatabase, RejectsInvalidErrorRate) {
  const World w = make_world();
  EXPECT_THROW((GeoDatabase{&w, 1.5, Rng{6}}), CheckError);
  EXPECT_THROW((GeoDatabase{&w, -0.1, Rng{6}}), CheckError);
}

}  // namespace
}  // namespace irp
