# Empty compiler generated dependencies file for bench_figure2_skew.
# This may be replaced when dependencies are built.
