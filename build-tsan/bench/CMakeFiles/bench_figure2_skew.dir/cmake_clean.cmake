file(REMOVE_RECURSE
  "CMakeFiles/bench_figure2_skew.dir/bench_figure2_skew.cpp.o"
  "CMakeFiles/bench_figure2_skew.dir/bench_figure2_skew.cpp.o.d"
  "bench_figure2_skew"
  "bench_figure2_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure2_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
