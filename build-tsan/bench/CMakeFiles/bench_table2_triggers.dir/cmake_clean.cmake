file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_triggers.dir/bench_table2_triggers.cpp.o"
  "CMakeFiles/bench_table2_triggers.dir/bench_table2_triggers.cpp.o.d"
  "bench_table2_triggers"
  "bench_table2_triggers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
