file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_domestic.dir/bench_table3_domestic.cpp.o"
  "CMakeFiles/bench_table3_domestic.dir/bench_table3_domestic.cpp.o.d"
  "bench_table3_domestic"
  "bench_table3_domestic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_domestic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
