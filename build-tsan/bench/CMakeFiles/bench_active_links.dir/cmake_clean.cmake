file(REMOVE_RECURSE
  "CMakeFiles/bench_active_links.dir/bench_active_links.cpp.o"
  "CMakeFiles/bench_active_links.dir/bench_active_links.cpp.o.d"
  "bench_active_links"
  "bench_active_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
