# Empty dependencies file for bench_active_links.
# This may be replaced when dependencies are built.
