file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_probes.dir/bench_table1_probes.cpp.o"
  "CMakeFiles/bench_table1_probes.dir/bench_table1_probes.cpp.o.d"
  "bench_table1_probes"
  "bench_table1_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
