file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_breakdown.dir/bench_figure1_breakdown.cpp.o"
  "CMakeFiles/bench_figure1_breakdown.dir/bench_figure1_breakdown.cpp.o.d"
  "bench_figure1_breakdown"
  "bench_figure1_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
