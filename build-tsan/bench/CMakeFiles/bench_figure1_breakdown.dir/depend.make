# Empty dependencies file for bench_figure1_breakdown.
# This may be replaced when dependencies are built.
