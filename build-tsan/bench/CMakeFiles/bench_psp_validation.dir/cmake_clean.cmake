file(REMOVE_RECURSE
  "CMakeFiles/bench_psp_validation.dir/bench_psp_validation.cpp.o"
  "CMakeFiles/bench_psp_validation.dir/bench_psp_validation.cpp.o.d"
  "bench_psp_validation"
  "bench_psp_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psp_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
