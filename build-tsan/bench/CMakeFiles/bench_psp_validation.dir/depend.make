# Empty dependencies file for bench_psp_validation.
# This may be replaced when dependencies are built.
