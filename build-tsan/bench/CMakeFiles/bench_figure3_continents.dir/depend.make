# Empty dependencies file for bench_figure3_continents.
# This may be replaced when dependencies are built.
