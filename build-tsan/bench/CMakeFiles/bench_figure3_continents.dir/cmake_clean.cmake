file(REMOVE_RECURSE
  "CMakeFiles/bench_figure3_continents.dir/bench_figure3_continents.cpp.o"
  "CMakeFiles/bench_figure3_continents.dir/bench_figure3_continents.cpp.o.d"
  "bench_figure3_continents"
  "bench_figure3_continents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure3_continents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
