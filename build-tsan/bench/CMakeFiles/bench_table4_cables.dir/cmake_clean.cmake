file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_cables.dir/bench_table4_cables.cpp.o"
  "CMakeFiles/bench_table4_cables.dir/bench_table4_cables.cpp.o.d"
  "bench_table4_cables"
  "bench_table4_cables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_cables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
