# Empty compiler generated dependencies file for bench_table4_cables.
# This may be replaced when dependencies are built.
