file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_model.dir/bench_extended_model.cpp.o"
  "CMakeFiles/bench_extended_model.dir/bench_extended_model.cpp.o.d"
  "bench_extended_model"
  "bench_extended_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
