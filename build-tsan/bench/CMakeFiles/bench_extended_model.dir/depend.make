# Empty dependencies file for bench_extended_model.
# This may be replaced when dependencies are built.
