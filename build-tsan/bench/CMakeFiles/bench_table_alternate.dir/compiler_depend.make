# Empty compiler generated dependencies file for bench_table_alternate.
# This may be replaced when dependencies are built.
