file(REMOVE_RECURSE
  "CMakeFiles/bench_table_alternate.dir/bench_table_alternate.cpp.o"
  "CMakeFiles/bench_table_alternate.dir/bench_table_alternate.cpp.o.d"
  "bench_table_alternate"
  "bench_table_alternate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_alternate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
