# Empty compiler generated dependencies file for what_if_policies.
# This may be replaced when dependencies are built.
