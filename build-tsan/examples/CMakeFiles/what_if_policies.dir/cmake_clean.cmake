file(REMOVE_RECURSE
  "CMakeFiles/what_if_policies.dir/what_if_policies.cpp.o"
  "CMakeFiles/what_if_policies.dir/what_if_policies.cpp.o.d"
  "what_if_policies"
  "what_if_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
