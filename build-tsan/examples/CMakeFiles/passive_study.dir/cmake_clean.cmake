file(REMOVE_RECURSE
  "CMakeFiles/passive_study.dir/passive_study.cpp.o"
  "CMakeFiles/passive_study.dir/passive_study.cpp.o.d"
  "passive_study"
  "passive_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passive_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
