# Empty compiler generated dependencies file for passive_study.
# This may be replaced when dependencies are built.
