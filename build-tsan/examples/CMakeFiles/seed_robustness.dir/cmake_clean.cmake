file(REMOVE_RECURSE
  "CMakeFiles/seed_robustness.dir/seed_robustness.cpp.o"
  "CMakeFiles/seed_robustness.dir/seed_robustness.cpp.o.d"
  "seed_robustness"
  "seed_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seed_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
