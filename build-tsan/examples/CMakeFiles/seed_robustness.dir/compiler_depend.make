# Empty compiler generated dependencies file for seed_robustness.
# This may be replaced when dependencies are built.
