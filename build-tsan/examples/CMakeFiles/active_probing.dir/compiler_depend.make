# Empty compiler generated dependencies file for active_probing.
# This may be replaced when dependencies are built.
