file(REMOVE_RECURSE
  "CMakeFiles/active_probing.dir/active_probing.cpp.o"
  "CMakeFiles/active_probing.dir/active_probing.cpp.o.d"
  "active_probing"
  "active_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
