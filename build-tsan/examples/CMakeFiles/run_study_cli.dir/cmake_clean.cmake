file(REMOVE_RECURSE
  "CMakeFiles/run_study_cli.dir/run_study_cli.cpp.o"
  "CMakeFiles/run_study_cli.dir/run_study_cli.cpp.o.d"
  "run_study_cli"
  "run_study_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_study_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
