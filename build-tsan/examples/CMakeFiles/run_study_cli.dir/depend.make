# Empty dependencies file for run_study_cli.
# This may be replaced when dependencies are built.
