file(REMOVE_RECURSE
  "CMakeFiles/irp_dataplane.dir/as_type.cpp.o"
  "CMakeFiles/irp_dataplane.dir/as_type.cpp.o.d"
  "CMakeFiles/irp_dataplane.dir/dns.cpp.o"
  "CMakeFiles/irp_dataplane.dir/dns.cpp.o.d"
  "CMakeFiles/irp_dataplane.dir/ip_to_as.cpp.o"
  "CMakeFiles/irp_dataplane.dir/ip_to_as.cpp.o.d"
  "CMakeFiles/irp_dataplane.dir/probes.cpp.o"
  "CMakeFiles/irp_dataplane.dir/probes.cpp.o.d"
  "CMakeFiles/irp_dataplane.dir/traceroute.cpp.o"
  "CMakeFiles/irp_dataplane.dir/traceroute.cpp.o.d"
  "libirp_dataplane.a"
  "libirp_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
