
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/as_type.cpp" "src/dataplane/CMakeFiles/irp_dataplane.dir/as_type.cpp.o" "gcc" "src/dataplane/CMakeFiles/irp_dataplane.dir/as_type.cpp.o.d"
  "/root/repo/src/dataplane/dns.cpp" "src/dataplane/CMakeFiles/irp_dataplane.dir/dns.cpp.o" "gcc" "src/dataplane/CMakeFiles/irp_dataplane.dir/dns.cpp.o.d"
  "/root/repo/src/dataplane/ip_to_as.cpp" "src/dataplane/CMakeFiles/irp_dataplane.dir/ip_to_as.cpp.o" "gcc" "src/dataplane/CMakeFiles/irp_dataplane.dir/ip_to_as.cpp.o.d"
  "/root/repo/src/dataplane/probes.cpp" "src/dataplane/CMakeFiles/irp_dataplane.dir/probes.cpp.o" "gcc" "src/dataplane/CMakeFiles/irp_dataplane.dir/probes.cpp.o.d"
  "/root/repo/src/dataplane/traceroute.cpp" "src/dataplane/CMakeFiles/irp_dataplane.dir/traceroute.cpp.o" "gcc" "src/dataplane/CMakeFiles/irp_dataplane.dir/traceroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/irp_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/irp_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topo/CMakeFiles/irp_topo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bgp/CMakeFiles/irp_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
