# Empty dependencies file for irp_dataplane.
# This may be replaced when dependencies are built.
