file(REMOVE_RECURSE
  "libirp_dataplane.a"
)
