file(REMOVE_RECURSE
  "libirp_core.a"
)
