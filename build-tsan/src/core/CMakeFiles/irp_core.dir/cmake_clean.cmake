file(REMOVE_RECURSE
  "CMakeFiles/irp_core.dir/active_study.cpp.o"
  "CMakeFiles/irp_core.dir/active_study.cpp.o.d"
  "CMakeFiles/irp_core.dir/analysis.cpp.o"
  "CMakeFiles/irp_core.dir/analysis.cpp.o.d"
  "CMakeFiles/irp_core.dir/classify.cpp.o"
  "CMakeFiles/irp_core.dir/classify.cpp.o.d"
  "CMakeFiles/irp_core.dir/decisions.cpp.o"
  "CMakeFiles/irp_core.dir/decisions.cpp.o.d"
  "CMakeFiles/irp_core.dir/extended_model.cpp.o"
  "CMakeFiles/irp_core.dir/extended_model.cpp.o.d"
  "CMakeFiles/irp_core.dir/gr_model.cpp.o"
  "CMakeFiles/irp_core.dir/gr_model.cpp.o.d"
  "CMakeFiles/irp_core.dir/looking_glass.cpp.o"
  "CMakeFiles/irp_core.dir/looking_glass.cpp.o.d"
  "CMakeFiles/irp_core.dir/passive_study.cpp.o"
  "CMakeFiles/irp_core.dir/passive_study.cpp.o.d"
  "CMakeFiles/irp_core.dir/report_io.cpp.o"
  "CMakeFiles/irp_core.dir/report_io.cpp.o.d"
  "CMakeFiles/irp_core.dir/reports.cpp.o"
  "CMakeFiles/irp_core.dir/reports.cpp.o.d"
  "CMakeFiles/irp_core.dir/study.cpp.o"
  "CMakeFiles/irp_core.dir/study.cpp.o.d"
  "libirp_core.a"
  "libirp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
