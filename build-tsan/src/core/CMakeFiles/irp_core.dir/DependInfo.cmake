
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/active_study.cpp" "src/core/CMakeFiles/irp_core.dir/active_study.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/active_study.cpp.o.d"
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/irp_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/irp_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/decisions.cpp" "src/core/CMakeFiles/irp_core.dir/decisions.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/decisions.cpp.o.d"
  "/root/repo/src/core/extended_model.cpp" "src/core/CMakeFiles/irp_core.dir/extended_model.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/extended_model.cpp.o.d"
  "/root/repo/src/core/gr_model.cpp" "src/core/CMakeFiles/irp_core.dir/gr_model.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/gr_model.cpp.o.d"
  "/root/repo/src/core/looking_glass.cpp" "src/core/CMakeFiles/irp_core.dir/looking_glass.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/looking_glass.cpp.o.d"
  "/root/repo/src/core/passive_study.cpp" "src/core/CMakeFiles/irp_core.dir/passive_study.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/passive_study.cpp.o.d"
  "/root/repo/src/core/report_io.cpp" "src/core/CMakeFiles/irp_core.dir/report_io.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/report_io.cpp.o.d"
  "/root/repo/src/core/reports.cpp" "src/core/CMakeFiles/irp_core.dir/reports.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/reports.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/irp_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/irp_core.dir/study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/irp_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/irp_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topo/CMakeFiles/irp_topo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bgp/CMakeFiles/irp_bgp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dataplane/CMakeFiles/irp_dataplane.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/inference/CMakeFiles/irp_inference.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
