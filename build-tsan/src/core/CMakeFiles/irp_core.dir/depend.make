# Empty dependencies file for irp_core.
# This may be replaced when dependencies are built.
