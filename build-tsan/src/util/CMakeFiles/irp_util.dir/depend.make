# Empty dependencies file for irp_util.
# This may be replaced when dependencies are built.
