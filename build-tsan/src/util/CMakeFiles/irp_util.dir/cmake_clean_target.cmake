file(REMOVE_RECURSE
  "libirp_util.a"
)
