file(REMOVE_RECURSE
  "CMakeFiles/irp_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/irp_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/irp_util.dir/file.cpp.o"
  "CMakeFiles/irp_util.dir/file.cpp.o.d"
  "CMakeFiles/irp_util.dir/rng.cpp.o"
  "CMakeFiles/irp_util.dir/rng.cpp.o.d"
  "CMakeFiles/irp_util.dir/stats.cpp.o"
  "CMakeFiles/irp_util.dir/stats.cpp.o.d"
  "CMakeFiles/irp_util.dir/strings.cpp.o"
  "CMakeFiles/irp_util.dir/strings.cpp.o.d"
  "CMakeFiles/irp_util.dir/table.cpp.o"
  "CMakeFiles/irp_util.dir/table.cpp.o.d"
  "CMakeFiles/irp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/irp_util.dir/thread_pool.cpp.o.d"
  "libirp_util.a"
  "libirp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
