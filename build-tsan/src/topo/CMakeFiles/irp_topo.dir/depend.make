# Empty dependencies file for irp_topo.
# This may be replaced when dependencies are built.
