file(REMOVE_RECURSE
  "CMakeFiles/irp_topo.dir/generator.cpp.o"
  "CMakeFiles/irp_topo.dir/generator.cpp.o.d"
  "CMakeFiles/irp_topo.dir/registry.cpp.o"
  "CMakeFiles/irp_topo.dir/registry.cpp.o.d"
  "CMakeFiles/irp_topo.dir/serialize.cpp.o"
  "CMakeFiles/irp_topo.dir/serialize.cpp.o.d"
  "CMakeFiles/irp_topo.dir/stats.cpp.o"
  "CMakeFiles/irp_topo.dir/stats.cpp.o.d"
  "CMakeFiles/irp_topo.dir/topology.cpp.o"
  "CMakeFiles/irp_topo.dir/topology.cpp.o.d"
  "CMakeFiles/irp_topo.dir/types.cpp.o"
  "CMakeFiles/irp_topo.dir/types.cpp.o.d"
  "libirp_topo.a"
  "libirp_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
