file(REMOVE_RECURSE
  "libirp_topo.a"
)
