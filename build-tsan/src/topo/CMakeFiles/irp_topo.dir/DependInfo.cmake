
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/generator.cpp" "src/topo/CMakeFiles/irp_topo.dir/generator.cpp.o" "gcc" "src/topo/CMakeFiles/irp_topo.dir/generator.cpp.o.d"
  "/root/repo/src/topo/registry.cpp" "src/topo/CMakeFiles/irp_topo.dir/registry.cpp.o" "gcc" "src/topo/CMakeFiles/irp_topo.dir/registry.cpp.o.d"
  "/root/repo/src/topo/serialize.cpp" "src/topo/CMakeFiles/irp_topo.dir/serialize.cpp.o" "gcc" "src/topo/CMakeFiles/irp_topo.dir/serialize.cpp.o.d"
  "/root/repo/src/topo/stats.cpp" "src/topo/CMakeFiles/irp_topo.dir/stats.cpp.o" "gcc" "src/topo/CMakeFiles/irp_topo.dir/stats.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/irp_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/irp_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/types.cpp" "src/topo/CMakeFiles/irp_topo.dir/types.cpp.o" "gcc" "src/topo/CMakeFiles/irp_topo.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/irp_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/irp_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
