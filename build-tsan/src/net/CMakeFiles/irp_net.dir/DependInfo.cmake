
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address_plan.cpp" "src/net/CMakeFiles/irp_net.dir/address_plan.cpp.o" "gcc" "src/net/CMakeFiles/irp_net.dir/address_plan.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/irp_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/irp_net.dir/ipv4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
