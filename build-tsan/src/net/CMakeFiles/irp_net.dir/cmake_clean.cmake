file(REMOVE_RECURSE
  "CMakeFiles/irp_net.dir/address_plan.cpp.o"
  "CMakeFiles/irp_net.dir/address_plan.cpp.o.d"
  "CMakeFiles/irp_net.dir/ipv4.cpp.o"
  "CMakeFiles/irp_net.dir/ipv4.cpp.o.d"
  "libirp_net.a"
  "libirp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
