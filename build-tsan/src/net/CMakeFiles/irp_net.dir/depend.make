# Empty dependencies file for irp_net.
# This may be replaced when dependencies are built.
