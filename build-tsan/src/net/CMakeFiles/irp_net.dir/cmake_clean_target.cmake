file(REMOVE_RECURSE
  "libirp_net.a"
)
