file(REMOVE_RECURSE
  "CMakeFiles/irp_geo.dir/geolocation.cpp.o"
  "CMakeFiles/irp_geo.dir/geolocation.cpp.o.d"
  "CMakeFiles/irp_geo.dir/world.cpp.o"
  "CMakeFiles/irp_geo.dir/world.cpp.o.d"
  "libirp_geo.a"
  "libirp_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
