# Empty dependencies file for irp_geo.
# This may be replaced when dependencies are built.
