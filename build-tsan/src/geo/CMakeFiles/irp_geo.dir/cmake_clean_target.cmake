file(REMOVE_RECURSE
  "libirp_geo.a"
)
