
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inference/bgp_observations.cpp" "src/inference/CMakeFiles/irp_inference.dir/bgp_observations.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/bgp_observations.cpp.o.d"
  "/root/repo/src/inference/hybrid_dataset.cpp" "src/inference/CMakeFiles/irp_inference.dir/hybrid_dataset.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/hybrid_dataset.cpp.o.d"
  "/root/repo/src/inference/path_corpus.cpp" "src/inference/CMakeFiles/irp_inference.dir/path_corpus.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/path_corpus.cpp.o.d"
  "/root/repo/src/inference/relationships.cpp" "src/inference/CMakeFiles/irp_inference.dir/relationships.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/relationships.cpp.o.d"
  "/root/repo/src/inference/renumber.cpp" "src/inference/CMakeFiles/irp_inference.dir/renumber.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/renumber.cpp.o.d"
  "/root/repo/src/inference/serialize.cpp" "src/inference/CMakeFiles/irp_inference.dir/serialize.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/serialize.cpp.o.d"
  "/root/repo/src/inference/siblings.cpp" "src/inference/CMakeFiles/irp_inference.dir/siblings.cpp.o" "gcc" "src/inference/CMakeFiles/irp_inference.dir/siblings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/irp_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/irp_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topo/CMakeFiles/irp_topo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bgp/CMakeFiles/irp_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
