file(REMOVE_RECURSE
  "CMakeFiles/irp_inference.dir/bgp_observations.cpp.o"
  "CMakeFiles/irp_inference.dir/bgp_observations.cpp.o.d"
  "CMakeFiles/irp_inference.dir/hybrid_dataset.cpp.o"
  "CMakeFiles/irp_inference.dir/hybrid_dataset.cpp.o.d"
  "CMakeFiles/irp_inference.dir/path_corpus.cpp.o"
  "CMakeFiles/irp_inference.dir/path_corpus.cpp.o.d"
  "CMakeFiles/irp_inference.dir/relationships.cpp.o"
  "CMakeFiles/irp_inference.dir/relationships.cpp.o.d"
  "CMakeFiles/irp_inference.dir/renumber.cpp.o"
  "CMakeFiles/irp_inference.dir/renumber.cpp.o.d"
  "CMakeFiles/irp_inference.dir/serialize.cpp.o"
  "CMakeFiles/irp_inference.dir/serialize.cpp.o.d"
  "CMakeFiles/irp_inference.dir/siblings.cpp.o"
  "CMakeFiles/irp_inference.dir/siblings.cpp.o.d"
  "libirp_inference.a"
  "libirp_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
