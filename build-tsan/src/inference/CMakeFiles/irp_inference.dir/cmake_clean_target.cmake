file(REMOVE_RECURSE
  "libirp_inference.a"
)
