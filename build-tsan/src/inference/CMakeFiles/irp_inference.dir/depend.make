# Empty dependencies file for irp_inference.
# This may be replaced when dependencies are built.
