# Empty dependencies file for irp_bgp.
# This may be replaced when dependencies are built.
