file(REMOVE_RECURSE
  "CMakeFiles/irp_bgp.dir/engine.cpp.o"
  "CMakeFiles/irp_bgp.dir/engine.cpp.o.d"
  "CMakeFiles/irp_bgp.dir/policy.cpp.o"
  "CMakeFiles/irp_bgp.dir/policy.cpp.o.d"
  "CMakeFiles/irp_bgp.dir/route.cpp.o"
  "CMakeFiles/irp_bgp.dir/route.cpp.o.d"
  "libirp_bgp.a"
  "libirp_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irp_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
