file(REMOVE_RECURSE
  "libirp_bgp.a"
)
