
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/engine.cpp" "src/bgp/CMakeFiles/irp_bgp.dir/engine.cpp.o" "gcc" "src/bgp/CMakeFiles/irp_bgp.dir/engine.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/bgp/CMakeFiles/irp_bgp.dir/policy.cpp.o" "gcc" "src/bgp/CMakeFiles/irp_bgp.dir/policy.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/bgp/CMakeFiles/irp_bgp.dir/route.cpp.o" "gcc" "src/bgp/CMakeFiles/irp_bgp.dir/route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/irp_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/irp_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topo/CMakeFiles/irp_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
