file(REMOVE_RECURSE
  "CMakeFiles/test_topo_stats.dir/test_topo_stats.cpp.o"
  "CMakeFiles/test_topo_stats.dir/test_topo_stats.cpp.o.d"
  "test_topo_stats"
  "test_topo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
