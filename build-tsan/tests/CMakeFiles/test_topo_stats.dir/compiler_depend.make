# Empty compiler generated dependencies file for test_topo_stats.
# This may be replaced when dependencies are built.
