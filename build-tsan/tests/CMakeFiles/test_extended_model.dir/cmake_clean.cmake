file(REMOVE_RECURSE
  "CMakeFiles/test_extended_model.dir/test_extended_model.cpp.o"
  "CMakeFiles/test_extended_model.dir/test_extended_model.cpp.o.d"
  "test_extended_model"
  "test_extended_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
