file(REMOVE_RECURSE
  "CMakeFiles/test_generator_sweep.dir/test_generator_sweep.cpp.o"
  "CMakeFiles/test_generator_sweep.dir/test_generator_sweep.cpp.o.d"
  "test_generator_sweep"
  "test_generator_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generator_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
