# Empty dependencies file for test_active_unit.
# This may be replaced when dependencies are built.
