file(REMOVE_RECURSE
  "CMakeFiles/test_active_unit.dir/test_active_unit.cpp.o"
  "CMakeFiles/test_active_unit.dir/test_active_unit.cpp.o.d"
  "test_active_unit"
  "test_active_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
