file(REMOVE_RECURSE
  "CMakeFiles/test_gr_model.dir/test_gr_model.cpp.o"
  "CMakeFiles/test_gr_model.dir/test_gr_model.cpp.o.d"
  "test_gr_model"
  "test_gr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
