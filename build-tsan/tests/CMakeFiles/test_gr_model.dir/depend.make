# Empty dependencies file for test_gr_model.
# This may be replaced when dependencies are built.
