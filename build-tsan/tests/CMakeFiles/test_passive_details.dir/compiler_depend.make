# Empty compiler generated dependencies file for test_passive_details.
# This may be replaced when dependencies are built.
