file(REMOVE_RECURSE
  "CMakeFiles/test_passive_details.dir/test_passive_details.cpp.o"
  "CMakeFiles/test_passive_details.dir/test_passive_details.cpp.o.d"
  "test_passive_details"
  "test_passive_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_passive_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
