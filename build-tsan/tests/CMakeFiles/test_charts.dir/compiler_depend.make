# Empty compiler generated dependencies file for test_charts.
# This may be replaced when dependencies are built.
