file(REMOVE_RECURSE
  "CMakeFiles/test_charts.dir/test_charts.cpp.o"
  "CMakeFiles/test_charts.dir/test_charts.cpp.o.d"
  "test_charts"
  "test_charts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
