file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_engine.dir/test_bgp_engine.cpp.o"
  "CMakeFiles/test_bgp_engine.dir/test_bgp_engine.cpp.o.d"
  "test_bgp_engine"
  "test_bgp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
