# Empty dependencies file for test_bgp_engine.
# This may be replaced when dependencies are built.
