
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bgp_engine.cpp" "tests/CMakeFiles/test_bgp_engine.dir/test_bgp_engine.cpp.o" "gcc" "tests/CMakeFiles/test_bgp_engine.dir/test_bgp_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/irp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dataplane/CMakeFiles/irp_dataplane.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/inference/CMakeFiles/irp_inference.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bgp/CMakeFiles/irp_bgp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/topo/CMakeFiles/irp_topo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/geo/CMakeFiles/irp_geo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/net/CMakeFiles/irp_net.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/irp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
