# Empty compiler generated dependencies file for test_engine_vs_model.
# This may be replaced when dependencies are built.
