file(REMOVE_RECURSE
  "CMakeFiles/test_engine_vs_model.dir/test_engine_vs_model.cpp.o"
  "CMakeFiles/test_engine_vs_model.dir/test_engine_vs_model.cpp.o.d"
  "test_engine_vs_model"
  "test_engine_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
