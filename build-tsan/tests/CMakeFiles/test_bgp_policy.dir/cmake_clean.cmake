file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_policy.dir/test_bgp_policy.cpp.o"
  "CMakeFiles/test_bgp_policy.dir/test_bgp_policy.cpp.o.d"
  "test_bgp_policy"
  "test_bgp_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
