# Empty dependencies file for test_bgp_policy.
# This may be replaced when dependencies are built.
