#!/usr/bin/env sh
# Documentation link check: the docs must not rot.
#
# Scans the key documents for (1) repo-relative file paths and (2)
# run_study_cli command lines inside fenced code blocks, then verifies that
# every mentioned path exists in the tree and every mentioned subcommand and
# --flag is actually accepted by examples/run_study_cli.cpp. Registered as
# the `docs_check` ctest and run at the end of bench/run_benches.sh, so a
# renamed file or flag fails CI the moment a doc still mentions the old name.
#
# Usage: tools/check_docs.sh   (from anywhere; resolves the repo root itself)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

docs="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/PROTOCOL.md docs/OPERATIONS.md"
cli_src="examples/run_study_cli.cpp"
status=0

fail() {
  echo "docs-check: $1"
  status=1
}

# -- 1. Every repo-relative path mentioned in the docs must exist.
#
# Tokens are classified by shape:
#   src|tests|bench|examples|docs|tools/...ext  -> file must exist
#   src/<module>                                -> directory must exist
#   <module>/<name>.hpp (include-style)         -> src/<token> must exist
#   examples|bench/<name> or build/<same>       -> <name>.cpp must exist
#   UPPER.md                                    -> file must exist
tokens=$(grep -ohE "[A-Za-z0-9_./-]+" $docs | sort -u)

for tok in $tokens; do
  case $tok in
    */) continue ;;  # Bare directory references like `examples/`.
  esac
  case $tok in
    src/*.hpp | src/*.cpp | tests/*.cpp | bench/*.sh | tools/*.sh | docs/*.md)
      [ -f "$tok" ] || fail "missing file mentioned in docs: $tok" ;;
    src/util | src/net | src/geo | src/topo | src/bgp | src/dataplane | \
    src/inference | src/core | src/serve)
      [ -d "$tok" ] || fail "missing directory mentioned in docs: $tok" ;;
    README.md | DESIGN.md | EXPERIMENTS.md | ROADMAP.md | CHANGES.md | \
    PAPER.md | PAPERS.md | SNIPPETS.md)
      [ -f "$tok" ] || fail "missing document mentioned in docs: $tok" ;;
    examples/* | bench/bench_*)
      # Binary names: the matching source must exist.
      base=${tok#build/}
      case $base in
        *.cpp) [ -f "$base" ] || fail "missing source mentioned in docs: $base" ;;
        */*.*) ;;  # Other extensions under these roots: not repo sources.
        */*) [ -f "$base.cpp" ] || \
               fail "docs mention binary '$tok' but $base.cpp does not exist" ;;
      esac ;;
    build/examples/* | build/bench/bench_*)
      base=${tok#build/}
      case $base in
        */*.*) ;;
        */*) [ -f "$base.cpp" ] || \
               fail "docs mention binary '$tok' but $base.cpp does not exist" ;;
      esac ;;
    */*.hpp)
      # Include-style paths are relative to src/.
      [ -f "$tok" ] || [ -f "src/$tok" ] || \
        fail "missing header mentioned in docs: $tok" ;;
  esac
done

# -- 2. Every run_study_cli subcommand and flag shown in a fenced code block
# must be accepted by the CLI source (flags survive backslash continuations).
cli_lines=$(awk '
  /^```/ { fence = !fence; cont = 0; next }
  !fence { next }
  {
    if (cont || index($0, "run_study_cli") > 0) {
      print
      cont = ($0 ~ /\\$/) ? 1 : 0
    } else {
      cont = 0
    }
  }
' $docs)

flags=$(printf '%s\n' "$cli_lines" | grep -oE -- '--[a-z][a-z-]*' | sort -u)
for flag in $flags; do
  grep -qF -- "\"$flag\"" "$cli_src" || grep -qF -- "$flag" "$cli_src" || \
    fail "docs mention run_study_cli flag '$flag' unknown to $cli_src"
done

subcommands=$(printf '%s\n' "$cli_lines" |
  sed -n 's/.*run_study_cli \([a-z_][a-z_]*\).*/\1/p' | sort -u)
for sub in $subcommands; do
  grep -qF -- "\"$sub\"" "$cli_src" || \
    fail "docs mention run_study_cli subcommand '$sub' unknown to $cli_src"
done

# -- 3. The reverse: every flag the CLI actually accepts (an `arg == "--x"`
# comparison in the source) must appear somewhere in the docs, so a new flag
# cannot ship undocumented.
src_flags=$(grep -ohE 'arg == "--[a-z-]+"' "$cli_src" |
  grep -oE -- '--[a-z-]+' | sort -u)
for flag in $src_flags; do
  grep -qF -- "$flag" $docs || \
    fail "CLI flag '$flag' is accepted by $cli_src but undocumented"
done

if [ "$status" -eq 0 ]; then
  echo "docs-check: ok ($(printf '%s\n' $docs | wc -l | tr -d ' ') docs," \
       "$(printf '%s\n' $flags | wc -l | tr -d ' ') CLI flags verified)"
fi
exit "$status"
