#!/usr/bin/env sh
# CLI flag-parsing regression test: bad numeric flag values must be usage
# errors (exit 2), never silently parsed as 0 the way atoi would have it.
#
# Registered as the `cli_args_check` ctest; takes the run_study_cli binary
# as $1. Every case below exercises a flag that was once parsed with
# atoi/atoll/strtoul — "abc" became 0 workers, "-1" became huge, "12x"
# became 12 — and asserts the checked parser rejects it before any snapshot
# is loaded or socket opened.
#
# Usage: tools/check_cli_args.sh build/examples/run_study_cli
set -u

bin="${1:?usage: check_cli_args.sh path/to/run_study_cli}"
status=0
checked=0

# The value must be rejected with the usage exit code (2), and the error
# must land on stderr, not stdout.
expect_usage() {
  desc="$1"
  shift
  out=$("$bin" "$@" 2>/dev/null)
  rc=$?
  checked=$((checked + 1))
  if [ "$rc" -ne 2 ]; then
    echo "cli-args-check: FAIL [$desc]: exit $rc, expected 2: $bin $*"
    status=1
  elif [ -n "$out" ]; then
    echo "cli-args-check: FAIL [$desc]: wrote to stdout on a usage error"
    status=1
  fi
}

# Legacy (full-study) flags.
expect_usage "legacy --seed non-numeric"    --seed abc
expect_usage "legacy --seed negative"       --seed -3
expect_usage "legacy --scale zero"          --scale 0
expect_usage "legacy --scale non-numeric"   --scale abc
expect_usage "legacy --scale trailing junk" --scale 12x
expect_usage "legacy --threads non-numeric" --threads abc
expect_usage "legacy --threads negative"    --threads -1
expect_usage "legacy --threads over range"  --threads 1000000

# snapshot shares the checked study flags.
expect_usage "snapshot --scale exponent"    snapshot --out /dev/null --scale 1e3
expect_usage "snapshot --threads float"     snapshot --out /dev/null --threads 2.0

# serve: pool and wire flags (parsed before any snapshot is loaded).
expect_usage "serve --workers non-numeric"  serve --snapshot x --workers abc
expect_usage "serve --workers zero"         serve --snapshot x --workers 0
expect_usage "serve --workers exponent"     serve --snapshot x --workers 1e3
expect_usage "serve --queue zero"           serve --snapshot x --queue 0
expect_usage "serve --queue negative"       serve --snapshot x --queue -5
expect_usage "serve --listen over 65535"    serve --snapshot x --listen 70000
expect_usage "serve --listen non-numeric"   serve --snapshot x --listen http
expect_usage "serve --cache-budget junk"    serve --snapshot x --cache-budget abc
expect_usage "serve bad snapshot spec"      serve --snapshot =
expect_usage "serve empty snapshot name"    serve --snapshot =file

# query: the --connect port (parsed before any socket is opened).
expect_usage "query --connect port zero"    query --connect 127.0.0.1:0
expect_usage "query --connect port junk"    query --connect 127.0.0.1:x
expect_usage "query --connect port range"   query --connect 127.0.0.1:99999

# Unknown flags stay usage errors everywhere.
expect_usage "legacy unknown flag"          --bogus
expect_usage "serve unknown flag"           serve --snapshot x --bogus

# Sanity: a valid invocation must NOT exit 2 (it exits 1: missing file).
"$bin" query --snapshot /nonexistent.snap </dev/null >/dev/null 2>&1
rc=$?
checked=$((checked + 1))
if [ "$rc" -ne 1 ]; then
  echo "cli-args-check: FAIL [valid flags reach the loader]: exit $rc, expected 1"
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "cli-args-check: ok ($checked cases)"
fi
exit "$status"
