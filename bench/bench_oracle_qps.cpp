// RouteOracle query-serving benchmark: classify-workload throughput and
// latency through OracleService, plus the admission-control behavior under
// burst overload. Emits BENCH_oracle.json (see bench/run_benches.sh).
//
// This container exposes a single CPU, so worker threads cannot add core
// parallelism. The comparison is therefore between submission disciplines:
//   * closed_loop — one worker, the client submits a query and blocks on its
//     future before submitting the next. Every query pays the full
//     client/worker handoff (two context switches).
//   * pipelined — workers serve a bounded in-flight window that the client
//     keeps full, so the handoff cost is amortized over the whole window.
// Pipelined throughput ≥ 2x closed-loop is the acceptance bar; both numbers
// and the discipline used are recorded in the JSON so the comparison cannot
// be mistaken for a core-scaling claim.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/passive_study.hpp"
#include "serve/oracle_service.hpp"
#include "topo/generator.hpp"

namespace {

using namespace irp;

struct OracleFixture {
  std::unique_ptr<GeneratedInternet> net;
  PassiveDataset passive;
  OracleSnapshot snapshot;
  std::size_t snapshot_bytes = 0;
  std::unique_ptr<OracleIndex> index;
  std::vector<OracleRequest> workload;
  std::size_t distinct_decisions = 0;
};

/// Mid-size Internet (the bench_engine_hotpath topology): converges in
/// seconds while producing thousands of distinct routing decisions.
OracleFixture& fixture() {
  static OracleFixture fx = [] {
    OracleFixture f;
    GeneratorConfig config;
    config.seed = 2026;
    config.world.countries_per_continent = 4;
    config.world.cities_per_country = 3;
    config.tier1_count = 8;
    config.large_isps_per_continent = 4;
    config.education_per_continent = 2;
    config.small_isps_per_country = 3;
    config.stubs_per_country = 12;
    config.content_orgs = 6;
    config.cable_count = 4;
    config.hybrid_pair_count = 4;
    f.net = generate_internet(config);
    f.passive = run_passive_study(*f.net, PassiveStudyConfig{});
    f.snapshot = snapshot_study(f.passive);
    f.snapshot_bytes = f.snapshot.to_bytes().size();

    OracleIndexConfig index_config;
    index_config.cache_capacity = 1 << 16;  // Hold the whole distinct set.
    f.index = std::make_unique<OracleIndex>(&f.snapshot, index_config);

    // Classify workload: cycle the study's own decisions under the Simple
    // scenario. Repetition is the realistic part — production query streams
    // hit the same (decision, scenario) keys over and over, which is what
    // the classify cache exists for.
    f.distinct_decisions = std::min<std::size_t>(f.passive.decisions.size(), 4096);
    constexpr std::size_t kQueries = 40000;
    f.workload.reserve(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
      ClassifyRequest req;
      req.decision = f.passive.decisions[i % f.distinct_decisions];
      req.scenario = ScenarioOptions{};
      f.workload.emplace_back(std::move(req));
    }
    // Warm both caches (classify LRU + classifier's GrPathSet memo) so every
    // mode sees the same steady-state and the handoff discipline is the only
    // variable.
    OracleService warm(f.index.get(), OracleService::Config{0, 1});
    for (std::size_t i = 0; i < f.distinct_decisions; ++i)
      (void)warm.answer(f.workload[i]);
    return f;
  }();
  return fx;
}

struct RunResult {
  int workers = 0;
  const char* mode = "";
  std::size_t window = 0;
  double seconds = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// One worker; wait for each answer before submitting the next.
RunResult run_closed_loop() {
  OracleFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{1, 1024});
  const auto start = std::chrono::steady_clock::now();
  for (const OracleRequest& request : f.workload) {
    OracleService::Submitted s = service.submit(request);
    benchmark::DoNotOptimize(s.response.get());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const OracleStatsView stats = service.stats();
  const auto& pt = stats.per_type[static_cast<int>(QueryType::kClassify)];
  return RunResult{1, "closed_loop", 1, seconds,
                   double(f.workload.size()) / seconds, pt.p50_us, pt.p99_us};
}

/// `workers` workers; keep up to `window` queries in flight, reaping in
/// submission order.
RunResult run_pipelined(int workers, std::size_t window) {
  OracleFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{workers, window});
  std::deque<std::future<OracleResponse>> in_flight;
  const auto start = std::chrono::steady_clock::now();
  for (const OracleRequest& request : f.workload) {
    for (;;) {
      OracleService::Submitted s = service.submit(request);
      if (s.accepted) {
        in_flight.push_back(std::move(s.response));
        break;
      }
      // Window full: reap the oldest and retry.
      benchmark::DoNotOptimize(in_flight.front().get());
      in_flight.pop_front();
    }
    while (in_flight.size() >= window) {
      benchmark::DoNotOptimize(in_flight.front().get());
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    benchmark::DoNotOptimize(in_flight.front().get());
    in_flight.pop_front();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const OracleStatsView stats = service.stats();
  const auto& pt = stats.per_type[static_cast<int>(QueryType::kClassify)];
  return RunResult{workers, "pipelined", window, seconds,
                   double(f.workload.size()) / seconds, pt.p50_us, pt.p99_us};
}

struct OverloadResult {
  std::size_t queue_capacity = 0;
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  bool all_accepted_answered = false;
};

/// Burst `submitted` queries at a small queue without reaping; admission
/// control must shed the excess immediately and answer everything accepted.
OverloadResult run_overload() {
  OracleFixture& f = fixture();
  OverloadResult result;
  result.queue_capacity = 64;
  result.submitted = 4096;
  OracleService service(
      f.index.get(),
      OracleService::Config{2, result.queue_capacity});
  std::vector<std::future<OracleResponse>> accepted;
  for (std::size_t i = 0; i < result.submitted; ++i) {
    OracleService::Submitted s =
        service.submit(f.workload[i % f.workload.size()]);
    if (s.accepted)
      accepted.push_back(std::move(s.response));
    else
      ++result.rejected;
  }
  result.accepted = accepted.size();
  result.all_accepted_answered = true;
  for (auto& future : accepted) {
    if (future.wait_for(std::chrono::seconds(30)) !=
        std::future_status::ready) {
      result.all_accepted_answered = false;  // A stall — the bug we reject.
      break;
    }
    benchmark::DoNotOptimize(future.get());
  }
  return result;
}

void emit_json(const RunResult& single, const std::vector<RunResult>& runs,
               const ClassifyCache::Stats& cache,
               const OverloadResult& overload) {
  OracleFixture& f = fixture();
  FILE* out = std::fopen("BENCH_oracle.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_oracle.json\n");
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"oracle_qps\",\n");
  std::fprintf(out,
               "  \"snapshot\": {\"bytes\": %zu, \"prefixes\": %zu, "
               "\"route_entries\": %zu, \"interned_paths\": %zu},\n",
               f.snapshot_bytes, f.snapshot.routes.size(),
               f.snapshot.num_route_entries(),
               static_cast<std::size_t>(f.snapshot.paths.num_paths()));
  std::fprintf(out,
               "  \"workload\": {\"queries\": %zu, \"distinct_decisions\": "
               "%zu, \"cpus\": 1,\n   \"note\": \"single-CPU container: "
               "multi-worker throughput comes from pipelined submission "
               "(bounded in-flight window amortizes the client/worker "
               "handoff), not core parallelism\"},\n",
               f.workload.size(), f.distinct_decisions);
  auto emit_run = [&](const char* key, const RunResult& r,
                      const char* trailer) {
    std::fprintf(out,
                 "  \"%s\": {\"workers\": %d, \"mode\": \"%s\", "
                 "\"window\": %zu, \"seconds\": %.4f, \"qps\": %.0f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f%s},\n",
                 key, r.workers, r.mode, r.window, r.seconds, r.qps, r.p50_us,
                 r.p99_us, trailer);
  };
  emit_run("single_thread", single, "");
  char trailer[64];
  std::snprintf(trailer, sizeof trailer, ", \"speedup_vs_single\": %.2f",
                runs.front().qps / single.qps);
  emit_run("multi_thread", runs.front(), trailer);
  std::fprintf(out, "  \"runs\": [\n");
  {
    std::fprintf(out,
                 "    {\"workers\": %d, \"mode\": \"%s\", \"qps\": %.0f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f},\n",
                 single.workers, single.mode, single.qps, single.p50_us,
                 single.p99_us);
  }
  for (std::size_t i = 0; i < runs.size(); ++i)
    std::fprintf(out,
                 "    {\"workers\": %d, \"mode\": \"%s\", \"qps\": %.0f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f}%s\n",
                 runs[i].workers, runs[i].mode, runs[i].qps, runs[i].p50_us,
                 runs[i].p99_us, i + 1 < runs.size() ? "," : "");
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"cache\": {\"hit_rate\": %.4f, \"hits\": %llu, "
               "\"misses\": %llu, \"entries\": %zu, \"capacity\": %zu, "
               "\"shards\": %zu},\n",
               cache.hit_rate(), (unsigned long long)cache.hits,
               (unsigned long long)cache.misses, cache.entries, cache.capacity,
               cache.shards);
  std::fprintf(out,
               "  \"overload\": {\"queue_capacity\": %zu, \"submitted\": %zu, "
               "\"accepted\": %zu, \"rejected\": %zu, "
               "\"all_accepted_answered\": %s}\n",
               overload.queue_capacity, overload.submitted, overload.accepted,
               overload.rejected,
               overload.all_accepted_answered ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_oracle.json\n");
}

void print_oracle_qps() {
  OracleFixture& f = fixture();
  std::printf("RouteOracle query serving — %zu classify queries over %zu "
              "distinct decisions\n",
              f.workload.size(), f.distinct_decisions);
  std::printf("(snapshot: %zu bytes, %zu prefixes, %zu route entries)\n\n",
              f.snapshot_bytes, f.snapshot.routes.size(),
              f.snapshot.num_route_entries());

  const RunResult single = run_closed_loop();
  std::vector<RunResult> runs;
  runs.push_back(run_pipelined(2, 256));
  runs.push_back(run_pipelined(4, 256));

  std::printf("  %-24s %8s %12s %10s %10s\n", "mode", "workers", "qps",
              "p50(us)", "p99(us)");
  auto show = [](const RunResult& r) {
    std::printf("  %-24s %8d %12.0f %10.2f %10.2f\n", r.mode, r.workers, r.qps,
                r.p50_us, r.p99_us);
  };
  show(single);
  for (const RunResult& r : runs) show(r);
  std::printf("\n  pipelined(2) vs closed-loop speedup: %.2fx\n",
              runs.front().qps / single.qps);

  const ClassifyCache::Stats cache = f.index->cache_stats();
  std::printf("  classify cache: %.1f%% hit rate (%llu hits, %llu misses, "
              "%zu entries)\n",
              100.0 * cache.hit_rate(), (unsigned long long)cache.hits,
              (unsigned long long)cache.misses, cache.entries);

  const OverloadResult overload = run_overload();
  std::printf("  overload: %zu submitted at queue=%zu -> %zu accepted, %zu "
              "rejected, accepted all answered: %s\n\n",
              overload.submitted, overload.queue_capacity, overload.accepted,
              overload.rejected,
              overload.all_accepted_answered ? "yes" : "NO (stall)");

  emit_json(single, runs, cache, overload);
}

void BM_OracleClassifyDirect(benchmark::State& state) {
  OracleFixture& f = fixture();
  OracleService service(f.index.get(), OracleService::Config{0, 1});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service.answer(f.workload[i++ % f.workload.size()]));
  }
}
BENCHMARK(BM_OracleClassifyDirect);

void BM_OraclePipelined2(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_pipelined(2, 256).qps);
}
BENCHMARK(BM_OraclePipelined2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_oracle_qps();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
