// Ablation — snapshot aggregation depth (§3.3).
//
// The paper aggregates five monthly CAIDA snapshots with a recency-weighted
// majority vote. This ablation measures what that buys: relationship
// accuracy against ground truth when aggregating 1, 3, or all 5 snapshots,
// and how many stale links each choice drags along.
#include <map>

#include "bench_common.hpp"
#include "inference/relationships.hpp"

namespace {

using namespace irp;

struct Accuracy {
  std::size_t comparable = 0;
  std::size_t correct = 0;
  std::size_t stale = 0;
  double rate() const {
    return comparable == 0 ? 0.0 : double(correct) / double(comparable);
  }
};

Accuracy accuracy_of(const InferredTopology& inferred,
                     const GeneratedInternet& net) {
  std::map<std::pair<Asn, Asn>, std::set<Relationship>> truth;
  net.topology.for_each_link([&](const Link& l) {
    if (!net.topology.link_alive(l, net.measurement_epoch)) return;
    const Asn a = std::min(l.a, l.b), b = std::max(l.a, l.b);
    truth[{a, b}].insert(l.a == a ? l.rel_of_b_from_a
                                  : reverse(l.rel_of_b_from_a));
  });
  Accuracy acc;
  for (const auto& [pair, rel] : inferred.links()) {
    auto it = truth.find(pair);
    if (it == truth.end()) {
      ++acc.stale;  // Not alive at measurement: stale or unknown.
      continue;
    }
    if (it->second.size() != 1) continue;
    const Relationship t = *it->second.begin();
    if (t == Relationship::kSibling) continue;
    ++acc.comparable;
    if (*inferred.relationship(pair.first, pair.second) == t) ++acc.correct;
  }
  return acc;
}

void print_ablation() {
  const auto& r = bench::shared_study();
  std::printf("== Ablation: snapshot aggregation depth (§3.3) ==\n\n");
  const auto& snaps = r.passive.snapshots;
  for (std::size_t depth : {std::size_t{1}, std::size_t{3}, snaps.size()}) {
    if (depth > snaps.size()) continue;
    std::vector<InferredTopology> window(snaps.end() - long(depth),
                                         snaps.end());
    const auto agg = aggregate_snapshots(window);
    const auto acc = accuracy_of(agg, *r.net);
    std::printf(
        "  last %zu snapshot(s): %zu links, accuracy %s, stale links %zu\n",
        depth, agg.num_links(), percent(acc.rate()).c_str(), acc.stale);
  }
  std::printf(
      "\nAggregating more months adds coverage (links missed in a single\n"
      "month) at the cost of stale links — exactly the trade-off behind the\n"
      "paper's Netflix/AS3549 stale-link finding.\n\n");
}

void BM_InferSingleSnapshot(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const auto& paths = r.passive.corpus.paths(r.net->measurement_epoch);
  for (auto _ : state) benchmark::DoNotOptimize(infer_snapshot(paths));
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(paths.size()));
}
BENCHMARK(BM_InferSingleSnapshot)->Unit(benchmark::kMillisecond);

void BM_AggregateFiveSnapshots(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state)
    benchmark::DoNotOptimize(aggregate_snapshots(r.passive.snapshots));
}
BENCHMARK(BM_AggregateFiveSnapshots)->Unit(benchmark::kMillisecond);

void BM_TransitDegrees(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const auto& paths = r.passive.corpus.paths(r.net->measurement_epoch);
  for (auto _ : state) benchmark::DoNotOptimize(transit_degrees(paths));
}
BENCHMARK(BM_TransitDegrees)->Unit(benchmark::kMillisecond);

}  // namespace

IRP_BENCH_MAIN(print_ablation)
