// Engine hot-path microbenchmark: the interned-path BgpEngine vs the frozen
// pre-refactor BaselineBgpEngine on the workloads that dominate the studies:
//   * corpus-style convergence — one prefix per AS, announced in batches,
//     full propagation to quiescence (the passive study's inner loop);
//   * poisoning re-convergence — repeated re-announcements with growing
//     poison sets on one prefix (the active study's inner loop, decision-
//     process heavy).
// Prints a comparison table, reports the intern hit rate and sharing savings
// from the engine counters, and emits BENCH_engine.json so future PRs have a
// recorded perf trajectory to diff against (see bench/run_benches.sh).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bgp/baseline_engine.hpp"
#include "bgp/engine.hpp"
#include "topo/generator.hpp"

namespace {

using irp::Asn;
using irp::BaselineBgpEngine;
using irp::BgpEngine;
using irp::EngineCounters;
using irp::GeneratedInternet;
using irp::GroundTruthPolicy;
using irp::Ipv4Prefix;

/// Mid-size Internet: big enough that convergence cost dominates setup and
/// AS paths reach realistic lengths (where per-hop vector copies hurt the
/// baseline the way they would at route-collector scale), small enough that
/// the baseline engine finishes the sweep in seconds.
const GeneratedInternet& bench_net() {
  static const std::unique_ptr<GeneratedInternet> net = [] {
    irp::GeneratorConfig config;
    config.seed = 2026;
    config.world.countries_per_continent = 4;
    config.world.cities_per_country = 3;
    config.tier1_count = 8;
    config.large_isps_per_continent = 4;
    config.education_per_continent = 2;
    config.small_isps_per_country = 3;
    config.stubs_per_country = 12;
    config.content_orgs = 6;
    config.cable_count = 4;
    config.hybrid_pair_count = 4;
    return irp::generate_internet(config);
  }();
  return *net;
}

std::vector<std::pair<Ipv4Prefix, Asn>> all_origins() {
  std::vector<std::pair<Ipv4Prefix, Asn>> origins;
  bench_net().topology.for_each_as([&](const irp::AsNode& node) {
    if (!node.prefixes.empty())
      origins.emplace_back(node.prefixes.front().prefix, node.asn);
  });
  return origins;
}

constexpr int kBatch = 64;

/// Corpus-style convergence: announce in batches of kBatch, run() after each
/// batch, one engine per epoch. Returns messages delivered.
template <typename Engine>
std::size_t converge_corpus(int epoch, EngineCounters* counters = nullptr) {
  const auto& net = bench_net();
  GroundTruthPolicy policy{&net.topology};
  static const auto origins = all_origins();
  // build_corpus hands every batch engine a shared StatePool; drive the new
  // engine the same way so the bench measures the production configuration.
  // The baseline engine predates pooling and allocates its state each run.
  auto make_engine = [&] {
    if constexpr (std::is_same_v<Engine, BgpEngine>) {
      static BgpEngine::StatePool pool;
      return Engine{&net.topology, &policy, epoch, &pool};
    } else {
      return Engine{&net.topology, &policy, epoch};
    }
  };
  Engine engine = make_engine();
  int in_batch = 0;
  for (const auto& [prefix, origin] : origins) {
    engine.announce(prefix, origin);
    if (++in_batch == kBatch) {
      engine.run();
      in_batch = 0;
    }
  }
  engine.run();
  if constexpr (std::is_same_v<Engine, BgpEngine>)
    if (counters != nullptr) *counters = engine.counters();
  return engine.messages_delivered();
}

/// Poisoning churn: re-announce one prefix with a growing poison set, full
/// re-convergence each round. Decision-process heavy (every affected AS
/// re-runs select() over its whole RIB).
template <typename Engine>
std::size_t converge_poison_rounds(int rounds) {
  const auto& net = bench_net();
  GroundTruthPolicy policy{&net.topology};
  const Ipv4Prefix prefix = net.testbed_prefixes[0];
  Engine engine{&net.topology, &policy, net.measurement_epoch};
  engine.announce(prefix, net.testbed_asn);
  engine.run();
  std::vector<Asn> poison;
  for (int round = 0; round < rounds; ++round) {
    const auto* sel = engine.best(net.collector_peers[0], prefix);
    if (sel == nullptr || sel->self_originated ||
        sel->next_hop == net.testbed_asn)
      break;
    poison.push_back(sel->next_hop);
    irp::AnnounceOptions options;
    options.poison_set = poison;
    engine.announce(prefix, net.testbed_asn, std::move(options));
    engine.run();
  }
  return engine.messages_delivered();
}

template <typename Fn>
double best_seconds(int repetitions, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < repetitions; ++i) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    best = std::min(
        best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count());
  }
  return best;
}

struct Comparison {
  double baseline_seconds = 0;
  double engine_seconds = 0;
  std::size_t messages = 0;
  double speedup() const { return baseline_seconds / engine_seconds; }
};

void emit_json(const Comparison& corpus, const Comparison& poison,
               const EngineCounters& counters) {
  const auto& topo = bench_net().topology;
  FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_engine.json\n");
    return;
  }
  const double hit_rate =
      double(counters.intern_hits) /
      double(counters.intern_hits + counters.paths_interned);
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"engine_hotpath\",\n");
  std::fprintf(f,
               "  \"topology\": {\"ases\": %zu, \"links\": %zu, "
               "\"prefixes\": %zu, \"batch\": %d},\n",
               topo.num_ases(), topo.num_links(), all_origins().size(), kBatch);
  std::fprintf(f,
               "  \"corpus_convergence\": {\"baseline_seconds\": %.6f, "
               "\"engine_seconds\": %.6f, \"speedup\": %.3f, "
               "\"messages\": %zu, \"engine_msgs_per_sec\": %.0f},\n",
               corpus.baseline_seconds, corpus.engine_seconds, corpus.speedup(),
               corpus.messages, double(corpus.messages) / corpus.engine_seconds);
  std::fprintf(f,
               "  \"poisoning_reconvergence\": {\"baseline_seconds\": %.6f, "
               "\"engine_seconds\": %.6f, \"speedup\": %.3f, "
               "\"messages\": %zu},\n",
               poison.baseline_seconds, poison.engine_seconds, poison.speedup(),
               poison.messages);
  std::fprintf(f,
               "  \"intern\": {\"paths_interned\": %llu, \"intern_hits\": "
               "%llu, \"hit_rate\": %.4f, \"path_bytes_saved\": %llu, "
               "\"selections_run\": %llu, \"rib_routes_scanned\": %llu}\n",
               (unsigned long long)counters.paths_interned,
               (unsigned long long)counters.intern_hits, hit_rate,
               (unsigned long long)counters.path_bytes_saved,
               (unsigned long long)counters.selections_run,
               (unsigned long long)counters.rib_routes_scanned);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_engine.json\n");
}

void print_hotpath() {
  const auto& topo = bench_net().topology;
  std::printf("Engine hot path — interned-path BgpEngine vs frozen baseline\n");
  std::printf("(topology: %zu ASes, %zu links; %zu prefixes, batch %d)\n\n",
              topo.num_ases(), topo.num_links(), all_origins().size(), kBatch);

  constexpr int kReps = 3;
  constexpr int kPoisonRounds = 12;

  Comparison corpus;
  EngineCounters counters;
  corpus.messages = converge_corpus<BgpEngine>(0, &counters);
  const std::size_t baseline_messages = converge_corpus<BaselineBgpEngine>(0);
  if (corpus.messages != baseline_messages) {
    std::fprintf(stderr, "message-count divergence: %zu vs %zu\n",
                 corpus.messages, baseline_messages);
    std::abort();  // Equivalence is the bar; a perf number would be a lie.
  }
  corpus.engine_seconds =
      best_seconds(kReps, [] { return converge_corpus<BgpEngine>(0); });
  corpus.baseline_seconds =
      best_seconds(kReps, [] { return converge_corpus<BaselineBgpEngine>(0); });

  Comparison poison;
  poison.messages = converge_poison_rounds<BgpEngine>(kPoisonRounds);
  if (poison.messages != converge_poison_rounds<BaselineBgpEngine>(kPoisonRounds)) {
    std::fprintf(stderr, "poisoning message-count divergence\n");
    std::abort();
  }
  poison.engine_seconds = best_seconds(
      kReps, [] { return converge_poison_rounds<BgpEngine>(kPoisonRounds); });
  poison.baseline_seconds = best_seconds(kReps, [] {
    return converge_poison_rounds<BaselineBgpEngine>(kPoisonRounds);
  });

  std::printf("  %-26s %12s %12s %9s %14s\n", "workload", "baseline",
              "engine", "speedup", "msgs/sec");
  std::printf("  %-26s %10.3f s %10.3f s %8.2fx %14.0f\n",
              "corpus convergence", corpus.baseline_seconds,
              corpus.engine_seconds, corpus.speedup(),
              double(corpus.messages) / corpus.engine_seconds);
  std::printf("  %-26s %10.3f s %10.3f s %8.2fx %14.0f\n",
              "poisoning re-convergence", poison.baseline_seconds,
              poison.engine_seconds, poison.speedup(),
              double(poison.messages) / poison.engine_seconds);

  const double hit_rate =
      double(counters.intern_hits) /
      double(counters.intern_hits + counters.paths_interned);
  std::printf("\n  intern: %llu paths, %.1f%% hit rate, %.2f MB of hop "
              "copies avoided\n",
              (unsigned long long)counters.paths_interned, 100.0 * hit_rate,
              double(counters.path_bytes_saved) / (1024.0 * 1024.0));
  std::printf("  decision process: %llu selections over %llu RIB routes\n\n",
              (unsigned long long)counters.selections_run,
              (unsigned long long)counters.rib_routes_scanned);

  emit_json(corpus, poison, counters);
}

void BM_CorpusConvergence(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(converge_corpus<BgpEngine>(0));
}
BENCHMARK(BM_CorpusConvergence)->Unit(benchmark::kMillisecond);

void BM_CorpusConvergenceBaseline(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(converge_corpus<BaselineBgpEngine>(0));
}
BENCHMARK(BM_CorpusConvergenceBaseline)->Unit(benchmark::kMillisecond);

void BM_PoisoningReconvergence(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(converge_poison_rounds<BgpEngine>(8));
}
BENCHMARK(BM_PoisoningReconvergence)->Unit(benchmark::kMillisecond);

void BM_PoisoningReconvergenceBaseline(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(converge_poison_rounds<BaselineBgpEngine>(8));
}
BENCHMARK(BM_PoisoningReconvergenceBaseline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_hotpath();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
