// §4.4 — alternate-route discovery: do the sequences of routes chosen under
// iterated poisoning follow the Best/Shortest properties?
#include "bench_common.hpp"
#include "core/active_study.hpp"

namespace {

using namespace irp;

void print_alternate() {
  const auto& r = bench::shared_study();
  const auto& a = r.alternate;
  std::printf("== §4.4: alternate-route preference orderings ==\n\n");
  std::printf("Targets with >=2 discovered routes: %zu\n", a.targets);
  auto pct = [&](std::size_t n) {
    return percent(a.targets == 0 ? 0.0 : double(n) / double(a.targets));
  };
  bench::compare_line("followed Best and Shortest", "86.1%", pct(a.both));
  bench::compare_line("followed Best only", "8.0%", pct(a.best_only));
  bench::compare_line("followed Shortest only", "5.0%", pct(a.short_only));
  bench::compare_line("followed neither", "0.8%", pct(a.neither));
  std::printf("\nPoisoned announcements used: %zu (paper: 188 for 36 targets"
              " per vantage batch)\n", a.poisoned_announcements);
  std::printf("\nModel-violating orderings observed (case studies, cf. the\n"
              "OpenPeering/AMPATH and Internet2 examples in the paper):\n");
  for (const auto& note : a.violation_notes)
    std::printf("  - %s\n", note.c_str());
  std::printf("\n");
}

void BM_PoisoningRound(benchmark::State& state) {
  const auto& r = bench::shared_study();
  GroundTruthPolicy policy{&r.net->topology};
  for (auto _ : state) {
    BgpEngine engine{&r.net->topology, &policy, r.net->measurement_epoch};
    engine.announce(r.net->testbed_prefixes[0], r.net->testbed_asn);
    engine.run();
    // One poisoning round against a fixed target's next hop.
    const auto* sel = engine.best(r.net->large_isps[0],
                                  r.net->testbed_prefixes[0]);
    if (sel != nullptr) {
      AnnounceOptions options;
      options.poison_set = {sel->next_hop};
      engine.announce(r.net->testbed_prefixes[0], r.net->testbed_asn,
                      std::move(options));
      engine.run();
    }
    benchmark::DoNotOptimize(engine.messages_delivered());
  }
}
BENCHMARK(BM_PoisoningRound)->Unit(benchmark::kMillisecond);

}  // namespace

IRP_BENCH_MAIN(print_alternate)
