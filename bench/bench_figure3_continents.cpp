// Figure 3 — decision breakdown for continental vs intercontinental
// traceroutes (§6).
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "util/ascii_chart.hpp"

namespace {

using namespace irp;

void print_figure3() {
  const auto& r = bench::shared_study();
  std::printf("== Figure 3: geography of routing decisions ==\n");
  std::printf("%s\n", render_figure3(r.figure3).render().c_str());

  std::vector<StackedBar> bars;
  auto add_bar = [&](const std::string& label, const CategoryBreakdown& b) {
    StackedBar bar;
    bar.label = label;
    for (DecisionCategory c : kAllCategories) bar.segments.push_back(b.share(c));
    bars.push_back(std::move(bar));
  };
  for (const auto& [continent, b] : r.figure3.per_continent)
    add_bar(std::string(continent_code(continent)), b);
  add_bar("Cont", r.figure3.continental_all);
  add_bar("NonCont", r.figure3.intercontinental);
  std::printf("%s", render_stacked_bars(bars, {'#', '-', '=', '.'}).c_str());
  std::printf("  # Best/Short   - NonBest/Short   = Best/Long   ."
              " NonBest/Long\n\n");

  bench::compare_line(
      "continental traceroute share", "45%",
      percent(r.figure3.continental_traceroute_fraction));
  bench::compare_line(
      "continental Best/Short > intercontinental", "yes",
      r.figure3.continental_all.share(DecisionCategory::kBestShort) >
              r.figure3.intercontinental.share(DecisionCategory::kBestShort)
          ? "yes"
          : "no");
  std::printf(
      "  continental Best/Short %s vs intercontinental %s\n\n",
      percent(r.figure3.continental_all.share(DecisionCategory::kBestShort))
          .c_str(),
      percent(
          r.figure3.intercontinental.share(DecisionCategory::kBestShort))
          .c_str());
}

void BM_GeolocateTraceroutes(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state)
    benchmark::DoNotOptimize(geolocate_traceroutes(r.passive, *r.net));
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(r.passive.traceroutes.size()));
}
BENCHMARK(BM_GeolocateTraceroutes);

void BM_ComputeFigure3(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_figure3(r.passive, *r.net, classifier));
}
BENCHMARK(BM_ComputeFigure3);

}  // namespace

IRP_BENCH_MAIN(print_figure3)
