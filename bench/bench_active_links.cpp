// §3.2 dataset — inter-AS links observed via the active experiments: how
// many are missing from the inferred relationship database, and how many are
// only visible through poisoned announcements.
#include "bench_common.hpp"
#include "core/active_study.hpp"

namespace {

using namespace irp;

void print_links() {
  const auto& r = bench::shared_study();
  const auto& a = r.alternate;
  std::printf("== §3.2: links exposed by active measurement ==\n\n");
  bench::compare_line("inter-AS links observed", "739",
                      std::to_string(a.links_observed));
  bench::compare_line("links not in the relationship DB", "45",
                      std::to_string(a.links_not_in_db));
  const double frac = a.links_not_in_db == 0
                          ? 0.0
                          : double(a.links_poison_only) /
                                double(a.links_not_in_db);
  bench::compare_line("of those, only visible when poisoning", "22.2%",
                      percent(frac) + " (" +
                          std::to_string(a.links_poison_only) + ")");
  std::printf("\n");
}

void BM_AnnounceAndConvergeTestbedPrefix(benchmark::State& state) {
  const auto& r = bench::shared_study();
  GroundTruthPolicy policy{&r.net->topology};
  for (auto _ : state) {
    BgpEngine engine{&r.net->topology, &policy, r.net->measurement_epoch};
    engine.announce(r.net->testbed_prefixes[0], r.net->testbed_asn);
    engine.run();
    benchmark::DoNotOptimize(engine.messages_delivered());
  }
}
BENCHMARK(BM_AnnounceAndConvergeTestbedPrefix)->Unit(benchmark::kMillisecond);

void BM_VantageSelection(benchmark::State& state) {
  const auto& r = bench::shared_study();
  std::set<Asn> candidates;
  for (const auto& p : r.passive.probes) candidates.insert(p.asn);
  const std::vector<Asn> list{candidates.begin(), candidates.end()};
  for (auto _ : state)
    benchmark::DoNotOptimize(ActiveExperiment::select_vantages(
        *r.net, *r.passive.policy, list, 96));
}
BENCHMARK(BM_VantageSelection)->Unit(benchmark::kMillisecond);

}  // namespace

IRP_BENCH_MAIN(print_links)
