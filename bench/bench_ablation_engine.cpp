// Ablation — simulator machinery: BGP convergence cost vs topology scale,
// and the GR model's per-destination computation cost (the design choice of
// computing GR route classes analytically instead of re-simulating BGP on
// the inferred graph).
#include "bench_common.hpp"
#include "core/gr_model.hpp"
#include "topo/generator.hpp"

namespace {

using namespace irp;

GeneratorConfig scaled_config(int scale) {
  GeneratorConfig config;
  config.seed = 4242;
  config.world.countries_per_continent = 2 + scale;
  config.stubs_per_country = 4 * scale;
  config.small_isps_per_country = scale;
  config.large_isps_per_continent = 2 + 2 * scale;
  config.content_orgs = 4 + 2 * scale;
  return config;
}

void print_scaling() {
  const auto& r = bench::shared_study();
  std::printf("== Ablation: simulator scaling ==\n\n");
  std::printf("Full-scale study: %zu ASes, %zu links, %zu decisions.\n",
              r.net->topology.num_ases(), r.net->topology.num_links(),
              r.passive.decisions.size());
  std::printf(
      "GR route classes are computed analytically per destination (three\n"
      "relaxation stages, O(E log V)); the benchmarks below quantify that\n"
      "choice against full BGP convergence per prefix.\n\n");
}

void BM_EngineConvergencePerPrefix(benchmark::State& state) {
  const auto net = generate_internet(scaled_config(int(state.range(0))));
  GroundTruthPolicy policy{&net->topology};
  // Announce one prefix from a stub and converge; repeat per iteration.
  const Asn origin = net->stubs[0];
  const Ipv4Prefix prefix = net->topology.as_node(origin).prefixes[0].prefix;
  std::size_t messages = 0;
  for (auto _ : state) {
    BgpEngine engine{&net->topology, &policy, net->measurement_epoch};
    engine.announce(prefix, origin);
    engine.run();
    messages = engine.messages_delivered();
    benchmark::DoNotOptimize(messages);
  }
  state.counters["ases"] = double(net->topology.num_ases());
  state.counters["messages"] = double(messages);
}
BENCHMARK(BM_EngineConvergencePerPrefix)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_GrModelComputePerDestination(benchmark::State& state) {
  const auto& r = bench::shared_study();
  GrModel model{&r.passive.inferred, r.net->topology.num_ases()};
  Asn dest = r.net->content_asns[0];
  for (auto _ : state) benchmark::DoNotOptimize(model.compute(dest));
}
BENCHMARK(BM_GrModelComputePerDestination);

void BM_GrModelWithPspFilter(benchmark::State& state) {
  const auto& r = bench::shared_study();
  GrModel model{&r.passive.inferred, r.net->topology.num_ases()};
  const Asn dest = r.net->content_asns[0];
  const auto filter = [](Asn neighbor) { return neighbor % 2 == 0; };
  for (auto _ : state) benchmark::DoNotOptimize(model.compute(dest, filter));
}
BENCHMARK(BM_GrModelWithPspFilter);

void BM_GenerateInternet(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(generate_internet(scaled_config(2)));
}
BENCHMARK(BM_GenerateInternet)->Unit(benchmark::kMillisecond);

}  // namespace

IRP_BENCH_MAIN(print_scaling)
