// Table 2 — BGP decision triggers observed after anycasting a prefix that
// was previously announced from a single (magnet) location (§3.2, §4.4).
#include "bench_common.hpp"
#include "core/active_study.hpp"
#include "core/analysis.hpp"

namespace {

using namespace irp;

void print_row(const char* name, std::size_t n, std::size_t total,
               const char* paper_feeds, const char* paper_tr, bool feeds) {
  const double share = total == 0 ? 0.0 : double(n) / double(total);
  std::printf("  %-28s %4zu (%6s)   paper %s: %s\n", name, n,
              percent(share).c_str(), feeds ? "feeds" : "traceroutes",
              feeds ? paper_feeds : paper_tr);
}

void print_table2() {
  const auto& r = bench::shared_study();
  std::printf("== Table 2: BGP decision triggers after anycast ==\n\n");
  for (const bool feeds : {true, false}) {
    const TriggerCounts& c = feeds ? r.table2.feeds : r.table2.traceroutes;
    std::printf("%s channel (total %zu):\n",
                feeds ? "BGP FEEDS" : "TRACEROUTES", c.total());
    print_row("Best relationship", c.best_relationship, c.total(), "46.0%",
              "42.4%", feeds);
    print_row("Shorter path", c.shorter_path, c.total(), "16.0%", "29.4%",
              feeds);
    print_row("Intradomain tie-breaker", c.intradomain, c.total(), "16.4%",
              "15.6%", feeds);
    print_row("Oldest route (magnet)", c.oldest_route, c.total(), "2.5%",
              "1.6%", feeds);
    print_row("Violation", c.violation, c.total(), "18.9%", "10.8%", feeds);
    std::printf("\n");
  }
}

void BM_MagnetExperiment(benchmark::State& state) {
  const auto& r = bench::shared_study();
  std::set<Asn> candidates;
  for (const auto& p : r.passive.probes) candidates.insert(p.asn);
  const std::vector<Asn> vantages = ActiveExperiment::select_vantages(
      *r.net, *r.passive.policy, {candidates.begin(), candidates.end()}, 32);
  for (auto _ : state) {
    ActiveExperiment active{r.net.get(), r.passive.policy.get(),
                            &r.passive.inferred, vantages, {}};
    benchmark::DoNotOptimize(active.magnet_experiment());
  }
}
BENCHMARK(BM_MagnetExperiment)->Unit(benchmark::kMillisecond);

void BM_InferTrigger(benchmark::State& state) {
  const auto& r = bench::shared_study();
  // A representative alternatives set.
  std::vector<Route> alternatives(3);
  alternatives[0].from_asn = r.net->tier1s[0];
  alternatives[0].path.hops = {r.net->tier1s[0], 99};
  alternatives[1].from_asn = r.net->large_isps[0];
  alternatives[1].path.hops = {r.net->large_isps[0], 98, 99};
  alternatives[2].from_asn = r.net->large_isps[1];
  alternatives[2].path.hops = {r.net->large_isps[1], 97, 98, 99};
  const Asn subject = r.net->small_isps[0];
  for (auto _ : state)
    benchmark::DoNotOptimize(infer_trigger(r.passive.inferred, subject,
                                           alternatives[0].from_asn, 2,
                                           alternatives, false));
}
BENCHMARK(BM_InferTrigger);

}  // namespace

IRP_BENCH_MAIN(print_table2)
