// Table 3 — Non-Best/Short decisions explained by ASes preferring
// intra-country routes (§6).
#include "bench_common.hpp"
#include "core/analysis.hpp"

namespace {

using namespace irp;

const char* paper_value(Continent c) {
  switch (c) {
    case Continent::kAsia:         return "40.1%";
    case Continent::kAfrica:       return "62.5%";
    case Continent::kEurope:       return "64.3%";
    case Continent::kNorthAmerica: return "1.9%";
    case Continent::kOceania:      return "62.9%";
    case Continent::kSouthAmerica: return "66.6%";
  }
  return "?";
}

void print_table3() {
  const auto& r = bench::shared_study();
  std::printf("== Table 3: violations explained by domestic preference ==\n\n");
  for (const auto& row : r.table3.rows) {
    const double frac =
        row.domestic_violations == 0
            ? 0.0
            : double(row.explained) / double(row.domestic_violations);
    std::printf("  %-12s %6s of %4zu domestic violations   paper: %s\n",
                std::string(continent_name(row.continent)).c_str(),
                percent(frac).c_str(), row.domestic_violations,
                paper_value(row.continent));
  }
  std::printf("\n");
  bench::compare_line("overall explained by domestic routing", ">40%",
                      percent(r.table3.overall_explained_fraction));
  // The paper's qualitative claim: North America stands out as much lower.
  double na = -1, others_max = 0;
  for (const auto& row : r.table3.rows) {
    const double f = row.domestic_violations == 0
                         ? 0.0
                         : double(row.explained) /
                               double(row.domestic_violations);
    if (row.continent == Continent::kNorthAmerica)
      na = f;
    else
      others_max = std::max(others_max, f);
  }
  bench::compare_line("N. America lowest of all continents",
                      "yes (1.9% vs 40-67%)",
                      na >= 0 && na < others_max ? "yes" : "no");
  std::printf("\n");
}

void BM_ComputeTable3(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_table3(r.passive, *r.net, classifier));
}
BENCHMARK(BM_ComputeTable3)->Unit(benchmark::kMillisecond);

void BM_WitnessPathExtraction(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  const ScenarioOptions simple;
  const auto& d = r.passive.decisions.front();
  const GrPathSet& ps = classifier.path_set(d, simple);
  for (auto _ : state)
    benchmark::DoNotOptimize(ps.witness_shortest(d.decider));
}
BENCHMARK(BM_WitnessPathExtraction);

}  // namespace

IRP_BENCH_MAIN(print_table3)
