// Wall-clock scaling of the parallel passive-study phases at 1/2/4/8
// threads: corpus build + snapshot inference (run_passive_study) and the
// GR path-set precompute behind classification. Because all randomness and
// all result merging stay serial, every thread count produces byte-identical
// outputs — this harness only measures time. On a single-core container the
// speedup column degenerates to ~1x; on a 4+-core machine the corpus-build
// plus classification phase is expected to reach >= 2x at 4 threads.
#include <chrono>
#include <memory>

#include "bench_common.hpp"
#include "core/analysis.hpp"

namespace {

using irp::DecisionClassifier;
using irp::GeneratedInternet;
using irp::PassiveDataset;
using irp::PassiveStudyConfig;
using irp::run_passive_study;

/// A mid-size Internet: big enough that per-batch convergence dominates,
/// small enough that the 1/2/4/8-thread sweep stays in seconds.
const GeneratedInternet& scaling_net() {
  static const std::unique_ptr<GeneratedInternet> net = [] {
    irp::GeneratorConfig config;
    config.seed = 2026;
    config.world.countries_per_continent = 3;
    config.world.cities_per_country = 2;
    config.tier1_count = 8;
    config.large_isps_per_continent = 4;
    config.education_per_continent = 1;
    config.small_isps_per_country = 2;
    config.stubs_per_country = 5;
    config.content_orgs = 5;
    config.cable_count = 3;
    config.hybrid_pair_count = 3;
    return irp::generate_internet(config);
  }();
  return *net;
}

PassiveStudyConfig scaling_config(int threads) {
  PassiveStudyConfig config;
  config.probes.platform_probes_per_continent = 60;
  config.probes.sample_per_continent = 30;
  config.hostnames_per_probe = 6;
  config.snapshot_batch = 32;
  config.parallel.threads = threads;
  return config;
}

double seconds_passive(int threads) {
  const auto start = std::chrono::steady_clock::now();
  const PassiveDataset ds = run_passive_study(scaling_net(), scaling_config(threads));
  benchmark::DoNotOptimize(ds.corpus.total_paths());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

double seconds_classify(const PassiveDataset& ds, int threads) {
  const auto start = std::chrono::steady_clock::now();
  const DecisionClassifier classifier = irp::make_classifier(ds);
  classifier.precompute(ds.decisions, threads);
  benchmark::DoNotOptimize(classifier.cache_misses());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

void print_scaling() {
  std::printf("Parallel scaling — corpus build + inference and GR precompute\n");
  std::printf("(hardware_concurrency = %d)\n\n",
              irp::resolve_threads(0));

  const PassiveDataset ds =
      run_passive_study(scaling_net(), scaling_config(1));

  std::printf("  %-8s %-16s %-16s %-10s\n", "threads", "passive study",
              "classification", "speedup");
  double base = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const double passive = seconds_passive(threads);
    const double classify = seconds_classify(ds, threads);
    const double total = passive + classify;
    if (threads == 1) base = total;
    std::printf("  %-8d %13.3f s %13.3f s %9.2fx\n", threads, passive,
                classify, base / total);
  }
  std::printf("\n");
}

void BM_PassiveStudy(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        run_passive_study(scaling_net(), scaling_config(int(state.range(0))))
            .corpus.total_paths());
}
BENCHMARK(BM_PassiveStudy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ClassifierPrecompute(benchmark::State& state) {
  static const PassiveDataset ds =
      run_passive_study(scaling_net(), scaling_config(1));
  for (auto _ : state) {
    const DecisionClassifier classifier = irp::make_classifier(ds);
    classifier.precompute(ds.decisions, int(state.range(0)));
    benchmark::DoNotOptimize(classifier.cache_misses());
  }
}
BENCHMARK(BM_ClassifierPrecompute)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

IRP_BENCH_MAIN(print_scaling)
