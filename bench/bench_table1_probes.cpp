// Table 1 — distribution of selected RIPE-Atlas-style probes by AS type.
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "dataplane/probes.hpp"

namespace {

using namespace irp;

void print_table1() {
  const auto& r = bench::shared_study();
  std::printf("== Table 1: probe distribution by AS type ==\n");
  std::printf("%s\n", render_table1(r.table1).render().c_str());
  std::printf(
      "Paper: probes concentrated near the network edge (stub + small ISP\n"
      "dominate), 1,998 probes in 633 ASes. Reproduction: %zu probes in %zu\n"
      "ASes across %zu countries; edge share ",
      r.table1.total_probes, r.table1.total_ases, r.table1.total_countries);
  const double edge =
      double(r.table1.rows[0].probes + r.table1.rows[1].probes) /
      double(r.table1.total_probes);
  std::printf("%s.\n\n", percent(edge).c_str());
}

void BM_PlatformPopulation(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state) {
    ProbeSampler sampler{&r.net->topology, &r.net->world, {}, Rng{1}};
    benchmark::DoNotOptimize(sampler.platform_population());
  }
}
BENCHMARK(BM_PlatformPopulation);

void BM_ContinentRoundRobinSample(benchmark::State& state) {
  const auto& r = bench::shared_study();
  ProbeSampler sampler{&r.net->topology, &r.net->world, {}, Rng{1}};
  const auto population = sampler.platform_population();
  for (auto _ : state) benchmark::DoNotOptimize(sampler.sample(population));
}
BENCHMARK(BM_ContinentRoundRobinSample);

void BM_AsTypeClassification(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_table1(r.passive, *r.net));
}
BENCHMARK(BM_AsTypeClassification);

}  // namespace

IRP_BENCH_MAIN(print_table1)
