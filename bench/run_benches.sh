#!/usr/bin/env sh
# Builds (if needed) and runs the benchmark suite, collecting the BENCH_*.json
# perf-regression baselines the benches emit into the repo root so they can be
# diffed/committed alongside the change that moved them.
#
# Usage:
#   bench/run_benches.sh                 # run every bench
#   bench/run_benches.sh engine_hotpath  # run benches matching a substring
#
# Environment:
#   BUILD_DIR  build tree to use (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${BUILD_DIR:-"$repo_root/build"}
filter=${1:-}

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" -j

# Benches write their BENCH_*.json into the cwd; run from the repo root so
# the recorded baselines land next to the sources that own them.
cd "$repo_root"
status=0
for bench in "$build_dir"/bench/bench_*; do
  [ -x "$bench" ] || continue
  case $(basename "$bench") in
    *"$filter"*) ;;
    *) continue ;;
  esac
  printf '\n=== %s ===\n' "$(basename "$bench")"
  # taskset pins to one core when available: wall-clock comparisons inside a
  # bench (engine vs baseline) are much less noisy on a single CPU.
  if command -v taskset >/dev/null 2>&1; then
    taskset -c 0 "$bench" || status=$?
  else
    "$bench" || status=$?
  fi
done

printf '\nRecorded baselines:\n'
ls -l "$repo_root"/BENCH_*.json 2>/dev/null || echo '  (none emitted)'

# Every emitted baseline must be well-formed JSON — a malformed file would
# poison later perf diffs silently.
if command -v python3 >/dev/null 2>&1; then
  for json in "$repo_root"/BENCH_*.json; do
    [ -f "$json" ] || continue
    if python3 -m json.tool "$json" >/dev/null 2>&1; then
      printf 'json ok: %s\n' "$(basename "$json")"
    else
      printf 'MALFORMED JSON: %s\n' "$json"
      status=1
    fi
  done
fi

# A full (unfiltered) run must leave every serving-layer baseline behind; a
# bench that silently stopped emitting its JSON would otherwise freeze the
# old numbers forever.
if [ -z "$filter" ]; then
  for required in BENCH_oracle.json BENCH_multistudy.json; do
    if [ ! -f "$repo_root/$required" ]; then
      printf 'MISSING BASELINE: %s was not emitted\n' "$required"
      status=1
    fi
  done
fi

# The docs must describe the tree that produced these numbers.
printf '\n'
"$repo_root/tools/check_docs.sh" || status=$?
exit "$status"
