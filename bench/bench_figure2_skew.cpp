// Figure 2 — skew of violations across source and destination ASes (§5).
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "util/ascii_chart.hpp"

namespace {

using namespace irp;

void print_figure2() {
  const auto& r = bench::shared_study();
  std::printf("== Figure 2: violation skew across source/destination ==\n\n");

  // The paper's panel (b): cumulative violation fraction against ranked
  // destination ASes, one curve per violation type.
  std::vector<CurveSeries> curves;
  for (const auto& [cat, tc] : r.skew.curves) {
    CurveSeries series;
    series.label = std::string(decision_category_name(cat)) + " (by dest)";
    for (const auto& p : tc.by_dest)
      series.points.emplace_back(double(p.rank), p.cumulative);
    curves.push_back(std::move(series));
  }
  std::printf("%s\n", render_curves(curves, {'*', 'o', '+'}).c_str());

  std::printf("Cumulative violation share at rank k (destination ASes):\n");
  // Merge the per-type curves into a headline: NonBest/Short by dest.
  const auto it = r.skew.curves.find(DecisionCategory::kNonBestShort);
  if (it != r.skew.curves.end() && !it->second.by_dest.empty()) {
    const auto& curve = it->second.by_dest;
    for (std::size_t rank : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                             std::size_t{10}}) {
      if (rank > curve.size()) break;
      std::printf("  top-%zu destinations: %s of NonBest/Short violations\n",
                  rank, percent(curve[rank - 1].cumulative).c_str());
    }
  }

  std::printf("\nViolations by destination content service:\n");
  for (std::size_t i = 0; i < r.skew.top_dest_services.size() && i < 5; ++i)
    std::printf("  %-24s %s\n", r.skew.top_dest_services[i].first.c_str(),
                percent(r.skew.top_dest_services[i].second).c_str());

  std::printf("\n");
  bench::compare_line("top content destination share", "21% (Akamai)",
                      r.skew.top_dest_services.empty()
                          ? "-"
                          : percent(r.skew.top_dest_services[0].second));
  bench::compare_line(
      "second content destination share", "17% (Netflix)",
      r.skew.top_dest_services.size() < 2
          ? "-"
          : percent(r.skew.top_dest_services[1].second));
  bench::compare_line(
      ("stale-link share for " + r.skew.second_service_name).c_str(),
      "24% (stale AS3549 link)",
      percent(r.skew.stale_fraction_second_service));
  bench::compare_line("source skew < destination skew", "yes",
                      r.skew.gini_sources < r.skew.gini_dests ? "yes" : "no");
  std::printf("  gini(sources)=%.2f gini(destinations)=%.2f\n\n",
              r.skew.gini_sources, r.skew.gini_dests);
}

void BM_ComputeSkew(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_skew(r.passive, *r.net, classifier));
}
BENCHMARK(BM_ComputeSkew);

void BM_PruneStaleLinks(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state)
    benchmark::DoNotOptimize(prune_stale_links(r.passive.inferred,
                                               r.net->neighbor_history,
                                               r.net->measurement_epoch));
}
BENCHMARK(BM_PruneStaleLinks);

void BM_RankedCdf(benchmark::State& state) {
  std::vector<std::size_t> counts;
  Rng rng{3};
  for (int i = 0; i < 5000; ++i)
    counts.push_back(rng.zipf(1000, 1.1) + 1);
  for (auto _ : state) benchmark::DoNotOptimize(ranked_cdf(counts));
}
BENCHMARK(BM_RankedCdf);

}  // namespace

IRP_BENCH_MAIN(print_figure2)
