// Table 4 — decisions attributable to undersea-cable ASes (§6).
#include "bench_common.hpp"
#include "core/analysis.hpp"

namespace {

using namespace irp;

void print_table4() {
  const auto& r = bench::shared_study();
  std::printf("== Table 4: undersea-cable attribution ==\n\n");
  bench::compare_line("Non-Best & Short explained by cables", "3.0%",
                      percent(r.table4.nonbest_short));
  bench::compare_line("Best & Long explained by cables", "6.5%",
                      percent(r.table4.best_long));
  bench::compare_line("Non-Best & Long explained by cables", "4.5%",
                      percent(r.table4.nonbest_long));
  bench::compare_line("paths traversing cable ASes", "<2%",
                      percent(r.table4.paths_with_cable));
  bench::compare_line("cable-involving decisions deviating", "51.2%",
                      percent(r.table4.cable_decision_deviation));
  std::printf("  cable-involving decisions: %zu\n\n",
              r.table4.cable_decisions);
}

void BM_ComputeTable4(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_table4(r.passive, *r.net, classifier));
}
BENCHMARK(BM_ComputeTable4)->Unit(benchmark::kMillisecond);

void BM_CableRegistryLookup(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const auto asns = r.net->cable_registry.operator_asns();
  Asn probe = r.net->cable_asns.empty() ? 1 : r.net->cable_asns[0];
  for (auto _ : state)
    benchmark::DoNotOptimize(
        std::binary_search(asns.begin(), asns.end(), probe));
}
BENCHMARK(BM_CableRegistryLookup);

}  // namespace

IRP_BENCH_MAIN(print_table4)
