// Shared infrastructure for the benchmark harnesses.
//
// Every bench binary reproduces one table or figure of the paper: it runs
// the full study once (cached across benchmark registrations), prints the
// paper's reported values next to the reproduction, and then times the
// computational pieces behind that experiment with google-benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/study.hpp"
#include "util/strings.hpp"

namespace irp::bench {

/// The full-scale study, computed once per binary.
inline const StudyResults& shared_study() {
  static const StudyResults results = [] {
    StudyConfig config;
    return run_full_study(config);
  }();
  return results;
}

/// Pretty "paper vs reproduction" line.
inline void compare_line(const char* label, const std::string& paper,
                         const std::string& ours) {
  std::printf("  %-42s paper: %-12s reproduction: %s\n", label, paper.c_str(),
              ours.c_str());
}

/// Runs benchmark's main loop after the table has been printed.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace irp::bench

/// Standard main: print the reproduction first, then timings.
#define IRP_BENCH_MAIN(print_fn)                  \
  int main(int argc, char** argv) {               \
    print_fn();                                   \
    return ::irp::bench::run_benchmarks(argc, argv); \
  }
