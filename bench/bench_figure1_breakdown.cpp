// Figure 1 — breakdown of routing decisions across the refinement ladder
// (Simple, Complex, Sibs, PSP-1, PSP-2, All-1, All-2).
#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "util/ascii_chart.hpp"

namespace {

using namespace irp;

void print_figure1() {
  const auto& r = bench::shared_study();
  std::printf("== Figure 1: decision breakdown per scenario ==\n");
  std::printf("%s\n", render_figure1(r.figure1).render().c_str());

  std::vector<StackedBar> bars;
  for (const auto& [name, b] : r.figure1.scenarios) {
    StackedBar bar;
    bar.label = name;
    for (DecisionCategory c : kAllCategories)
      bar.segments.push_back(b.share(c));
    bars.push_back(std::move(bar));
  }
  std::printf("%s", render_stacked_bars(bars, {'#', '-', '=', '.'}).c_str());
  std::printf("  # Best/Short   - NonBest/Short   = Best/Long   ."
              " NonBest/Long\n\n");

  const auto share = [&](int i, DecisionCategory c) {
    return r.figure1.scenarios[i].second.share(c);
  };
  bench::compare_line("Simple Best/Short", "64.7%",
                      percent(share(0, DecisionCategory::kBestShort)));
  bench::compare_line("Simple violations (not Best/Short)", "34.3%",
                      percent(r.figure1.scenarios[0].second.violation_share()));
  bench::compare_line("Simple NonBest/Long", "8.3%",
                      percent(share(0, DecisionCategory::kNonBestLong)));
  bench::compare_line(
      "Complex effect on Best/Short", "<1% change",
      percent(share(1, DecisionCategory::kBestShort) -
              share(0, DecisionCategory::kBestShort)));
  bench::compare_line(
      "Sibs gain in Best/Short", "+3.9%",
      percent(share(2, DecisionCategory::kBestShort) -
              share(0, DecisionCategory::kBestShort)));
  bench::compare_line("All-1 Best/Short", "85.7%",
                      percent(share(5, DecisionCategory::kBestShort)));
  bench::compare_line("All-2 Best/Short", "75.7%",
                      percent(share(6, DecisionCategory::kBestShort)));
  std::printf("\n");
}

void BM_ClassifySimple(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  const ScenarioOptions simple;
  for (auto _ : state) {
    std::size_t violations = 0;
    for (const auto& d : r.passive.decisions)
      violations += is_violation(classifier.classify(d, simple)) ? 1 : 0;
    benchmark::DoNotOptimize(violations);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(r.passive.decisions.size()));
}
BENCHMARK(BM_ClassifySimple);

void BM_ClassifyWithPspCriteria1(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  const ScenarioOptions psp{.psp = PspMode::kCriteria1};
  for (auto _ : state) {
    std::size_t violations = 0;
    for (const auto& d : r.passive.decisions)
      violations += is_violation(classifier.classify(d, psp)) ? 1 : 0;
    benchmark::DoNotOptimize(violations);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(r.passive.decisions.size()));
}
BENCHMARK(BM_ClassifyWithPspCriteria1);

void BM_FullRefinementLadder(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state) {
    const DecisionClassifier classifier = make_classifier(r.passive);
    benchmark::DoNotOptimize(compute_figure1(r.passive, classifier));
  }
}
BENCHMARK(BM_FullRefinementLadder);

}  // namespace

IRP_BENCH_MAIN(print_figure1)
