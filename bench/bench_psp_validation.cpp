// §4.3 — looking-glass validation of prefix-specific policy inferences.
#include "bench_common.hpp"
#include "core/looking_glass.hpp"

namespace {

using namespace irp;

void print_psp() {
  const auto& r = bench::shared_study();
  std::printf("== §4.3: prefix-specific policies, looking-glass check ==\n\n");
  bench::compare_line("PSP cases identified", "63",
                      std::to_string(r.psp.psp_cases));
  bench::compare_line("unique origin-neighbors involved", "149",
                      std::to_string(r.psp.unique_neighbors));
  bench::compare_line("neighbors hosting a looking glass", "28",
                      std::to_string(r.psp.neighbors_with_lg));
  bench::compare_line("criteria-1 removals verified correct", "78%",
                      percent(r.psp.precision()) + " of " +
                          std::to_string(r.psp.checked));
  std::printf("\n");
}

void BM_ValidatePsp(benchmark::State& state) {
  const auto& r = bench::shared_study();
  const DecisionClassifier classifier = make_classifier(r.passive);
  for (auto _ : state)
    benchmark::DoNotOptimize(validate_psp(r.passive, *r.net, classifier));
}
BENCHMARK(BM_ValidatePsp)->Unit(benchmark::kMillisecond);

}  // namespace

IRP_BENCH_MAIN(print_psp)
