// §7 extension — an improved routing model incorporating the paper's
// findings (the study's stated future work). Quantifies how much of the
// model/reality gap the corrections close.
#include "bench_common.hpp"
#include "core/extended_model.hpp"

namespace {

using namespace irp;

void print_extended() {
  const auto& r = bench::shared_study();
  const ExtendedModelReport e = compute_extended_model(r.passive, *r.net);
  std::printf("== §7 extension: improved routing model ==\n\n");
  const auto bs = [](const CategoryBreakdown& b) {
    return percent(b.share(DecisionCategory::kBestShort));
  };
  std::printf("  %-44s %s\n", "Simple GR model (Best/Short)",
              bs(e.simple).c_str());
  std::printf("  %-44s %s\n", "+ hybrid + siblings + PSP (All-1)",
              bs(e.all_refinements).c_str());
  std::printf("  %-44s %s\n", "+ stale-link pruning + cable correction",
              bs(e.extended).c_str());
  std::printf("\n  isolated gains: stale pruning %+.1f pts, cable"
              " correction %+.1f pts\n\n",
              e.stale_gain * 100.0, e.cable_gain * 100.0);
  std::printf(
      "The corrections implement the paper's conclusion: identifying backup\n"
      "and stale links, and modeling cable operators as point-to-point\n"
      "transit, measurably improves model fidelity.\n\n");
}

void BM_ExtendedModel(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state)
    benchmark::DoNotOptimize(compute_extended_model(r.passive, *r.net));
}
BENCHMARK(BM_ExtendedModel)->Unit(benchmark::kMillisecond);

void BM_CableCorrection(benchmark::State& state) {
  const auto& r = bench::shared_study();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        apply_cable_correction(r.passive.inferred, r.net->cable_registry));
}
BENCHMARK(BM_CableCorrection);

}  // namespace

IRP_BENCH_MAIN(print_extended)
