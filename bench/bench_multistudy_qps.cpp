// Multi-study RouteOracle benchmark: what does hosting N snapshots behind
// one endpoint cost versus a dedicated single-study oracle? Emits
// BENCH_multistudy.json (see bench/run_benches.sh).
//
// Three studies (three seeds of the mid-size topology) are loaded into one
// StudyCatalog — shared path arena, shared classify-cache budget — and a
// round-robin classify workload is driven through the catalog-backed
// OracleService. The baseline is the same workload volume against a
// single-study service. The gap between the two is the routing + shared-
// budget overhead; the JSON also records the arena sharing ratio (memory
// won by deduplicating path suffixes across studies) and the per-study
// cache quotas before and after a hit-rate rebalance, so both sides of the
// shared-resource trade are visible in the baseline diff.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/passive_study.hpp"
#include "serve/oracle_service.hpp"
#include "serve/study_catalog.hpp"
#include "topo/generator.hpp"

namespace {

using namespace irp;

constexpr int kStudies = 3;
constexpr const char* kNames[kStudies] = {"epoch-a", "epoch-b", "epoch-c"};
constexpr std::size_t kQueries = 30000;

struct MultiStudyFixture {
  struct PerStudy {
    std::unique_ptr<GeneratedInternet> net;
    PassiveDataset passive;
    OracleSnapshot snapshot;  ///< Baseline copy with its own path table.
    std::unique_ptr<OracleIndex> index;
    std::size_t distinct_decisions = 0;
  };
  std::array<PerStudy, kStudies> studies;
  std::unique_ptr<StudyCatalog> catalog;
  /// Round-robin across studies: workload[i] targets study i % kStudies.
  std::vector<OracleRequest> workload;
};

MultiStudyFixture& fixture() {
  static MultiStudyFixture fx = [] {
    MultiStudyFixture f;
    StudyCatalogConfig catalog_config;
    catalog_config.total_cache_capacity = 3 << 14;  // Shared, not per study.
    f.catalog = std::make_unique<StudyCatalog>(catalog_config);
    for (int s = 0; s < kStudies; ++s) {
      MultiStudyFixture::PerStudy& study = f.studies[s];
      GeneratorConfig config;
      config.seed = 2026 + static_cast<std::uint64_t>(s);
      config.world.countries_per_continent = 4;
      config.world.cities_per_country = 3;
      config.tier1_count = 8;
      config.large_isps_per_continent = 4;
      config.education_per_continent = 2;
      config.small_isps_per_country = 3;
      config.stubs_per_country = 8;
      config.content_orgs = 6;
      config.cable_count = 4;
      config.hybrid_pair_count = 4;
      study.net = generate_internet(config);
      study.passive = run_passive_study(*study.net, PassiveStudyConfig{});
      study.snapshot = snapshot_study(study.passive);
      OracleIndexConfig index_config;
      index_config.cache_capacity = 1 << 14;  // Same budget as one share.
      study.index = std::make_unique<OracleIndex>(&study.snapshot,
                                                  index_config);
      study.distinct_decisions =
          std::min<std::size_t>(study.passive.decisions.size(), 2048);
      f.catalog->add_study(kNames[s], snapshot_study(study.passive));
    }
    f.workload.reserve(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
      const MultiStudyFixture::PerStudy& study = f.studies[i % kStudies];
      ClassifyRequest req;
      req.decision =
          study.passive.decisions[(i / kStudies) % study.distinct_decisions];
      req.scenario = ScenarioOptions{};
      f.workload.emplace_back(std::move(req));
    }
    return f;
  }();
  return fx;
}

struct RunResult {
  double seconds = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Pipelined submission (2 workers, bounded window) of `workload` where
/// query i goes to `studies[i % studies.size()]`; "" = default-only.
RunResult run_pipelined(OracleService& service,
                        const std::vector<OracleRequest>& workload,
                        const std::vector<std::string>& studies) {
  constexpr std::size_t kWindow = 256;
  std::deque<std::future<OracleResponse>> in_flight;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const std::string& study = studies[i % studies.size()];
    for (;;) {
      OracleService::Submitted s = service.submit(workload[i], study);
      if (s.accepted) {
        in_flight.push_back(std::move(s.response));
        break;
      }
      benchmark::DoNotOptimize(in_flight.front().get());
      in_flight.pop_front();
    }
    while (in_flight.size() >= kWindow) {
      benchmark::DoNotOptimize(in_flight.front().get());
      in_flight.pop_front();
    }
  }
  while (!in_flight.empty()) {
    benchmark::DoNotOptimize(in_flight.front().get());
    in_flight.pop_front();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const OracleStatsView stats = service.stats();
  const auto& pt = stats.per_type[static_cast<int>(QueryType::kClassify)];
  return RunResult{seconds, double(workload.size()) / seconds, pt.p50_us,
                   pt.p99_us};
}

void emit_json(const RunResult& single, const RunResult& multi,
               const StudyCatalog::CacheBudgetView& before,
               const StudyCatalog::CacheBudgetView& after) {
  MultiStudyFixture& f = fixture();
  FILE* out = std::fopen("BENCH_multistudy.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_multistudy.json\n");
    return;
  }
  const StudyCatalog::ArenaStats arena = f.catalog->arena_stats();
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"multistudy_qps\",\n");
  std::fprintf(out, "  \"studies\": [\n");
  for (std::size_t s = 0; s < f.catalog->size(); ++s) {
    const StudyCatalog::Study& study = *f.catalog->studies()[s];
    std::fprintf(out,
                 "    {\"id\": \"%s\", \"image_bytes\": %zu, "
                 "\"own_paths\": %zu}%s\n",
                 study.id.c_str(), study.image_bytes, study.own_paths,
                 s + 1 < f.catalog->size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"arena\": {\"arena_paths\": %zu, \"sum_study_paths\": "
               "%zu, \"sharing\": %.4f},\n",
               arena.arena_paths, arena.sum_study_paths, arena.sharing());
  std::fprintf(out,
               "  \"workload\": {\"queries\": %zu, \"studies\": %d, \"cpus\": "
               "1, \"mode\": \"pipelined\", \"workers\": 2, \"window\": 256,\n"
               "   \"note\": \"round-robin across studies; the single-study "
               "baseline runs the same volume against one dedicated "
               "oracle\"},\n",
               kQueries, kStudies);
  auto emit_run = [&](const char* key, const RunResult& r,
                      const char* trailer) {
    std::fprintf(out,
                 "  \"%s\": {\"seconds\": %.4f, \"qps\": %.0f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f%s},\n",
                 key, r.seconds, r.qps, r.p50_us, r.p99_us, trailer);
  };
  emit_run("single_study", single, "");
  char trailer[64];
  std::snprintf(trailer, sizeof trailer, ", \"qps_vs_single\": %.3f",
                multi.qps / single.qps);
  emit_run("multistudy", multi, trailer);
  auto emit_budget = [&](const char* key,
                         const StudyCatalog::CacheBudgetView& view,
                         bool last) {
    std::fprintf(out, "  \"%s\": {\"total_capacity\": %zu, \"per_study\": [\n",
                 key, view.total_capacity);
    for (std::size_t s = 0; s < view.per_study.size(); ++s) {
      const auto& per = view.per_study[s];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"quota\": %zu, \"entries\": %zu, "
                   "\"hit_rate\": %.4f}%s\n",
                   per.name.c_str(), per.quota, per.stats.entries,
                   per.stats.hit_rate(),
                   s + 1 < view.per_study.size() ? "," : "");
    }
    std::fprintf(out, "  ]}%s\n", last ? "" : ",");
  };
  emit_budget("cache_budget", before, false);
  emit_budget("cache_budget_rebalanced", after, true);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_multistudy.json\n");
}

void print_multistudy_qps() {
  MultiStudyFixture& f = fixture();
  const StudyCatalog::ArenaStats arena = f.catalog->arena_stats();
  std::printf("Multi-study RouteOracle — %d studies, %zu classify queries "
              "round-robin\n",
              kStudies, f.workload.size());
  std::printf("(shared arena: %zu nodes for %zu study paths, %.1f%% "
              "shared)\n\n",
              arena.arena_paths, arena.sum_study_paths,
              arena.sharing() * 100.0);

  // Baseline: the same query volume against one dedicated oracle.
  RunResult single;
  {
    OracleService service(f.studies[0].index.get(),
                          OracleService::Config{2, 256});
    std::vector<OracleRequest> workload;
    workload.reserve(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
      ClassifyRequest req;
      req.decision = f.studies[0]
                         .passive.decisions[i % f.studies[0].distinct_decisions];
      req.scenario = ScenarioOptions{};
      workload.emplace_back(std::move(req));
    }
    single = run_pipelined(service, workload, {""});
  }

  // Catalog: round-robin across the three studies by name.
  RunResult multi;
  StudyCatalog::CacheBudgetView before, after;
  {
    OracleService service(f.catalog.get(), OracleService::Config{2, 256});
    multi = run_pipelined(service, f.workload,
                          {kNames[0], kNames[1], kNames[2]});
    before = f.catalog->cache_budget();
    f.catalog->rebalance_cache();
    after = f.catalog->cache_budget();
  }

  std::printf("  %-16s %12s %10s %10s\n", "mode", "qps", "p50(us)",
              "p99(us)");
  std::printf("  %-16s %12.0f %10.2f %10.2f\n", "single_study", single.qps,
              single.p50_us, single.p99_us);
  std::printf("  %-16s %12.0f %10.2f %10.2f\n", "multistudy", multi.qps,
              multi.p50_us, multi.p99_us);
  std::printf("\n  multistudy vs single-study qps: %.3fx\n",
              multi.qps / single.qps);
  for (const auto& per : after.per_study)
    std::printf("  study %-10s quota=%zu entries=%zu hit_rate=%.1f%%\n",
                per.name.c_str(), per.quota, per.stats.entries,
                100.0 * per.stats.hit_rate());
  std::printf("\n");

  emit_json(single, multi, before, after);
}

void BM_MultiStudyClassifyDirect(benchmark::State& state) {
  MultiStudyFixture& f = fixture();
  OracleService service(f.catalog.get(), OracleService::Config{0, 1});
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t q = i++ % f.workload.size();
    benchmark::DoNotOptimize(
        service.answer(f.workload[q], kNames[q % kStudies]));
  }
}
BENCHMARK(BM_MultiStudyClassifyDirect);

}  // namespace

int main(int argc, char** argv) {
  print_multistudy_qps();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
