// Example: are the headline reproduction numbers robust to the random seed?
//
// Runs the passive study for several generator seeds and reports the spread
// of the key metrics. The paper's claims are distributional ("about a third
// of decisions deviate", "continental paths deviate less"), so robustness
// across seeds — not a single lucky draw — is what makes the reproduction
// credible.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/analysis.hpp"
#include "core/passive_study.hpp"
#include "topo/generator.hpp"
#include "util/strings.hpp"

using namespace irp;

namespace {

struct Headline {
  double simple_best_short = 0.0;
  double all1_best_short = 0.0;
  double continental_gap = 0.0;  ///< Continental - intercontinental B/S.
  double dest_gini = 0.0;
};

Headline run_once(std::uint64_t seed) {
  GeneratorConfig config;
  config.seed = seed;
  auto net = generate_internet(config);
  PassiveStudyConfig passive;
  const PassiveDataset ds = run_passive_study(*net, passive);
  const DecisionClassifier classifier = make_classifier(ds);

  Headline h;
  const Figure1Report fig1 = compute_figure1(ds, classifier);
  h.simple_best_short =
      fig1.scenarios[0].second.share(DecisionCategory::kBestShort);
  h.all1_best_short =
      fig1.scenarios[5].second.share(DecisionCategory::kBestShort);
  const Figure3Report fig3 = compute_figure3(ds, *net, classifier);
  h.continental_gap =
      fig3.continental_all.share(DecisionCategory::kBestShort) -
      fig3.intercontinental.share(DecisionCategory::kBestShort);
  const SkewReport skew = compute_skew(ds, *net, classifier);
  h.dest_gini = skew.gini_dests;
  return h;
}

void summarize(const char* name, const std::vector<double>& values,
               const char* paper) {
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  double sum = 0;
  for (double v : values) sum += v;
  std::printf("  %-34s mean %6s  range [%s, %s]   paper: %s\n", name,
              percent(sum / double(values.size())).c_str(),
              percent(lo).c_str(), percent(hi).c_str(), paper);
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> seeds{42, 1001, 31337};
  std::printf("Running the passive study for %zu seeds...\n\n", seeds.size());

  std::vector<double> simple, all1, gap, gini;
  for (std::uint64_t seed : seeds) {
    const Headline h = run_once(seed);
    std::printf("  seed %-6llu Simple %s  All-1 %s  continental gap %s"
                "  dest gini %.2f\n",
                static_cast<unsigned long long>(seed),
                percent(h.simple_best_short).c_str(),
                percent(h.all1_best_short).c_str(),
                percent(h.continental_gap).c_str(), h.dest_gini);
    simple.push_back(h.simple_best_short);
    all1.push_back(h.all1_best_short);
    gap.push_back(h.continental_gap);
    gini.push_back(h.dest_gini);
  }

  std::printf("\n");
  summarize("Simple Best/Short", simple, "64.7%");
  summarize("All-1 Best/Short", all1, "85.7%");
  summarize("continental - intercontinental", gap, "positive");
  std::printf("  %-34s all runs in [0,1], destination-skewed (paper: yes)\n",
              "violation skew (gini by dest)");
  return 0;
}
