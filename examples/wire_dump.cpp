// wire_dump: regenerates the worked OracleWire examples in docs/PROTOCOL.md.
//
// Prints one canonical ClassifyDecision round trip — the request frame and
// its response frame, each as an annotated header-field breakdown plus a
// full hex dump — then the same request addressed to a named study (a
// version-2 frame with kWireFlagStudy set). The output is deterministic
// (fixed example values, no clock, no RNG), so the spec's examples can be
// refreshed verbatim:
//
//   ./build/examples/wire_dump
//
// test_wire pins the exact bytes of this example; if an encoding change
// moves them, the test fails and this dump must be re-run into PROTOCOL.md.
#include <cstdio>
#include <string>

#include "serve/byte_io.hpp"
#include "serve/wire.hpp"

using namespace irp;

namespace {

/// One `[first, last] name = value` annotation line.
void field(std::size_t first, std::size_t size, const char* name,
           const std::string& value) {
  std::printf("  [%2zu..%2zu] %-12s = %s\n", first, first + size - 1, name,
              value.c_str());
}

void dump_header(const std::string& bytes) {
  ByteReader r{bytes, "wire_dump"};
  char buf[64];
  std::snprintf(buf, sizeof buf, "0x%08x (\"IRPW\")", r.u32());
  field(0, 4, "magic", buf);
  field(4, 2, "version", std::to_string(r.u16()));
  const std::uint8_t type = r.u8();
  field(6, 1, "frame_type",
        std::to_string(type) + " (" +
            std::string(frame_type_name(static_cast<FrameType>(type))) + ")");
  field(7, 1, "flags", std::to_string(r.u8()));
  field(8, 8, "request_id", std::to_string(r.u64()));
  field(16, 4, "payload_size", std::to_string(r.u32()));
  std::snprintf(buf, sizeof buf, "0x%016llx (fnv1a64)",
                static_cast<unsigned long long>(r.u64()));
  field(20, 8, "checksum", buf);
}

void dump_frame(const char* title, const std::string& bytes) {
  std::printf("%s (%zu bytes):\n\n", title, bytes.size());
  dump_header(bytes);
  std::printf("\n%s", hex_dump(bytes).c_str());
}

}  // namespace

int main() {
  // The canonical example: "is AS 11's choice of AS 7 toward AS 42's
  // prefix 10.42.0.0/16, three hops out, GR-valid under
  // hybrid+siblings+PSP-criteria-1?" — answered NonBest/Short.
  ClassifyRequest request;
  request.decision.decider = 11;
  request.decision.next_hop = 7;
  request.decision.dest_asn = 42;
  request.decision.src_asn = 2;
  request.decision.origin_asn = 42;
  request.decision.remaining_len = 3;
  request.decision.dst_prefix = *Ipv4Prefix::parse("10.42.0.0/16");
  request.decision.measured_remaining = {11, 9, 42};
  request.scenario.use_hybrid = true;
  request.scenario.use_siblings = true;
  request.scenario.psp = PspMode::kCriteria1;

  ClassifyResponse response;
  response.category = DecisionCategory::kNonBestShort;
  response.best = false;
  response.is_short = true;

  const std::uint64_t request_id = 7;
  dump_frame("Request frame: classify_request",
             encode_request(request_id, OracleRequest{request}));
  std::printf("\n");
  dump_frame("Response frame: classify_response",
             encode_response(request_id, OracleResponse{response}));
  std::printf("\n");
  // The same request routed to study "epoch-b": version bumps to 2, flags
  // gains kWireFlagStudy, and the payload is prefixed with str("epoch-b").
  dump_frame("Request frame: classify_request for study \"epoch-b\"",
             encode_request(request_id, OracleRequest{request}, "epoch-b"));
  return 0;
}
