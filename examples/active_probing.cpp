// Example: active control-plane experiments (§3.2), step by step.
//
// Shows the raw mechanics the paper's PEERING experiments rely on:
//   1. iterated BGP poisoning exposing a target AS's less-preferred routes;
//   2. the magnet/anycast experiment and the decision-trigger inference.
#include <cstdio>

#include "bgp/engine.hpp"
#include "core/active_study.hpp"
#include "core/passive_study.hpp"
#include "dataplane/traceroute.hpp"
#include "topo/generator.hpp"
#include "util/strings.hpp"

using namespace irp;

int main() {
  GeneratorConfig gen_config;
  auto net = generate_internet(gen_config);
  GroundTruthPolicy policy{&net->topology};
  const Ipv4Prefix prefix = net->testbed_prefixes[0];
  const Asn testbed = net->testbed_asn;

  std::printf("Testbed AS%u announces %s via %zu university muxes\n\n",
              testbed, prefix.to_string().c_str(),
              net->testbed_muxes.size());

  // ---- 1. Iterated poisoning against one target --------------------------
  BgpEngine engine{&net->topology, &policy, net->measurement_epoch};
  engine.announce(prefix, testbed);
  engine.run();

  // Pick a target: a large ISP with a route and several neighbors.
  Asn target = 0;
  for (Asn candidate : net->large_isps)
    if (engine.best(candidate, prefix) != nullptr) {
      target = candidate;
      break;
    }
  std::printf("-- Alternate-route discovery at target AS%u --\n", target);

  std::vector<Asn> poison;
  for (int round = 0; round < 8; ++round) {
    const auto* sel = engine.best(target, prefix);
    if (sel == nullptr) {
      std::printf("round %d: no route left — neighbor set exhausted\n",
                  round);
      break;
    }
    std::printf("round %d: via AS%-5u  path [%s]  len %zu\n", round,
                sel->next_hop, sel->path.to_string().c_str(),
                sel->path.length());
    poison.push_back(sel->next_hop);
    AnnounceOptions options;
    options.poison_set = poison;
    engine.announce(prefix, testbed, std::move(options));
    engine.run();
  }

  // ---- 2. Magnet/anycast at one site -------------------------------------
  std::printf("\n-- Magnet experiment (site 0) --\n");
  engine.withdraw(prefix);
  engine.run();
  AnnounceOptions magnet;
  magnet.only_links = {net->testbed_mux_links[0]};
  engine.announce(prefix, testbed, std::move(magnet));
  engine.run();

  const auto* before = engine.best(target, prefix);
  std::printf("magnet-only route at AS%u: %s\n", target,
              before == nullptr ? "(none)"
                                : before->path.to_string().c_str());

  engine.announce(prefix, testbed);  // Anycast from every site.
  engine.run();
  const auto* after = engine.best(target, prefix);
  const auto routes = engine.routes_at(target, prefix);
  std::printf("after anycast: chose %s among %zu candidate routes\n",
              after == nullptr ? "(none)" : after->path.to_string().c_str(),
              routes.size());

  // ---- 3. The full campaign ----------------------------------------------
  std::printf("\n-- Full campaign --\n");
  PassiveStudyConfig passive_config;
  const PassiveDataset ds = run_passive_study(*net, passive_config);
  std::set<Asn> candidates;
  for (const auto& p : ds.probes) candidates.insert(p.asn);
  const auto vantages = ActiveExperiment::select_vantages(
      *net, *ds.policy, {candidates.begin(), candidates.end()}, 96);
  ActiveExperiment active{net.get(), ds.policy.get(), &ds.inferred, vantages,
                          {}};

  const AlternateRouteReport alt = active.discover_alternate_routes();
  auto pct = [&](std::size_t n) {
    return percent(alt.targets == 0 ? 0.0 : double(n) / double(alt.targets));
  };
  std::printf("targets: %zu   Best&Short %s, Best-only %s, Short-only %s,"
              " neither %s\n",
              alt.targets, pct(alt.both).c_str(), pct(alt.best_only).c_str(),
              pct(alt.short_only).c_str(), pct(alt.neither).c_str());
  std::printf("links observed %zu, new to the relationship DB %zu,"
              " poisoning-only %zu\n",
              alt.links_observed, alt.links_not_in_db, alt.links_poison_only);

  const Table2Report t2 = active.magnet_experiment();
  std::printf("\nBGP decision triggers (feeds channel, total %zu):\n",
              t2.feeds.total());
  std::printf("  best relationship %zu, shorter path %zu, intradomain %zu,"
              " oldest %zu, violation %zu\n",
              t2.feeds.best_relationship, t2.feeds.shorter_path,
              t2.feeds.intradomain, t2.feeds.oldest_route,
              t2.feeds.violation);
  return 0;
}
