// Example: using the library as a what-if modeling tool.
//
// The paper's motivation is that routing models feed security, reliability
// and evolution studies. This example asks the reverse question: which
// real-world policy behaviours are responsible for how much of the
// model/reality gap? It generates ONE Internet and then switches individual
// policy phenomena off *in place* — the topology stays identical, so every
// change in the violation share is attributable to the removed behaviour.
#include <cstdio>
#include <functional>

#include "core/analysis.hpp"
#include "core/passive_study.hpp"
#include "topo/generator.hpp"
#include "util/strings.hpp"

using namespace irp;

namespace {

double violation_share(const GeneratedInternet& net) {
  PassiveStudyConfig passive;
  const PassiveDataset ds = run_passive_study(net, passive);
  const DecisionClassifier classifier = make_classifier(ds);
  CategoryBreakdown breakdown;
  const ScenarioOptions simple;
  for (const auto& d : ds.decisions)
    breakdown.add(classifier.classify(d, simple));
  return breakdown.violation_share();
}

/// Regenerates the same Internet (same seed/config) and applies an in-place
/// ground-truth edit before measuring.
double ablated_share(const GeneratorConfig& config,
                     const std::function<void(GeneratedInternet&)>& edit) {
  auto net = generate_internet(config);
  edit(*net);
  return violation_share(*net);
}

}  // namespace

int main() {
  const GeneratorConfig config;
  std::printf("Measuring the Simple-model violation share under in-place"
              " policy ablations...\n\n");

  const double baseline = ablated_share(config, [](GeneratedInternet&) {});
  std::printf("  %-46s %s\n", "baseline (all phenomena active)",
              percent(baseline).c_str());

  const auto report = [&](const char* label,
                          const std::function<void(GeneratedInternet&)>& edit) {
    const double share = ablated_share(config, edit);
    std::printf("  %-46s %s (%+.1f pts)\n", label, percent(share).c_str(),
                (share - baseline) * 100.0);
  };

  report("no domestic-path preference", [](GeneratedInternet& net) {
    net.topology.for_each_as([&](const AsNode& node) {
      net.topology.as_node_mutable(node.asn).prefers_domestic = false;
    });
  });

  report("no local-pref traffic engineering", [](GeneratedInternet& net) {
    net.topology.for_each_link([&](const Link& l) {
      Link& mut = net.topology.link_mutable(l.id);
      mut.lp_delta_a = 0;
      mut.lp_delta_b = 0;
    });
  });

  report("no shortest-path-first ASes", [](GeneratedInternet& net) {
    net.topology.for_each_as([&](const AsNode& node) {
      net.topology.as_node_mutable(node.asn).flat_local_pref = false;
    });
  });

  report("no selective announcement / prepending", [](GeneratedInternet& net) {
    net.topology.for_each_as([&](const AsNode& node) {
      for (auto& op : net.topology.as_node_mutable(node.asn).prefixes) {
        op.announce_only_on.clear();
        op.prepend_on.clear();
      }
    });
  });

  report("no partial transit", [](GeneratedInternet& net) {
    net.topology.for_each_link([&](const Link& l) {
      net.topology.link_mutable(l.id).partial_transit = false;
    });
  });

  report("no undersea-cable ASes", [](GeneratedInternet& net) {
    for (Asn cable : net.cable_asns)
      for (LinkId lid : net.topology.as_node(cable).links)
        net.topology.link_mutable(lid).died_epoch = 0;  // Never alive.
  });

  report("no topology churn (no stale links)", [](GeneratedInternet& net) {
    net.topology.for_each_link([&](const Link& l) {
      Link& mut = net.topology.link_mutable(l.id);
      mut.born_epoch = 0;
      mut.died_epoch = 1 << 30;
    });
  });

  std::printf(
      "\nThe topology is identical in every run; only the named behaviour is\n"
      "switched off, so the delta quantifies that root cause's weight in the\n"
      "model/reality gap the paper measures.\n");
  return 0;
}
