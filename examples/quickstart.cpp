// Quickstart: run the whole study at default scale and print every table.
//
// This is the fastest way to see the library end to end: generate a
// synthetic Internet, run the passive RIPE-style campaign and the active
// PEERING-style experiments, and print the reproduction of each table and
// figure of the paper.
#include <cstdio>
#include <string>

#include "core/study.hpp"
#include "util/strings.hpp"

int main() {
  using namespace irp;

  StudyConfig config;
  StudyResults r = run_full_study(config);

  std::printf("== Synthetic Internet ==\n");
  std::printf("ASes: %zu   links: %zu   inferred links: %zu\n",
              r.net->topology.num_ases(), r.net->topology.num_links(),
              r.passive.inferred.num_links());
  std::printf("probes: %zu   traceroutes: %zu   decisions: %zu\n",
              r.passive.probes.size(), r.passive.traceroutes.size(),
              r.passive.decisions.size());
  std::printf("destination ASes: %zu   decider ASes observed: %zu\n\n",
              r.passive.num_destination_ases,
              r.passive.num_observed_decider_ases);

  std::printf("== Table 1: probe distribution ==\n%s\n",
              render_table1(r.table1).render().c_str());

  std::printf("== Figure 1: decision breakdown per scenario ==\n%s\n",
              render_figure1(r.figure1).render().c_str());

  std::printf("== Figure 2: violation skew ==\n");
  for (const auto& [name, share] : r.skew.top_dest_services)
    std::printf("  dest service %-18s %s of violations\n", name.c_str(),
                percent(share).c_str());
  std::printf("  stale-link share for %s: %s\n",
              r.skew.second_service_name.c_str(),
              percent(r.skew.stale_fraction_second_service).c_str());
  std::printf("  gini (sources) %.2f   gini (destinations) %.2f\n\n",
              r.skew.gini_sources, r.skew.gini_dests);

  std::printf("== Figure 3: geography ==\n%s\n",
              render_figure3(r.figure3).render().c_str());
  std::printf("continental traceroutes: %s\n\n",
              percent(r.figure3.continental_traceroute_fraction).c_str());

  std::printf("== Table 3: domestic preference ==\n%s\n",
              render_table3(r.table3, r.net->world).render().c_str());

  std::printf("== Table 4: undersea cables ==\n%s",
              render_table4(r.table4).render().c_str());
  std::printf("paths with cable AS: %s   cable-decision deviation: %s\n\n",
              percent(r.table4.paths_with_cable).c_str(),
              percent(r.table4.cable_decision_deviation).c_str());

  std::printf("== Active: alternate routes (on %zu targets) ==\n",
              r.alternate.targets);
  auto pct = [&](std::size_t n) {
    return percent(r.alternate.targets == 0
                       ? 0.0
                       : double(n) / double(r.alternate.targets));
  };
  std::printf("  Best&Short %s   Best-only %s   Short-only %s   neither %s\n",
              pct(r.alternate.both).c_str(), pct(r.alternate.best_only).c_str(),
              pct(r.alternate.short_only).c_str(),
              pct(r.alternate.neither).c_str());
  std::printf("  links observed %zu, not in DB %zu, poison-only %zu\n",
              r.alternate.links_observed, r.alternate.links_not_in_db,
              r.alternate.links_poison_only);
  for (const auto& note : r.alternate.violation_notes)
    std::printf("  violation: %s\n", note.c_str());

  std::printf("\n== Table 2: BGP decision triggers ==\n");
  auto print_channel = [](const char* name, const TriggerCounts& c) {
    std::printf("  %-12s best-rel %zu  shorter %zu  intradomain %zu  "
                "oldest %zu  violation %zu  (total %zu)\n",
                name, c.best_relationship, c.shorter_path, c.intradomain,
                c.oldest_route, c.violation, c.total());
  };
  print_channel("feeds", r.table2.feeds);
  print_channel("traceroutes", r.table2.traceroutes);

  std::printf("\n== PSP validation (looking glasses) ==\n");
  std::printf("  cases %zu, neighbors %zu (LG in %zu), checked %zu, "
              "correct %s\n",
              r.psp.psp_cases, r.psp.unique_neighbors, r.psp.neighbors_with_lg,
              r.psp.checked, percent(r.psp.precision()).c_str());

  std::printf("\n== Extended model (the paper's future work) ==\n");
  const auto bs = [](const CategoryBreakdown& b) {
    return percent(b.share(DecisionCategory::kBestShort));
  };
  std::printf("  Simple %s -> All-1 %s -> + stale pruning + cable fix %s\n",
              bs(r.extended.simple).c_str(),
              bs(r.extended.all_refinements).c_str(),
              bs(r.extended.extended).c_str());
  return 0;
}
