// Example: the passive measurement campaign in detail (§3.1, §4).
//
// Walks through the pipeline the way an operator of the study would:
// generate an Internet, converge BGP, run traceroutes from sampled probes,
// convert them to AS paths, infer relationships from public feeds, and
// classify every routing decision against the Gao-Rexford model.
#include <cstdio>
#include <map>

#include "core/analysis.hpp"
#include "core/passive_study.hpp"
#include "topo/generator.hpp"
#include "util/strings.hpp"

using namespace irp;

int main() {
  GeneratorConfig gen_config;
  auto net = generate_internet(gen_config);
  std::printf("Synthetic Internet: %zu ASes, %zu links, %zu content services"
              " (%zu hostnames)\n",
              net->topology.num_ases(), net->topology.num_links(),
              net->content.services().size(), net->content.num_hostnames());

  PassiveStudyConfig config;
  const PassiveDataset ds = run_passive_study(*net, config);

  std::printf("\n-- Campaign --\n");
  std::printf("probes: %zu   traceroutes: %zu (%zu reached)\n",
              ds.probes.size(), ds.traceroutes.size(), [&] {
                std::size_t n = 0;
                for (const auto& t : ds.traceroutes) n += t.reached;
                return n;
              }());
  std::printf("destination ASes: %zu (from %zu content providers — off-net"
              " caches inflate the destination set, §3.1)\n",
              ds.num_destination_ases, net->content.services().size());
  std::printf("decisions extracted: %zu across %zu decider ASes\n",
              ds.decisions.size(), ds.num_observed_decider_ases);

  std::printf("\n-- A sample traceroute --\n");
  for (const auto& tr : ds.traceroutes) {
    if (!tr.reached || tr.hops.size() < 4) continue;
    std::printf("%s -> %s (%s)\n", tr.src_address.to_string().c_str(),
                tr.dst_address.to_string().c_str(), tr.hostname.c_str());
    std::vector<Ipv4Addr> ips{tr.src_address};
    for (const auto& hop : tr.hops) {
      std::printf("  hop %-16s", hop.address.to_string().c_str());
      const auto asn = ds.ip_to_as.lookup(hop.address);
      if (asn) std::printf(" AS%u", *asn);
      const auto city = net->geo->locate_city(hop.address);
      if (city) std::printf("  %s", net->world.city(*city).name.c_str());
      std::printf("\n");
      ips.push_back(hop.address);
    }
    std::printf("  AS path:");
    for (Asn a : ds.ip_to_as.as_path_of(ips)) std::printf(" %u", a);
    std::printf("\n");
    break;
  }

  std::printf("\n-- Inference --\n");
  std::printf("feed paths: %zu across %d snapshots; inferred links: %zu\n",
              ds.corpus.total_paths(), net->measurement_epoch + 1,
              ds.inferred.num_links());
  std::printf("sibling groups inferred from whois/SOA: %zu\n",
              ds.siblings.num_groups());
  std::printf("hybrid dataset entries: %zu, partial-transit pairs: %zu\n",
              ds.hybrid.entries().size(), ds.hybrid.num_partial_transit());

  std::printf("\n-- Classification (Figure 1) --\n");
  const DecisionClassifier classifier = make_classifier(ds);
  const Figure1Report fig1 = compute_figure1(ds, classifier);
  std::printf("%s", render_figure1(fig1).render().c_str());

  std::printf("\n-- Where do violations come from? --\n");
  const ScenarioOptions simple;
  std::map<std::string, std::size_t> by_decider_type;
  std::size_t violations = 0;
  for (const auto& d : ds.decisions) {
    if (!is_violation(classifier.classify(d, simple))) continue;
    ++violations;
    ++by_decider_type[std::string(
        as_type_name(net->topology.as_node(d.decider).type))];
  }
  for (const auto& [type, n] : by_decider_type)
    std::printf("  decided by %-10s %6zu (%s)\n", type.c_str(), n,
                percent(double(n) / double(violations)).c_str());
  return 0;
}
