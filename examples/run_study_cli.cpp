// Command-line study driver: run the full reproduction with custom
// parameters and export every artifact (text tables, CSV data series,
// topology snapshots, CAIDA-format relationship dumps).
//
//   run_study_cli [--seed N] [--scale N] [--threads N] [--out DIR]
//                 [--no-active] [--save-topology FILE] [--caida-out FILE]
//
// --scale multiplies the edge population (stubs and access ISPs); the
// default (1) matches the paper-calibrated configuration. --threads runs
// the parallel passive-study phases on N threads (0 = hardware count,
// default 1 = serial); results are byte-identical at any thread count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/report_io.hpp"
#include "core/study.hpp"
#include "inference/serialize.hpp"
#include "topo/serialize.hpp"
#include "util/file.hpp"
#include "util/strings.hpp"

using namespace irp;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--scale N] [--threads N] [--out DIR]\n"
               "          [--no-active] [--save-topology FILE]\n"
               "          [--caida-out FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  StudyConfig config;
  std::string out_dir;
  std::string topology_file;
  std::string caida_file;
  int scale = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed")
      config.generator.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--scale")
      scale = std::atoi(next());
    else if (arg == "--threads")
      config.passive.parallel.threads = std::atoi(next());
    else if (arg == "--out")
      out_dir = next();
    else if (arg == "--no-active")
      config.run_active = false;
    else if (arg == "--save-topology")
      topology_file = next();
    else if (arg == "--caida-out")
      caida_file = next();
    else
      usage(argv[0]);
  }
  if (scale < 1) usage(argv[0]);
  config.generator.stubs_per_country *= scale;
  config.generator.small_isps_per_country *= scale;

  std::printf("Running study (seed=%llu, scale=%d, active=%s)...\n",
              static_cast<unsigned long long>(config.generator.seed), scale,
              config.run_active ? "yes" : "no");
  const StudyResults r = run_full_study(config);

  std::printf("\n%s\n", render_table1(r.table1).render().c_str());
  std::printf("%s\n", render_figure1(r.figure1).render().c_str());
  std::printf("%s\n", render_figure3(r.figure3).render().c_str());
  std::printf("%s\n", render_table3(r.table3, r.net->world).render().c_str());
  std::printf("%s\n", render_table4(r.table4).render().c_str());

  if (!out_dir.empty()) {
    const int files = write_all_reports(r, out_dir);
    std::printf("wrote %d CSV report files to %s/\n", files, out_dir.c_str());
  }
  if (!topology_file.empty()) {
    write_file(topology_file, serialize_topology(r.net->topology));
    std::printf("wrote ground-truth topology to %s\n", topology_file.c_str());
  }
  if (!caida_file.empty()) {
    write_file(caida_file, to_caida_format(r.passive.inferred));
    std::printf("wrote inferred relationships (CAIDA format) to %s\n",
                caida_file.c_str());
  }
  return 0;
}
