// Command-line study driver: run the full reproduction with custom
// parameters and export every artifact (text tables, CSV data series,
// topology snapshots, CAIDA-format relationship dumps), or drive the
// RouteOracle serving layer over a frozen study.
//
//   run_study_cli [--seed N] [--scale N] [--threads N] [--out DIR]
//                 [--no-active] [--save-topology FILE] [--caida-out FILE]
//
//   run_study_cli snapshot --out FILE [--seed N] [--scale N] [--threads N]
//       Run the passive study and freeze it into a binary oracle snapshot.
//
//   run_study_cli query --snapshot [NAME=]FILE [--study NAME]
//                       [--queries FILE]
//   run_study_cli query --connect HOST:PORT [--study NAME] [--queries FILE]
//       Answer queries from --queries or stdin, one per line:
//         classify DECIDER NEXT_HOP DEST PREFIX REMAINING
//                  [hybrid] [siblings] [psp1|psp2]   (flags on the same line)
//         routes ASN PREFIX
//         psp ORIGIN NEIGHBOR PREFIX
//         rel A B
//       With --snapshot (repeatable: NAME=FILE loads several studies), a
//       local catalog answers synchronously (deterministic,
//       single-threaded); --study picks which study answers (default: the
//       first loaded). With --connect, each query goes over OracleWire
//       (docs/PROTOCOL.md) to a `serve --listen` process, --study riding in
//       the version-2 study flag; the printed answers are byte-identical
//       either way.
//
//   run_study_cli serve --snapshot [NAME=]FILE [--workers N] [--queue N]
//                       [--cache-budget N] [--study NAME]
//                       [--queries FILE | --listen PORT [--bind ADDR]]
//       --snapshot is repeatable: `NAME=FILE` hosts several studies behind
//       one endpoint sharing a path arena and one classify-cache budget
//       (--cache-budget entries total, rebalanced by per-study hit rates).
//       Without --listen: the same query stream, submitted through the
//       concurrent OracleService (bounded queue + worker pool) against
//       --study; prints each response in submission order, then the service
//       stats. Overloaded submissions are reported as "rejected (queue
//       full)". With --listen: serves OracleWire over TCP until
//       SIGINT/SIGTERM, then drains gracefully and prints wire + service
//       stats. --listen 0 picks an ephemeral port (printed on startup).
//       --bind defaults to 127.0.0.1; use 0.0.0.0 to accept remote hosts.
//
// --scale multiplies the edge population (stubs and access ISPs); the
// default (1) matches the paper-calibrated configuration. --threads runs
// the parallel passive-study phases on N threads (0 = hardware count,
// default 1 = serial); results are byte-identical at any thread count.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/report_io.hpp"
#include "core/study.hpp"
#include "inference/serialize.hpp"
#include "serve/oracle_client.hpp"
#include "serve/oracle_server.hpp"
#include "serve/oracle_service.hpp"
#include "serve/study_catalog.hpp"
#include "topo/serialize.hpp"
#include "util/check.hpp"
#include "util/file.hpp"
#include "util/strings.hpp"

using namespace irp;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--scale N] [--threads N] [--out DIR]\n"
      "          [--no-active] [--save-topology FILE] [--caida-out FILE]\n"
      "       %s snapshot --out FILE [--seed N] [--scale N] [--threads N]\n"
      "       %s query {--snapshot [NAME=]FILE ... | --connect HOST:PORT}\n"
      "          [--study NAME] [--queries FILE]\n"
      "       %s serve --snapshot [NAME=]FILE ... [--workers N] [--queue N]\n"
      "          [--cache-budget N] [--study NAME]\n"
      "          [--queries FILE | --listen PORT [--bind ADDR]]\n",
      argv0, argv0, argv0, argv0);
  std::exit(2);
}

/// Checked integer flag parse: the whole value must be a decimal in
/// [min, max] — "abc", "", "-1" and "12x" are usage errors, never a silent
/// 0 the way atoi would have it.
std::uint64_t u64_flag(const char* argv0, const char* flag, const char* text,
                       std::uint64_t min, std::uint64_t max) {
  const std::optional<std::uint64_t> value = parse_u64_in(text, min, max);
  if (!value) {
    std::fprintf(stderr,
                 "error: %s expects an integer in [%llu, %llu], got '%s'\n",
                 flag, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max), text);
    usage(argv0);
  }
  return *value;
}

/// One --snapshot value: "NAME=PATH" names the study, a bare path loads it
/// as "default". Loads every spec into `catalog` (first spec = default
/// study) and prints a per-study line.
struct SnapshotSpec {
  std::string name;
  std::string path;
};

SnapshotSpec parse_snapshot_spec(const char* argv0, const std::string& text) {
  SnapshotSpec spec;
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos) {
    spec.name = "default";
    spec.path = text;
  } else {
    spec.name = text.substr(0, eq);
    spec.path = text.substr(eq + 1);
  }
  if (spec.name.empty() || spec.path.empty()) {
    std::fprintf(stderr, "error: --snapshot expects [NAME=]FILE, got '%s'\n",
                 text.c_str());
    usage(argv0);
  }
  return spec;
}

void load_catalog(StudyCatalog& catalog,
                  const std::vector<SnapshotSpec>& specs) {
  // Diagnostics go to stderr: query-mode stdout must stay byte-identical
  // between the local and --connect paths.
  for (const SnapshotSpec& spec : specs) {
    const StudyCatalog::Study& study =
        catalog.add_study_file(spec.name, spec.path);
    std::fprintf(stderr,
                 "# loaded study %s (%zu prefixes, %zu paths, %zu bytes)\n",
                 study.id.c_str(), study.snapshot.routes.size(),
                 study.own_paths, study.image_bytes);
  }
  if (catalog.size() > 1) {
    const StudyCatalog::ArenaStats arena = catalog.arena_stats();
    std::fprintf(stderr,
                 "# shared path arena: %zu nodes for %zu study paths "
                 "(%.1f%% shared)\n",
                 arena.arena_paths, arena.sum_study_paths,
                 arena.sharing() * 100.0);
  }
}

/// Parses one query line into a request; nullopt for blank/comment lines.
/// Malformed lines throw CheckError with a line-scoped message.
std::optional<OracleRequest> parse_query(const std::string& line) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb) || verb[0] == '#') return std::nullopt;

  auto asn = [&]() -> Asn {
    unsigned long long v = 0;
    IRP_CHECK(static_cast<bool>(in >> v), "query: missing ASN in: " + line);
    return static_cast<Asn>(v);
  };
  auto prefix = [&]() -> Ipv4Prefix {
    std::string text;
    IRP_CHECK(static_cast<bool>(in >> text),
              "query: missing prefix in: " + line);
    const auto p = Ipv4Prefix::parse(text);
    IRP_CHECK(p.has_value(), "query: bad prefix '" + text + "' in: " + line);
    return *p;
  };

  if (verb == "classify") {
    ClassifyRequest req;
    req.decision.decider = asn();
    req.decision.next_hop = asn();
    req.decision.dest_asn = asn();
    req.decision.dst_prefix = prefix();
    unsigned long long remaining = 0;
    IRP_CHECK(static_cast<bool>(in >> remaining),
              "query: missing remaining length in: " + line);
    req.decision.remaining_len = static_cast<std::size_t>(remaining);
    std::string flag;
    while (in >> flag) {
      if (flag == "hybrid")
        req.scenario.use_hybrid = true;
      else if (flag == "siblings")
        req.scenario.use_siblings = true;
      else if (flag == "psp1")
        req.scenario.psp = PspMode::kCriteria1;
      else if (flag == "psp2")
        req.scenario.psp = PspMode::kCriteria2;
      else
        IRP_CHECK(false, "query: unknown scenario flag '" + flag + "'");
    }
    return OracleRequest{req};
  }
  if (verb == "routes") {
    AlternateRoutesRequest req;
    req.asn = asn();
    req.prefix = prefix();
    return OracleRequest{req};
  }
  if (verb == "psp") {
    PspVisibilityRequest req;
    req.origin = asn();
    req.neighbor = asn();
    req.prefix = prefix();
    return OracleRequest{req};
  }
  if (verb == "rel") {
    RelationshipLookupRequest req;
    req.a = asn();
    req.b = asn();
    return OracleRequest{req};
  }
  IRP_CHECK(false, "query: unknown verb '" + verb + "'");
}

std::vector<OracleRequest> read_queries(const std::string& queries_file) {
  std::ifstream file;
  if (!queries_file.empty()) {
    file.open(queries_file);
    IRP_CHECK(file.is_open(), "cannot open queries file " + queries_file);
  }
  std::istream& in = queries_file.empty() ? std::cin : file;
  std::vector<OracleRequest> out;
  std::string line;
  while (std::getline(in, line))
    if (auto req = parse_query(line)) out.push_back(std::move(*req));
  return out;
}

StudyConfig parse_study_flags(int argc, char** argv, int first,
                              std::string* out_path) {
  StudyConfig config;
  int scale = 1;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed")
      config.generator.seed = u64_flag(argv[0], "--seed", next(), 0, UINT64_MAX);
    else if (arg == "--scale")
      scale = static_cast<int>(u64_flag(argv[0], "--scale", next(), 1, 1024));
    else if (arg == "--threads")
      config.passive.parallel.threads =
          static_cast<int>(u64_flag(argv[0], "--threads", next(), 0, 4096));
    else if (arg == "--out")
      *out_path = next();
    else
      usage(argv[0]);
  }
  config.generator.stubs_per_country *= scale;
  config.generator.small_isps_per_country *= scale;
  config.run_active = false;  // The oracle serves the passive study.
  return config;
}

int cmd_snapshot(int argc, char** argv) {
  std::string out_path;
  const StudyConfig config = parse_study_flags(argc, argv, 2, &out_path);
  if (out_path.empty()) usage(argv[0]);

  std::printf("Running passive study (seed=%llu)...\n",
              static_cast<unsigned long long>(config.generator.seed));
  const StudyResults r = run_full_study(config);
  const OracleSnapshot snap = snapshot_study(r.passive);
  snap.save(out_path);
  std::printf(
      "wrote oracle snapshot to %s (%zu relationships, %zu prefixes, "
      "%zu route entries, %zu interned paths)\n",
      out_path.c_str(), snap.relationships.size(), snap.routes.size(),
      snap.num_route_entries(), static_cast<std::size_t>(snap.paths.num_paths()));
  return 0;
}

int cmd_query(int argc, char** argv) {
  std::vector<SnapshotSpec> snapshots;
  std::string queries_file, connect, study;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--snapshot")
      snapshots.push_back(parse_snapshot_spec(argv[0], next()));
    else if (arg == "--connect")
      connect = next();
    else if (arg == "--study")
      study = next();
    else if (arg == "--queries")
      queries_file = next();
    else
      usage(argv[0]);
  }
  if (snapshots.empty() == connect.empty()) usage(argv[0]);

  if (!connect.empty()) {
    // Remote mode: the same answers, fetched over OracleWire. The output
    // below must stay byte-identical to the local branch —
    // test_oracle_server pins that equivalence at the library level.
    const std::size_t colon = connect.rfind(':');
    IRP_CHECK(colon != std::string::npos && colon > 0,
              "--connect expects HOST:PORT, got " + connect);
    OracleClient::Config cc;
    cc.host = connect.substr(0, colon);
    cc.port = static_cast<std::uint16_t>(u64_flag(
        argv[0], "--connect port", connect.c_str() + colon + 1, 1, 65535));
    cc.study = study;
    OracleClient client(cc);
    for (const OracleRequest& request : read_queries(queries_file))
      std::printf("%s\n", to_text(client.call(request)).c_str());
    return 0;
  }

  StudyCatalog catalog;
  load_catalog(catalog, snapshots);
  OracleService service(&catalog, OracleService::Config{0, 1});

  for (const OracleRequest& request : read_queries(queries_file))
    std::printf("%s\n", to_text(service.answer(request, study)).c_str());
  return 0;
}

void print_service_stats(const OracleStatsView& stats) {
  std::printf("# served=%llu rejected=%llu unknown_study=%llu peak_queue=%zu "
              "cache_hit_rate=%.3f\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.unknown_study),
              stats.peak_queue_depth, stats.cache.hit_rate());
  for (int t = 0; t < kNumQueryTypes; ++t) {
    const auto& pt = stats.per_type[t];
    if (pt.served == 0 && pt.rejected == 0) continue;
    std::printf("#   %s: served=%llu rejected=%llu p50=%.1fus p99=%.1fus\n",
                std::string(query_type_name(static_cast<QueryType>(t))).c_str(),
                static_cast<unsigned long long>(pt.served),
                static_cast<unsigned long long>(pt.rejected), pt.p50_us,
                pt.p99_us);
  }
  if (stats.per_study.size() <= 1) return;
  for (const auto& per : stats.per_study) {
    std::printf("#   study %s: served=%llu rejected=%llu p50=%.1fus "
                "p99=%.1fus cache_quota=%zu cache_hit_rate=%.3f\n",
                per.name.c_str(),
                static_cast<unsigned long long>(per.served),
                static_cast<unsigned long long>(per.rejected), per.p50_us,
                per.p99_us, per.cache.capacity, per.cache.hit_rate());
  }
}

/// `serve --listen`: OracleWire over TCP until SIGINT/SIGTERM, then a
/// graceful drain (accepted requests answered, new connections refused).
int serve_network(const StudyCatalog& catalog,
                  OracleService::Config service_cfg,
                  OracleServer::Config server_cfg) {
  // Block the shutdown signals before any thread exists so the worker and
  // poll threads inherit the mask and sigwait() below is race-free.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  OracleService service(&catalog, service_cfg);
  OracleServer server(&service, server_cfg);
  server.start();
  std::printf("oracle serving %zu stud%s on %s:%u (workers=%d queue=%zu); "
              "SIGINT/SIGTERM drains and exits\n",
              catalog.size(), catalog.size() == 1 ? "y" : "ies",
              server_cfg.bind_address.c_str(), server.port(),
              service_cfg.worker_threads, service_cfg.queue_capacity);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("signal %d: draining...\n", sig);
  server.shutdown();   // Answers everything admitted, refuses new work.
  service.shutdown();  // Then the worker pool drains and joins.

  const WireServerStats wire = server.stats();
  std::printf(
      "# wire: conns=%llu refused=%llu frames_in=%llu frames_out=%llu "
      "admitted=%llu shed=%llu unknown_study=%llu decode_errors=%llu "
      "bytes_in=%llu bytes_out=%llu\n",
      static_cast<unsigned long long>(wire.connections_accepted),
      static_cast<unsigned long long>(wire.connections_refused),
      static_cast<unsigned long long>(wire.frames_in),
      static_cast<unsigned long long>(wire.frames_out),
      static_cast<unsigned long long>(wire.requests_admitted),
      static_cast<unsigned long long>(wire.requests_shed),
      static_cast<unsigned long long>(wire.requests_unknown_study),
      static_cast<unsigned long long>(wire.decode_errors),
      static_cast<unsigned long long>(wire.bytes_in),
      static_cast<unsigned long long>(wire.bytes_out));
  for (int t = 0; t < kNumQueryTypes; ++t) {
    const auto& pt = wire.per_type[t];
    if (pt.answered == 0) continue;
    std::printf("#   wire %s: answered=%llu p50=%.1fus p99=%.1fus\n",
                std::string(query_type_name(static_cast<QueryType>(t))).c_str(),
                static_cast<unsigned long long>(pt.answered), pt.p50_us,
                pt.p99_us);
  }
  print_service_stats(service.stats());
  return 0;
}

int cmd_serve(int argc, char** argv) {
  std::vector<SnapshotSpec> snapshots;
  std::string queries_file, study;
  OracleService::Config service_config;
  service_config.worker_threads = 2;
  OracleServer::Config server_config;
  StudyCatalogConfig catalog_config;
  bool listen = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--snapshot")
      snapshots.push_back(parse_snapshot_spec(argv[0], next()));
    else if (arg == "--queries")
      queries_file = next();
    else if (arg == "--study")
      study = next();
    else if (arg == "--workers")
      service_config.worker_threads =
          static_cast<int>(u64_flag(argv[0], "--workers", next(), 1, 4096));
    else if (arg == "--queue")
      service_config.queue_capacity = static_cast<std::size_t>(
          u64_flag(argv[0], "--queue", next(), 1, 100'000'000));
    else if (arg == "--cache-budget")
      catalog_config.total_cache_capacity = static_cast<std::size_t>(
          u64_flag(argv[0], "--cache-budget", next(), 0, 100'000'000));
    else if (arg == "--listen") {
      listen = true;
      server_config.port = static_cast<std::uint16_t>(
          u64_flag(argv[0], "--listen", next(), 0, 65535));
    } else if (arg == "--bind")
      server_config.bind_address = next();
    else
      usage(argv[0]);
  }
  if (snapshots.empty()) usage(argv[0]);
  if (listen && !queries_file.empty()) usage(argv[0]);

  StudyCatalog catalog(catalog_config);
  load_catalog(catalog, snapshots);
  // Re-weight each study's classify-cache quota every few thousand answers
  // so a hot study earns capacity from cold ones (docs/OPERATIONS.md).
  if (catalog.size() > 1) service_config.cache_rebalance_every = 4096;
  if (listen) return serve_network(catalog, service_config, server_config);
  OracleService service(&catalog, service_config);

  const std::vector<OracleRequest> queries = read_queries(queries_file);
  std::vector<OracleService::Submitted> submitted;
  submitted.reserve(queries.size());
  for (const OracleRequest& request : queries)
    submitted.push_back(service.submit(request, study));
  for (OracleService::Submitted& s : submitted) {
    if (s.reject == OracleService::Reject::kUnknownStudy)
      std::printf("rejected (unknown study)\n");
    else if (!s.accepted)
      std::printf("rejected (queue full)\n");
    else
      std::printf("%s\n", to_text(s.response.get()).c_str());
  }
  service.shutdown();
  print_service_stats(service.stats());
  return 0;
}

int cmd_legacy(int argc, char** argv) {
  StudyConfig config;
  std::string out_dir;
  std::string topology_file;
  std::string caida_file;
  int scale = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seed")
      config.generator.seed =
          u64_flag(argv[0], "--seed", next(), 0, UINT64_MAX);
    else if (arg == "--scale")
      scale = static_cast<int>(u64_flag(argv[0], "--scale", next(), 1, 1024));
    else if (arg == "--threads")
      config.passive.parallel.threads =
          static_cast<int>(u64_flag(argv[0], "--threads", next(), 0, 4096));
    else if (arg == "--out")
      out_dir = next();
    else if (arg == "--no-active")
      config.run_active = false;
    else if (arg == "--save-topology")
      topology_file = next();
    else if (arg == "--caida-out")
      caida_file = next();
    else
      usage(argv[0]);
  }
  config.generator.stubs_per_country *= scale;
  config.generator.small_isps_per_country *= scale;

  std::printf("Running study (seed=%llu, scale=%d, active=%s)...\n",
              static_cast<unsigned long long>(config.generator.seed), scale,
              config.run_active ? "yes" : "no");
  const StudyResults r = run_full_study(config);

  std::printf("\n%s\n", render_table1(r.table1).render().c_str());
  std::printf("%s\n", render_figure1(r.figure1).render().c_str());
  std::printf("%s\n", render_figure3(r.figure3).render().c_str());
  std::printf("%s\n", render_table3(r.table3, r.net->world).render().c_str());
  std::printf("%s\n", render_table4(r.table4).render().c_str());

  if (!out_dir.empty()) {
    const int files = write_all_reports(r, out_dir);
    std::printf("wrote %d CSV report files to %s/\n", files, out_dir.c_str());
  }
  if (!topology_file.empty()) {
    write_file(topology_file, serialize_topology(r.net->topology));
    std::printf("wrote ground-truth topology to %s\n", topology_file.c_str());
  }
  if (!caida_file.empty()) {
    write_file(caida_file, to_caida_format(r.passive.inferred));
    std::printf("wrote inferred relationships (CAIDA format) to %s\n",
                caida_file.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::strcmp(argv[1], "snapshot") == 0)
      return cmd_snapshot(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "query") == 0)
      return cmd_query(argc, argv);
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0)
      return cmd_serve(argc, argv);
    return cmd_legacy(argc, argv);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
